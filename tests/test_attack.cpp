#include <gtest/gtest.h>

#include <vector>

#include "attack/controller.hpp"
#include "attack/monitor.hpp"
#include "attack/pipeline.hpp"
#include "tls/record.hpp"

namespace h2sim::attack {
namespace {

net::Packet tcp_packet(std::uint32_t seq, std::vector<std::uint8_t> payload,
                       bool c2s = true, std::uint64_t id = 0) {
  static std::uint64_t next_id = 1000;
  net::Packet p;
  p.id = id != 0 ? id : next_id++;
  p.src = c2s ? 1 : 2;
  p.dst = c2s ? 2 : 1;
  p.tcp.src_port = c2s ? 50000 : 443;
  p.tcp.dst_port = c2s ? 443 : 50000;
  p.tcp.seq = seq;
  p.tcp.flags = net::tcpflag::kAck;
  p.payload = std::move(payload);
  return p;
}

net::Packet syn_packet(std::uint32_t seq, bool c2s = true) {
  net::Packet p = tcp_packet(seq, {}, c2s);
  p.tcp.flags = net::tcpflag::kSyn;
  return p;
}

std::vector<std::uint8_t> record_bytes(tls::ContentType type, std::size_t body_len) {
  tls::RecordHeader h;
  h.type = type;
  std::vector<std::uint8_t> body(body_len, 0xcc);
  h.length = static_cast<std::uint16_t>(body_len);
  return tls::serialize_record(h, body);
}

TEST(TrafficMonitor, CountsGetRecordsBySize) {
  TrafficMonitor mon;
  std::vector<int> gets;
  mon.on_get = [&](int idx, sim::TimePoint) { gets.push_back(idx); };

  mon.observe(syn_packet(100), net::Direction::kClientToServer,
              sim::TimePoint::origin());

  // A WINDOW_UPDATE-sized record (29 B body): not a GET.
  auto wu = record_bytes(tls::ContentType::kApplicationData, 29);
  std::uint32_t seq = 101;
  mon.observe(tcp_packet(seq, wu), net::Direction::kClientToServer,
              sim::TimePoint::origin());
  seq += static_cast<std::uint32_t>(wu.size());
  EXPECT_TRUE(gets.empty());

  // A request-sized record (120 B body): counted.
  auto get_rec = record_bytes(tls::ContentType::kApplicationData, 120);
  mon.observe(tcp_packet(seq, get_rec), net::Direction::kClientToServer,
              sim::TimePoint::origin());
  seq += static_cast<std::uint32_t>(get_rec.size());
  ASSERT_EQ(gets.size(), 1u);
  EXPECT_EQ(gets[0], 1);

  mon.observe(tcp_packet(seq, get_rec), net::Direction::kClientToServer,
              sim::TimePoint::origin());
  EXPECT_EQ(mon.get_count(), 2);
}

TEST(TrafficMonitor, ReassemblesOutOfOrderBeforeParsing) {
  TrafficMonitor mon;
  mon.observe(syn_packet(100), net::Direction::kClientToServer,
              sim::TimePoint::origin());
  auto rec = record_bytes(tls::ContentType::kApplicationData, 200);
  // Split the record across two packets, deliver in reverse order.
  const std::size_t half = rec.size() / 2;
  std::vector<std::uint8_t> part1(rec.begin(), rec.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<std::uint8_t> part2(rec.begin() + static_cast<std::ptrdiff_t>(half), rec.end());
  mon.observe(tcp_packet(101 + static_cast<std::uint32_t>(half), part2),
              net::Direction::kClientToServer, sim::TimePoint::origin());
  EXPECT_EQ(mon.get_count(), 0);
  mon.observe(tcp_packet(101, part1), net::Direction::kClientToServer,
              sim::TimePoint::origin());
  EXPECT_EQ(mon.get_count(), 1);
}

TEST(TrafficMonitor, DeduplicatesRetransmissions) {
  TrafficMonitor mon;
  mon.observe(syn_packet(100), net::Direction::kClientToServer,
              sim::TimePoint::origin());
  auto rec = record_bytes(tls::ContentType::kApplicationData, 150);
  auto p = tcp_packet(101, rec);
  mon.observe(p, net::Direction::kClientToServer, sim::TimePoint::origin());
  mon.observe(p, net::Direction::kClientToServer, sim::TimePoint::origin());
  EXPECT_EQ(mon.get_count(), 1);
  // The duplicate was classified as a retransmission.
  EXPECT_TRUE(mon.packet_is_c2s_retransmission(p.id));
}

TEST(TrafficMonitor, RequestPacketClassification) {
  TrafficMonitor mon;
  mon.observe(syn_packet(100), net::Direction::kClientToServer,
              sim::TimePoint::origin());
  auto get_rec = record_bytes(tls::ContentType::kApplicationData, 120);
  auto p = tcp_packet(101, get_rec);
  mon.observe(p, net::Direction::kClientToServer, sim::TimePoint::origin());
  EXPECT_TRUE(mon.packet_is_request(p.id));

  auto wu = record_bytes(tls::ContentType::kApplicationData, 29);
  auto q = tcp_packet(101 + static_cast<std::uint32_t>(get_rec.size()), wu);
  mon.observe(q, net::Direction::kClientToServer, sim::TimePoint::origin());
  EXPECT_FALSE(mon.packet_is_request(q.id));
}

TEST(TrafficMonitor, TraceRecordsBothDirections) {
  TrafficMonitor mon;
  mon.observe(syn_packet(100), net::Direction::kClientToServer,
              sim::TimePoint::origin());
  mon.observe(syn_packet(500, false), net::Direction::kServerToClient,
              sim::TimePoint::origin());
  auto rec = record_bytes(tls::ContentType::kApplicationData, 300);
  mon.observe(tcp_packet(101, rec), net::Direction::kClientToServer,
              sim::TimePoint::origin());
  mon.observe(tcp_packet(501, rec, false), net::Direction::kServerToClient,
              sim::TimePoint::origin());
  EXPECT_EQ(mon.trace().records().size(), 2u);
  EXPECT_EQ(mon.trace().count_appdata(net::Direction::kServerToClient), 1u);
}

// --- Controller ---

TEST(NetworkController, SpacesRequestArrivals) {
  sim::EventLoop loop;
  NetworkController ctl(loop, sim::Rng(1));
  ctl.set_request_spacing(sim::Duration::millis(50));

  // Without a monitor, classification falls back to payload size.
  auto p1 = tcp_packet(1, std::vector<std::uint8_t>(200, 1));
  auto d1 = ctl.on_packet(p1, net::Direction::kClientToServer, loop.now());
  EXPECT_EQ(d1.action, net::Decision::Action::kForward);

  auto p2 = tcp_packet(300, std::vector<std::uint8_t>(200, 1));
  auto d2 = ctl.on_packet(p2, net::Direction::kClientToServer, loop.now());
  EXPECT_EQ(d2.action, net::Decision::Action::kHold);
  EXPECT_NEAR(d2.hold_for.to_millis(), 50.0, 0.001);

  auto p3 = tcp_packet(600, std::vector<std::uint8_t>(200, 1));
  auto d3 = ctl.on_packet(p3, net::Direction::kClientToServer, loop.now());
  EXPECT_NEAR(d3.hold_for.to_millis(), 100.0, 0.001);
  EXPECT_EQ(ctl.stats().requests_spaced, 2u);
}

TEST(NetworkController, SmallPacketsPassUnheld) {
  sim::EventLoop loop;
  NetworkController ctl(loop, sim::Rng(1));
  ctl.set_request_spacing(sim::Duration::millis(50));
  ctl.on_packet(tcp_packet(1, std::vector<std::uint8_t>(200, 1)),
                net::Direction::kClientToServer, loop.now());
  // A pure-ACK-sized packet is never spaced.
  auto ack = tcp_packet(300, std::vector<std::uint8_t>(30, 1));
  auto d = ctl.on_packet(ack, net::Direction::kClientToServer, loop.now());
  EXPECT_EQ(d.action, net::Decision::Action::kForward);
}

TEST(NetworkController, DropWindowDropsPayloadOnly) {
  sim::EventLoop loop;
  NetworkController ctl(loop, sim::Rng(1));
  ctl.start_drop_window(1.0, sim::Duration::seconds(1));  // drop everything
  auto data = tcp_packet(1, std::vector<std::uint8_t>(500, 1), false);
  EXPECT_EQ(ctl.on_packet(data, net::Direction::kServerToClient, loop.now()).action,
            net::Decision::Action::kDrop);
  auto ack = tcp_packet(1, {}, false);
  EXPECT_EQ(ctl.on_packet(ack, net::Direction::kServerToClient, loop.now()).action,
            net::Decision::Action::kForward);
  // Client->server traffic unaffected.
  auto c2s = tcp_packet(1, std::vector<std::uint8_t>(500, 1));
  EXPECT_EQ(ctl.on_packet(c2s, net::Direction::kClientToServer, loop.now()).action,
            net::Decision::Action::kForward);
}

TEST(NetworkController, DropWindowExpires) {
  sim::EventLoop loop;
  NetworkController ctl(loop, sim::Rng(1));
  ctl.start_drop_window(1.0, sim::Duration::millis(100));
  EXPECT_TRUE(ctl.dropping());
  loop.schedule_after(sim::Duration::millis(200), [] {});
  loop.run();
  EXPECT_FALSE(ctl.dropping());
  auto data = tcp_packet(1, std::vector<std::uint8_t>(500, 1), false);
  EXPECT_EQ(ctl.on_packet(data, net::Direction::kServerToClient, loop.now()).action,
            net::Decision::Action::kForward);
}

TEST(NetworkController, SuppressesRetransmissionsOfHeldRequests) {
  sim::EventLoop loop;
  TrafficMonitor mon;
  NetworkController ctl(loop, sim::Rng(1));
  ctl.set_monitor(&mon);
  ctl.set_request_spacing(sim::Duration::millis(50));

  mon.observe(syn_packet(100), net::Direction::kClientToServer, loop.now());
  auto rec = record_bytes(tls::ContentType::kApplicationData, 150);
  auto p1 = tcp_packet(101, rec);
  mon.observe(p1, net::Direction::kClientToServer, loop.now());
  ctl.on_packet(p1, net::Direction::kClientToServer, loop.now());

  auto p2 = tcp_packet(101 + static_cast<std::uint32_t>(rec.size()), rec);
  mon.observe(p2, net::Direction::kClientToServer, loop.now());
  auto d2 = ctl.on_packet(p2, net::Direction::kClientToServer, loop.now());
  EXPECT_EQ(d2.action, net::Decision::Action::kHold);  // held behind p1's slot

  // A TCP retransmission of p1 while p2 is still held: dropped.
  auto p1_rtx = tcp_packet(101, rec);
  mon.observe(p1_rtx, net::Direction::kClientToServer, loop.now());
  auto d3 = ctl.on_packet(p1_rtx, net::Direction::kClientToServer, loop.now());
  EXPECT_EQ(d3.action, net::Decision::Action::kDrop);
  EXPECT_EQ(ctl.stats().retransmissions_suppressed, 1u);
}

// --- Pipeline phase machine ---

TEST(AttackPipeline, PhasesAdvanceOnTriggerGet) {
  sim::EventLoop loop;
  net::Middlebox mb(loop);
  mb.attach([](net::Packet&&) {}, [](net::Packet&&) {});

  AttackConfig cfg;
  cfg.trigger_get_index = 2;
  cfg.drop_duration = sim::Duration::millis(100);
  AttackPipeline pipeline(loop, mb, cfg, sim::Rng(5));
  EXPECT_EQ(pipeline.phase(), AttackPipeline::Phase::kJitter);

  mb.on_from_client(syn_packet(100));
  auto rec = record_bytes(tls::ContentType::kApplicationData, 150);
  mb.on_from_client(tcp_packet(101, rec));
  loop.run();
  EXPECT_EQ(pipeline.phase(), AttackPipeline::Phase::kJitter);

  mb.on_from_client(tcp_packet(101 + static_cast<std::uint32_t>(rec.size()), rec));
  loop.run(sim::TimePoint::origin() + sim::Duration::millis(10));
  EXPECT_EQ(pipeline.phase(), AttackPipeline::Phase::kDisrupt);
  EXPECT_TRUE(pipeline.controller().dropping());

  loop.run(sim::TimePoint::origin() + sim::Duration::seconds(10));
  EXPECT_EQ(pipeline.phase(), AttackPipeline::Phase::kSerialize);
  EXPECT_FALSE(pipeline.controller().dropping());
  EXPECT_EQ(pipeline.controller().request_spacing().to_millis(),
            cfg.jitter_phase2.to_millis());
}

TEST(AttackPipeline, DisabledAdversaryOnlyObserves) {
  sim::EventLoop loop;
  net::Middlebox mb(loop);
  int forwarded = 0;
  mb.attach([&](net::Packet&&) { ++forwarded; }, [](net::Packet&&) {});

  AttackConfig cfg;
  cfg.enabled = false;
  AttackPipeline pipeline(loop, mb, cfg, sim::Rng(5));
  EXPECT_EQ(pipeline.phase(), AttackPipeline::Phase::kIdle);

  mb.on_from_client(syn_packet(100));
  auto rec = record_bytes(tls::ContentType::kApplicationData, 150);
  mb.on_from_client(tcp_packet(101, rec));
  loop.run();
  EXPECT_EQ(forwarded, 2);                       // nothing held or dropped
  EXPECT_EQ(pipeline.monitor().get_count(), 1);  // but everything observed
}

}  // namespace
}  // namespace h2sim::attack
