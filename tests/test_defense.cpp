#include <gtest/gtest.h>

#include "defense/defenses.hpp"
#include "experiment/harness.hpp"

namespace h2sim::defense {
namespace {

TEST(Padding, RoundsSizesUp) {
  web::Website site = web::make_two_object_site(1000, 8192);
  const web::Website padded = pad_site(site, 4096);
  EXPECT_EQ(padded.find("/o1")->size, 4096u);
  EXPECT_EQ(padded.find("/o2")->size, 8192u);  // already aligned
  EXPECT_EQ(padded.schedule.size(), site.schedule.size());
}

TEST(Padding, OverheadComputed) {
  const web::Website site = web::make_two_object_site(1000, 1000);
  const web::Website padded = pad_site(site, 4096);
  EXPECT_NEAR(padding_overhead(site, padded), (8192.0 / 2000.0) - 1.0, 1e-9);
}

TEST(Padding, CollapsesEmblemSizeClasses) {
  const web::Website site = web::make_isidewith_site();
  EXPECT_EQ(distinguishable_emblems(site), 8);  // the attack's premise
  const web::Website p16 = pad_site(site, 16384);
  // Everything in 5-16 KB pads to 16384: no emblem distinguishable.
  EXPECT_EQ(distinguishable_emblems(p16), 0);
  // Mild padding keeps most classes apart.
  const web::Website p1 = pad_site(site, 512);
  EXPECT_GE(distinguishable_emblems(p1), 6);
}

TEST(Dummies, AddObjectsAndSteps) {
  web::Website site = web::make_isidewith_site();
  const std::size_t objects_before = site.objects().size();
  const std::size_t steps_before = site.schedule.size();
  sim::Rng rng(3);
  DummyConfig cfg;
  cfg.count = 6;
  inject_dummies(site, rng, cfg);
  EXPECT_EQ(site.objects().size(), objects_before + 6);
  EXPECT_EQ(site.schedule.size(), steps_before + 6);
  // Dummies must be resolvable so the server can actually serve them.
  for (const auto& step : site.schedule) {
    if (step.path.rfind("EMBLEM_", 0) == 0) continue;
    EXPECT_NE(site.find(step.path), nullptr) << step.path;
  }
}

TEST(DefenseIntegration, HeavyPaddingDefeatsIdentification) {
  experiment::TrialConfig cfg;
  cfg.seed = 99;
  cfg.attack = experiment::full_attack_config();
  cfg.defense.pad_quantum = 16384;
  const auto r = experiment::run_trial(cfg);
  // Serialization still works (transport-level), but identification dies:
  // every emblem is 16384 bytes.
  int correct = 0;
  for (int j = 1; j <= 8; ++j) {
    if (r.success[static_cast<std::size_t>(j)]) ++correct;
  }
  EXPECT_LE(correct, 2);
}

TEST(DefenseIntegration, DummiesStillDeliverPage) {
  experiment::TrialConfig cfg;
  cfg.seed = 100;
  cfg.attack.enabled = false;
  cfg.defense.dummy_count = 8;
  const auto r = experiment::run_trial(cfg);
  EXPECT_TRUE(r.page_complete) << r.failure_reason;
  EXPECT_EQ(r.gets_counted, 53 + 8);
}

}  // namespace
}  // namespace h2sim::defense
