#include <gtest/gtest.h>

#include "h2/flow_control.hpp"
#include "h2/stream.hpp"

namespace h2sim::h2 {
namespace {

TEST(StreamState, ClientRequestLifecycle) {
  Stream s(1, 65535, 65535);
  EXPECT_EQ(s.state(), StreamState::kIdle);
  // Client sends HEADERS with END_STREAM (a GET): half-closed (local).
  EXPECT_TRUE(s.on_send_headers(true));
  EXPECT_EQ(s.state(), StreamState::kHalfClosedLocal);
  // Server response headers...
  EXPECT_TRUE(s.on_recv_headers(false));
  EXPECT_EQ(s.state(), StreamState::kHalfClosedLocal);
  // ...then DATA with END_STREAM closes.
  EXPECT_TRUE(s.on_recv_data(true));
  EXPECT_EQ(s.state(), StreamState::kClosed);
}

TEST(StreamState, ServerSideLifecycle) {
  Stream s(1, 65535, 65535);
  EXPECT_TRUE(s.on_recv_headers(true));  // GET arrives
  EXPECT_EQ(s.state(), StreamState::kHalfClosedRemote);
  EXPECT_TRUE(s.on_send_headers(false));  // response headers
  EXPECT_TRUE(s.can_send_data());
  EXPECT_TRUE(s.on_send_data_end());
  EXPECT_EQ(s.state(), StreamState::kClosed);
}

TEST(StreamState, RstClosesFromAnyState) {
  Stream s(5, 65535, 65535);
  s.on_send_headers(false);
  s.on_recv_rst();
  EXPECT_TRUE(s.closed());

  Stream t(7, 65535, 65535);
  t.on_send_rst();
  EXPECT_TRUE(t.closed());
}

TEST(StreamState, DataInIdleRejected) {
  Stream s(1, 65535, 65535);
  EXPECT_FALSE(s.can_recv_data());
  EXPECT_FALSE(s.on_recv_data(false));
}

TEST(StreamState, PushPromiseReservations) {
  Stream promised(2, 65535, 65535);
  EXPECT_TRUE(promised.on_send_push_promise());
  EXPECT_EQ(promised.state(), StreamState::kReservedLocal);
  EXPECT_TRUE(promised.on_send_headers(false));
  EXPECT_EQ(promised.state(), StreamState::kHalfClosedRemote);

  Stream remote(2, 65535, 65535);
  EXPECT_TRUE(remote.on_recv_push_promise());
  EXPECT_EQ(remote.state(), StreamState::kReservedRemote);
  EXPECT_TRUE(remote.on_recv_headers(false));
  EXPECT_EQ(remote.state(), StreamState::kHalfClosedLocal);
}

TEST(StreamState, PushPromiseOnlyFromIdle) {
  Stream s(2, 65535, 65535);
  s.on_send_headers(false);
  EXPECT_FALSE(s.on_send_push_promise());
}

TEST(StreamQueue, EnqueueDequeue) {
  Stream s(1, 65535, 65535);
  const std::vector<std::uint8_t> first{1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> second{6, 7};
  s.enqueue(first, false);
  s.enqueue(second, true);
  EXPECT_EQ(s.queued_bytes(), 7u);
  EXPECT_TRUE(s.end_stream_queued());
  EXPECT_TRUE(s.has_pending_output());

  auto chunk = s.dequeue(3);
  EXPECT_EQ(chunk, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(s.queued_bytes(), 4u);
  auto rest = s.dequeue(100);
  EXPECT_EQ(rest.size(), 4u);
  EXPECT_TRUE(s.end_stream_queued());  // END_STREAM still pending
}

TEST(StreamQueue, FlushDiscardsEverything) {
  Stream s(1, 65535, 65535);
  s.enqueue(std::vector<std::uint8_t>(5000, 9), true);
  s.flush_queue();  // the paper's RST_STREAM server-side flush
  EXPECT_EQ(s.queued_bytes(), 0u);
  EXPECT_FALSE(s.end_stream_queued());
  EXPECT_FALSE(s.has_pending_output());
}

TEST(FlowWindow, ConsumeAndReplenish) {
  FlowWindow w(1000);
  EXPECT_TRUE(w.can_send(1000));
  EXPECT_FALSE(w.can_send(1001));
  w.consume(600);
  EXPECT_EQ(w.available(), 400);
  EXPECT_TRUE(w.replenish(600));
  EXPECT_EQ(w.available(), 1000);
}

TEST(FlowWindow, OverflowDetected) {
  FlowWindow w(kMaxWindow - 10);
  EXPECT_FALSE(w.replenish(100));
}

TEST(FlowWindow, CanGoNegativeViaAdjust) {
  FlowWindow w(100);
  w.adjust(-200);
  EXPECT_EQ(w.available(), -100);
  EXPECT_FALSE(w.can_send(1));
  w.adjust(200);
  EXPECT_TRUE(w.can_send(100));
}

TEST(StreamConsumedAccounting, BatchesWindowUpdates) {
  Stream s(1, 65535, 131072);
  s.note_consumed(1000);
  s.note_consumed(500);
  EXPECT_EQ(s.consumed_unacked(), 1500u);
  s.clear_consumed();
  EXPECT_EQ(s.consumed_unacked(), 0u);
}

}  // namespace
}  // namespace h2sim::h2
