#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "net/middlebox.hpp"
#include "net/topology.hpp"

namespace h2sim::net {
namespace {

Packet make_packet(std::size_t payload = 100, std::uint64_t id = 1) {
  Packet p;
  p.id = id;
  p.src = 1;
  p.dst = 2;
  p.payload.assign(payload, 0xaa);
  return p;
}

TEST(Link, DeliversAfterPropagationAndSerialization) {
  sim::EventLoop loop;
  Link::Config cfg;
  cfg.delay = sim::Duration::millis(10);
  cfg.bandwidth_bps = 8e6;  // 1 MB/s
  Link link(loop, cfg, "test");

  sim::TimePoint delivered;
  link.set_sink([&](Packet&&) { delivered = loop.now(); });
  link.send(make_packet(960));  // 1000 B wire = 8000 bits = 1 ms at 8 Mbps
  loop.run();
  EXPECT_NEAR(delivered.to_millis(), 11.0, 0.01);
}

TEST(Link, SerializesBackToBackPackets) {
  sim::EventLoop loop;
  Link::Config cfg;
  cfg.delay = sim::Duration::zero();
  cfg.bandwidth_bps = 8e6;
  Link link(loop, cfg, "test");

  std::vector<double> times;
  link.set_sink([&](Packet&&) { times.push_back(loop.now().to_millis()); });
  link.send(make_packet(960, 1));
  link.send(make_packet(960, 2));
  loop.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[1] - times[0], 1.0, 0.01);  // one serialization slot apart
}

TEST(Link, PreservesFifoOrder) {
  sim::EventLoop loop;
  Link link(loop, Link::Config{}, "test");
  std::vector<std::uint64_t> ids;
  link.set_sink([&](Packet&& p) { ids.push_back(p.id); });
  for (std::uint64_t i = 1; i <= 20; ++i) link.send(make_packet(50, i));
  loop.run();
  ASSERT_EQ(ids.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(ids[i], i + 1);
}

TEST(Link, DropsWhenQueueFull) {
  sim::EventLoop loop;
  Link::Config cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.queue_limit_bytes = 3000;
  Link link(loop, cfg, "test");
  int delivered = 0;
  link.set_sink([&](Packet&&) { ++delivered; });
  for (int i = 0; i < 10; ++i) link.send(make_packet(1400));
  loop.run();
  EXPECT_LT(delivered, 10);
  EXPECT_GT(link.stats().dropped_packets, 0u);
  EXPECT_EQ(link.stats().delivered_packets + link.stats().dropped_packets, 10u);
}

TEST(Link, RandomLossRoughlyCalibrated) {
  sim::EventLoop loop;
  Link::Config cfg;
  cfg.loss_rate = 0.2;
  cfg.queue_limit_bytes = 10 << 20;
  Link link(loop, cfg, "test");
  int delivered = 0;
  link.set_sink([&](Packet&&) { ++delivered; });
  const int n = 3000;
  for (int i = 0; i < n; ++i) link.send(make_packet(100));
  loop.run();
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.8, 0.04);
  EXPECT_EQ(link.stats().random_losses, n - static_cast<std::size_t>(delivered));
}

TEST(Middlebox, ForwardsByDefaultAndTapsEverything) {
  sim::EventLoop loop;
  Middlebox mb(loop);
  int to_server = 0, tapped = 0;
  mb.attach([&](Packet&&) { ++to_server; }, [](Packet&&) {});
  mb.set_tap([&](const Packet&, Direction, sim::TimePoint) { ++tapped; });
  mb.on_from_client(make_packet());
  mb.on_from_client(make_packet());
  loop.run();
  EXPECT_EQ(to_server, 2);
  EXPECT_EQ(tapped, 2);
}

class DropAllPolicy : public PacketPolicy {
 public:
  Decision on_packet(const Packet&, Direction, sim::TimePoint) override {
    return Decision::drop();
  }
};

TEST(Middlebox, PolicyDropsButTapStillSees) {
  sim::EventLoop loop;
  Middlebox mb(loop);
  DropAllPolicy policy;
  int forwarded = 0, tapped = 0;
  mb.attach([&](Packet&&) { ++forwarded; }, [](Packet&&) {});
  mb.set_tap([&](const Packet&, Direction, sim::TimePoint) { ++tapped; });
  mb.set_policy(&policy);
  mb.on_from_client(make_packet());
  loop.run();
  EXPECT_EQ(forwarded, 0);
  EXPECT_EQ(tapped, 1);
  EXPECT_EQ(mb.stats().dropped, 1u);
}

class HoldPolicy : public PacketPolicy {
 public:
  Decision on_packet(const Packet&, Direction, sim::TimePoint) override {
    return Decision::hold(sim::Duration::millis(25));
  }
};

TEST(Middlebox, HoldDelaysForwarding) {
  sim::EventLoop loop;
  Middlebox mb(loop);
  HoldPolicy policy;
  sim::TimePoint forwarded_at;
  mb.attach([&](Packet&&) { forwarded_at = loop.now(); }, [](Packet&&) {});
  mb.set_policy(&policy);
  mb.on_from_client(make_packet());
  loop.run();
  EXPECT_NEAR(forwarded_at.to_millis(), 25.0, 0.001);
  EXPECT_EQ(mb.stats().held, 1u);
}

TEST(Middlebox, RateLimitPacesPackets) {
  sim::EventLoop loop;
  Middlebox mb(loop);
  mb.set_rate_limit(8e5);  // 100 KB/s
  std::vector<double> times;
  mb.attach([&](Packet&&) { times.push_back(loop.now().to_millis()); },
            [](Packet&&) {});
  // 1040-byte wire packets = 8320 bits = 10.4 ms each at 800 kbps; the first
  // rides the burst allowance.
  for (int i = 0; i < 4; ++i) mb.on_from_client(make_packet(1000));
  loop.run();
  ASSERT_EQ(times.size(), 4u);
  EXPECT_GT(times[3] - times[0], 15.0);  // paced, not instantaneous
}

TEST(RateLimiter, TokensAccumulateWhileIdle) {
  RateLimiter limiter(8e5, 12000.0);
  // Exhaust the burst.
  EXPECT_EQ(limiter.admit(12000, sim::TimePoint::origin())->count_nanos(), 0);
  const auto wait = limiter.admit(8000, sim::TimePoint::origin());
  ASSERT_TRUE(wait.has_value());
  EXPECT_GT(wait->count_nanos(), 0);
  // After a long idle period, tokens are available again.
  const auto later = sim::TimePoint::origin() + sim::Duration::seconds(1);
  EXPECT_EQ(limiter.admit(8000, later)->count_nanos(), 0);
}

TEST(RateLimiter, DropsWhenQueueDelayExceeded) {
  RateLimiter limiter(8e5, 12000.0);
  limiter.max_queue_delay = sim::Duration::millis(50);
  // Keep admitting until the projected wait exceeds the budget.
  bool dropped = false;
  for (int i = 0; i < 100; ++i) {
    if (!limiter.admit(12000, sim::TimePoint::origin())) {
      dropped = true;
      break;
    }
  }
  EXPECT_TRUE(dropped);
}

TEST(Path, WiresClientToServerThroughMiddlebox) {
  sim::EventLoop loop;
  Path path(loop, Path::Config{});
  int server_got = 0, client_got = 0;
  path.set_server_sink([&](Packet&&) { ++server_got; });
  path.set_client_sink([&](Packet&&) { ++client_got; });
  path.send_from_client(make_packet());
  Packet back = make_packet();
  back.src = 2;
  back.dst = 1;
  path.send_from_server(std::move(back));
  loop.run();
  EXPECT_EQ(server_got, 1);
  EXPECT_EQ(client_got, 1);
}

TEST(Packet, WireSizeIncludesHeaders) {
  Packet p = make_packet(100);
  EXPECT_EQ(p.wire_size(), 140u);
  EXPECT_EQ(kMssBytes, 1460u);
}

}  // namespace
}  // namespace h2sim::net
