// Timer-centric TCP behaviours: RTO estimation, exponential backoff and its
// cap, the no-forward-progress abort, and retransmission statistics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_loop.hpp"
#include "tcp/tcp_connection.hpp"

namespace h2sim::tcp {
namespace {

class TcpTimerTest : public ::testing::Test {
 protected:
  void SetUp() override { build(); }

  void build() {
    client_ = std::make_unique<TcpConnection>(
        loop_, cfg_, 1, 1000, 2, 443,
        [this](net::Packet&& p) { transmit(std::move(p), true); }, 1000);
    server_ = std::make_unique<TcpConnection>(
        loop_, cfg_, 2, 443, 1, 1000,
        [this](net::Packet&& p) { transmit(std::move(p), false); }, 5000);
  }

  void transmit(net::Packet&& p, bool to_server) {
    if (to_server) sent_to_server_.push_back(p);
    if (filter_ && !filter_(p, to_server)) return;
    loop_.schedule_after(delay_, [this, p = std::move(p), to_server]() mutable {
      (to_server ? *server_ : *client_).handle_segment(p);
    });
  }

  void run_for(double seconds) {
    loop_.run(loop_.now() + sim::Duration::seconds_f(seconds));
  }

  void establish() {
    client_->connect();
    run_for(5);
    ASSERT_TRUE(client_->established());
  }

  sim::EventLoop loop_;
  TcpConfig cfg_;
  sim::Duration delay_ = sim::Duration::millis(5);
  std::function<bool(const net::Packet&, bool)> filter_;
  std::vector<net::Packet> sent_to_server_;
  std::unique_ptr<TcpConnection> client_;
  std::unique_ptr<TcpConnection> server_;
};

TEST_F(TcpTimerTest, RtoConvergesTowardsRttAfterSamples) {
  establish();
  // Exchange enough data for RTT samples (RTT = 10 ms round trip).
  for (int i = 0; i < 10; ++i) {
    client_->send(std::vector<std::uint8_t>(500, 1));
    run_for(0.1);
  }
  // RFC 6298 with min_rto clamp: srtt ~10 ms -> rto == min_rto (200 ms).
  EXPECT_EQ(client_->current_rto().to_millis(), cfg_.min_rto.to_millis());
}

TEST_F(TcpTimerTest, BackoffIsCappedDuringBlackout) {
  establish();
  client_->send(std::vector<std::uint8_t>(500, 1));
  run_for(0.1);

  // Cut the wire and record retransmission times.
  std::vector<double> rtx_times;
  filter_ = [&](const net::Packet& p, bool to_server) {
    if (to_server && p.is_retransmission) rtx_times.push_back(loop_.now().to_millis());
    return false;
  };
  client_->send(std::vector<std::uint8_t>(500, 2));
  run_for(4.0);

  ASSERT_GE(rtx_times.size(), 3u);
  for (std::size_t i = 1; i < rtx_times.size(); ++i) {
    const double gap = rtx_times[i] - rtx_times[i - 1];
    EXPECT_LE(gap, cfg_.rto_backoff_cap.to_millis() * 1.1)
        << "backoff gap " << i << " exceeds the cap";
  }
}

TEST_F(TcpTimerTest, NoForwardProgressAbortsWithReason) {
  std::string reason;
  TcpConnection::Callbacks cbs;
  cbs.on_aborted = [&](std::string_view r) { reason = std::string(r); };
  client_->set_callbacks(std::move(cbs));
  establish();
  filter_ = [](const net::Packet&, bool) { return false; };  // blackout
  client_->send(std::vector<std::uint8_t>(500, 1));
  run_for(30);
  EXPECT_TRUE(reason == "no-forward-progress" || reason == "rto-retries-exceeded")
      << reason;
  EXPECT_TRUE(client_->aborted());
}

TEST_F(TcpTimerTest, IdlePeriodsDoNotTripTheProgressTimer) {
  establish();
  // Stay idle for far longer than stuck_timeout...
  run_for(30);
  // ...then send: the clock must restart, not abort.
  std::vector<std::uint8_t> got;
  TcpConnection::Callbacks scb;
  scb.on_data = [&](std::span<const std::uint8_t> b) {
    got.insert(got.end(), b.begin(), b.end());
  };
  server_->set_callbacks(std::move(scb));
  client_->send(std::vector<std::uint8_t>(700, 3));
  run_for(5);
  EXPECT_FALSE(client_->aborted());
  EXPECT_EQ(got.size(), 700u);
}

TEST_F(TcpTimerTest, RetransmissionFlagOnWire) {
  establish();
  bool dropped_once = false;
  filter_ = [&](const net::Packet& p, bool to_server) {
    if (to_server && !p.payload.empty() && !dropped_once) {
      dropped_once = true;
      return false;
    }
    return true;
  };
  client_->send(std::vector<std::uint8_t>(500, 1));
  run_for(10);

  int originals = 0, retransmissions = 0;
  for (const auto& p : sent_to_server_) {
    if (p.payload.empty()) continue;
    (p.is_retransmission ? retransmissions : originals)++;
  }
  EXPECT_GE(originals, 1);
  EXPECT_GE(retransmissions, 1);
}

TEST_F(TcpTimerTest, StatsSeparateFastAndRtoRetransmits) {
  establish();
  // Force an RTO-style loss (single in-flight segment).
  bool dropped = false;
  filter_ = [&](const net::Packet& p, bool to_server) {
    if (to_server && !p.payload.empty() && !dropped) {
      dropped = true;
      return false;
    }
    return true;
  };
  client_->send(std::vector<std::uint8_t>(100, 1));
  run_for(10);
  EXPECT_GE(client_->stats().retransmits_rto, 1u);
  EXPECT_EQ(client_->stats().retransmits_fast, 0u);
  EXPECT_EQ(client_->stats().total_retransmits(),
            client_->stats().retransmits_fast + client_->stats().retransmits_rto);
}

}  // namespace
}  // namespace h2sim::tcp
