#include <gtest/gtest.h>

#include <memory>

#include "http/http1.hpp"
#include "http/message.hpp"
#include "net/topology.hpp"
#include "tcp/tcp_stack.hpp"
#include "tls/session.hpp"

namespace h2sim::http {
namespace {

TEST(Message, RequestToFromH2Headers) {
  Request r;
  r.method = "GET";
  r.authority = "www.isidewith.com";
  r.path = "/results";
  r.extra.push_back({"user-agent", "test"});
  const auto headers = r.to_h2_headers();
  auto back = Request::from_h2_headers(headers);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->method, "GET");
  EXPECT_EQ(back->authority, "www.isidewith.com");
  EXPECT_EQ(back->path, "/results");
  ASSERT_EQ(back->extra.size(), 1u);
  EXPECT_EQ(back->extra[0].name, "user-agent");
}

TEST(Message, RequestFromH2RequiresPseudoHeaders) {
  hpack::HeaderList incomplete = {{":scheme", "https"}};
  EXPECT_FALSE(Request::from_h2_headers(incomplete).has_value());
}

TEST(Message, ResponseToFromH2Headers) {
  Response r;
  r.status = 200;
  r.content_length = 9500;
  r.content_type = "text/html";
  auto back = Response::from_h2_headers(r.to_h2_headers());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, 200);
  EXPECT_EQ(back->content_length, 9500u);
  EXPECT_EQ(back->content_type, "text/html");
}

TEST(Message, Http1TextRoundTrip) {
  Request r;
  r.method = "GET";
  r.authority = "example.com";
  r.path = "/index.html";
  r.extra.push_back({"accept", "text/html"});
  const std::string text = r.to_http1();
  EXPECT_NE(text.find("GET /index.html HTTP/1.1\r\n"), std::string::npos);
  auto back = Request::from_http1(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->path, "/index.html");
  EXPECT_EQ(back->authority, "example.com");
  ASSERT_EQ(back->extra.size(), 1u);
  EXPECT_EQ(back->extra[0].value, "text/html");
}

/// HTTP/1.1 client/server over simulated TLS/TCP.
class Http1PairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::make_unique<net::Path>(loop_, net::Path::Config{});
    server_stack_ = std::make_unique<tcp::TcpStack>(
        loop_, sim::Rng(1), net::Path::kServerNode, tcp::TcpConfig{},
        [this](net::Packet&& p) { path_->send_from_server(std::move(p)); });
    client_stack_ = std::make_unique<tcp::TcpStack>(
        loop_, sim::Rng(2), net::Path::kClientNode, tcp::TcpConfig{},
        [this](net::Packet&& p) { path_->send_from_client(std::move(p)); });
    path_->set_server_sink(
        [this](net::Packet&& p) { server_stack_->deliver(std::move(p)); });
    path_->set_client_sink(
        [this](net::Packet&& p) { client_stack_->deliver(std::move(p)); });

    server_stack_->listen(443, [this](tcp::TcpConnection& c) {
      server_tls_ = std::make_unique<tls::TlsSession>(c, tls::TlsSession::Role::kServer);
      server_ = std::make_unique<Http1ServerConnection>(
          *server_tls_, [](const Request& req) {
            Response resp;
            resp.status = 200;
            resp.content_type = "application/octet-stream";
            const std::size_t n = req.path == "/big" ? 50000 : 1234;
            return std::make_pair(resp, std::vector<std::uint8_t>(n, 0x77));
          });
    });

    tcp::TcpConnection& c = client_stack_->connect(net::Path::kServerNode, 443);
    client_tls_ = std::make_unique<tls::TlsSession>(c, tls::TlsSession::Role::kClient);
    client_ = std::make_unique<Http1ClientConnection>(*client_tls_);
  }

  void run(double seconds = 5) {
    loop_.run(sim::TimePoint::origin() + sim::Duration::seconds_f(seconds));
  }

  sim::EventLoop loop_;
  std::unique_ptr<net::Path> path_;
  std::unique_ptr<tcp::TcpStack> server_stack_;
  std::unique_ptr<tcp::TcpStack> client_stack_;
  std::unique_ptr<tls::TlsSession> server_tls_;
  std::unique_ptr<tls::TlsSession> client_tls_;
  std::unique_ptr<Http1ServerConnection> server_;
  std::unique_ptr<Http1ClientConnection> client_;
};

TEST_F(Http1PairTest, SimpleRequestResponse) {
  Request req;
  req.authority = "example.com";
  req.path = "/x";
  std::size_t got = 0;
  int status = 0;
  client_->send_request(req, [&](const Response& r, std::vector<std::uint8_t> body) {
    status = r.status;
    got = body.size();
  });
  run();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(got, 1234u);
  EXPECT_EQ(server_->requests_served(), 1u);
}

TEST_F(Http1PairTest, PipelinedResponsesArriveInOrder) {
  std::vector<std::size_t> sizes;
  for (const char* p : {"/big", "/small", "/big"}) {
    Request req;
    req.authority = "example.com";
    req.path = p;
    client_->send_request(req, [&](const Response&, std::vector<std::uint8_t> body) {
      sizes.push_back(body.size());
    });
  }
  run(20);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 50000u);  // head-of-line blocking preserved order
  EXPECT_EQ(sizes[1], 1234u);
  EXPECT_EQ(sizes[2], 50000u);
  EXPECT_TRUE(client_->idle());
}

TEST_F(Http1PairTest, RequestsBeforeHandshakeAreQueued) {
  // send_request fires before TLS establishes; must still complete.
  Request req;
  req.authority = "example.com";
  req.path = "/early";
  bool done = false;
  client_->send_request(req, [&](const Response&, std::vector<std::uint8_t>) {
    done = true;
  });
  run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace h2sim::http
