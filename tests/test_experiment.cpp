#include <gtest/gtest.h>

#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"

namespace h2sim::experiment {
namespace {

TEST(AttackConfigs, FullAttackMatchesPaperParameters) {
  const attack::AttackConfig a = full_attack_config();
  EXPECT_TRUE(a.enabled);
  EXPECT_EQ(a.jitter_phase1.to_millis(), 50.0);   // §V phase 1
  EXPECT_EQ(a.trigger_get_index, 6);              // the HTML GET
  EXPECT_EQ(a.throttle_bps, 800e6);               // §IV-C operating point
  EXPECT_EQ(a.drop_rate, 0.8);                    // §IV-D
  EXPECT_EQ(a.drop_duration.to_seconds(), 6.0);
  EXPECT_EQ(a.jitter_phase2.to_millis(), 80.0);   // image-burst spacing
}

TEST(AttackConfigs, JitterOnlyNeverTriggers) {
  const attack::AttackConfig a = jitter_only_config(sim::Duration::millis(25));
  EXPECT_EQ(a.trigger_get_index, 0);
  EXPECT_FALSE(a.use_throttle);
  EXPECT_FALSE(a.use_drop);
  EXPECT_EQ(a.jitter_phase1.to_millis(), 25.0);
}

TEST(AttackConfigs, ThrottleFromStart) {
  const attack::AttackConfig a =
      jitter_throttle_config(sim::Duration::millis(50), 5e8);
  EXPECT_TRUE(a.use_throttle);
  EXPECT_TRUE(a.throttle_from_start);
  EXPECT_EQ(a.throttle_bps, 5e8);
}

TEST(AttackConfigs, SingleTargetKeepsStagedPipeline) {
  const attack::AttackConfig a = single_target_attack_config(21);
  EXPECT_EQ(a.trigger_get_index, 21);
  EXPECT_TRUE(a.use_drop);
  EXPECT_GT(a.jitter_phase1.count_nanos(), 0);  // spacing stays on
}

TEST(GetIndices, MatchSiteLayout) {
  web::IsidewithConfig site;
  EXPECT_EQ(html_get_index(site), 6);
  EXPECT_EQ(emblem_get_index(site, 0), 19);
  // Custom layout shifts indices coherently.
  site.pre_objects = 3;
  site.head_fillers = 5;
  EXPECT_EQ(html_get_index(site), 4);
  EXPECT_EQ(emblem_get_index(site, 2), 4 + 5 + 3);
}

TEST(CustomSite, HarnessRunsWithSiteBuilder) {
  TrialConfig cfg;
  cfg.seed = 11;
  cfg.attack.enabled = false;
  cfg.site_builder = [] { return web::make_two_object_site(30000, 50000); };
  bool saw_records = false;
  cfg.trace_inspector = [&](const analysis::PacketTrace& t) {
    saw_records = !t.records().empty();
  };
  const TrialResult r = run_trial(cfg);
  EXPECT_TRUE(saw_records);
  // No isidewith structure: evaluation is inspector-only.
  EXPECT_TRUE(r.interest.empty());
  EXPECT_TRUE(r.page_complete);
}

TEST(TablePrinter, Formatting) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::pct(42.4, 0), "42%");
  EXPECT_EQ(TablePrinter::pct(99.94, 1), "99.9%");
}

TEST(TrialResult, WireRetransmissionsSumsComponents) {
  TrialResult r;
  r.tcp_retransmits = 7;
  r.browser_reissues = 3;
  EXPECT_EQ(r.wire_retransmissions(), 10u);
}

}  // namespace
}  // namespace h2sim::experiment
