// Observability layer: metrics registry semantics, histogram bucketing,
// tracer gating, export well-formedness (parsed back with the obs JSON
// reader), and the harness contract that TrialResult counters are the
// registry's numbers.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>

#include "experiment/harness.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/log.hpp"

namespace h2sim {
namespace {

using obs::MetricsRegistry;

TEST(MetricsRegistryTest, CountersAggregateAcrossHandles) {
  auto& reg = MetricsRegistry::instance();
  obs::Counter a = reg.counter("test_obs.shared");
  obs::Counter b = reg.counter("test_obs.shared");  // same storage
  a.inc();
  b.add(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(reg.counter_value("test_obs.shared"), 5u);
  EXPECT_EQ(reg.counter_value("test_obs.never_registered"), 0u);
}

TEST(MetricsRegistryTest, DefaultConstructedHandlesAreInert) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  c.inc();
  g.set(3.0);
  h.observe(1.0);  // must not crash
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.data(), nullptr);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandlesValid) {
  auto& reg = MetricsRegistry::instance();
  obs::Counter c = reg.counter("test_obs.reset_me");
  obs::Gauge g = reg.gauge("test_obs.reset_gauge");
  obs::Histogram h = reg.histogram("test_obs.reset_hist", {1.0, 2.0});
  c.add(7);
  g.set(1.5);
  h.observe(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.data()->count, 0u);
  // Handles registered before the reset still point at live storage.
  c.inc();
  EXPECT_EQ(reg.counter_value("test_obs.reset_me"), 1u);
}

TEST(MetricsRegistryTest, HistogramBucketEdges) {
  auto& reg = MetricsRegistry::instance();
  obs::Histogram h = reg.histogram("test_obs.edges", {10.0, 20.0, 30.0});
  const obs::HistogramData* d = h.data();
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->counts.size(), 4u);  // 3 edges + overflow

  reg.reset();
  h.observe(5.0);    // below first edge -> bucket 0
  h.observe(10.0);   // v <= edge is inclusive -> bucket 0
  h.observe(10.001); // just above -> bucket 1
  h.observe(20.0);   // -> bucket 1
  h.observe(30.0);   // -> bucket 2
  h.observe(31.0);   // beyond the last edge -> overflow bucket
  h.observe(1e12);   // far overflow

  EXPECT_EQ(d->counts[0], 2u);
  EXPECT_EQ(d->counts[1], 2u);
  EXPECT_EQ(d->counts[2], 1u);
  EXPECT_EQ(d->counts[3], 2u);
  EXPECT_EQ(d->count, 7u);
  EXPECT_DOUBLE_EQ(d->sum, 5.0 + 10.0 + 10.001 + 20.0 + 30.0 + 31.0 + 1e12);
}

TEST(MetricsRegistryTest, BucketGenerators) {
  const auto lin = obs::linear_buckets(0.0, 10.0, 4);
  ASSERT_EQ(lin.size(), 4u);
  EXPECT_DOUBLE_EQ(lin[0], 0.0);
  EXPECT_DOUBLE_EQ(lin[3], 30.0);
  const auto exp = obs::exponential_buckets(1.0, 2.0, 5);
  ASSERT_EQ(exp.size(), 5u);
  EXPECT_DOUBLE_EQ(exp[0], 1.0);
  EXPECT_DOUBLE_EQ(exp[4], 16.0);
}

TEST(MetricsRegistryTest, MetricsJsonRoundTrips) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("test_obs.json_counter").add(42);
  reg.gauge("test_obs.json_gauge").set(2.5);
  obs::Histogram h = reg.histogram("test_obs.json_hist", {1.0, 8.0});
  h.observe(0.5);
  h.observe(100.0);

  const auto doc = obs::json::parse(obs::metrics_json(reg.snapshot()));
  ASSERT_TRUE(doc.has_value());
  const obs::json::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::json::Value* c = counters->find("test_obs.json_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->number, 42.0);
  const obs::json::Value* g = doc->find("gauges")->find("test_obs.json_gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->number, 2.5);
  const obs::json::Value* hv =
      doc->find("histograms")->find("test_obs.json_hist");
  ASSERT_NE(hv, nullptr);
  ASSERT_TRUE(hv->find("counts")->is_array());
  EXPECT_EQ(hv->find("counts")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(hv->find("count")->number, 2.0);
}

// Writer -> reader round trip through metrics_snapshot_from_json: the
// reconstructed MetricsSnapshot must equal the original, histograms (edges,
// counts, count, sum) included, with doubles carried bit-exactly by %.17g.
TEST(MetricsRegistryTest, SnapshotJsonWriteReadRoundTrips) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("test_obs.rt_counter").add(7);
  // An awkward double that a short decimal rendering would corrupt.
  reg.gauge("test_obs.rt_gauge").set(0.1 + 0.2);
  obs::Histogram h =
      reg.histogram("test_obs.rt_hist", obs::exponential_buckets(1.0, 2.0, 4));
  h.observe(0.5);
  h.observe(3.0);
  h.observe(1e9);

  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto back = obs::metrics_snapshot_from_json(obs::metrics_json(snap));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, snap);

  EXPECT_FALSE(obs::metrics_snapshot_from_json("{\"counters\": {}}"));
  EXPECT_FALSE(obs::metrics_snapshot_from_json("not json"));
}

// Non-finite guard: inf/nan have no JSON literal, so the writer emits null
// (keeping the document parseable) and the reader maps null back to 0.0.
TEST(MetricsRegistryTest, NonFiniteGaugeSurvivesExportAsNull) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.gauge("test_obs.gauge_a").set(std::numeric_limits<double>::infinity());
  reg.gauge("test_obs.gauge_b").set(std::numeric_limits<double>::quiet_NaN());
  reg.gauge("test_obs.gauge_c").set(1.25);

  const std::string json = obs::metrics_json(reg.snapshot());
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_NE(json.find("\"test_obs.gauge_a\": null"), std::string::npos)
      << json;
  ASSERT_TRUE(obs::json::parse(json).has_value()) << json;

  const auto back = obs::metrics_snapshot_from_json(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->gauges.at("test_obs.gauge_a"), 0.0);
  EXPECT_EQ(back->gauges.at("test_obs.gauge_b"), 0.0);
  EXPECT_EQ(back->gauges.at("test_obs.gauge_c"), 1.25);
}

TEST(TracerTest, MaskGatesRecordingPerComponent) {
  auto& tr = obs::Tracer::instance();
  tr.disable_all();
  tr.clear();
  tr.instant(obs::Component::kTcp, "off", sim::TimePoint::origin(), 1, 1);
  EXPECT_TRUE(tr.events().empty());

  tr.enable(obs::Component::kTcp);
  EXPECT_TRUE(tr.enabled(obs::Component::kTcp));
  EXPECT_FALSE(tr.enabled(obs::Component::kH2));
  tr.instant(obs::Component::kTcp, "on", sim::TimePoint::origin(), 1, 1);
  tr.instant(obs::Component::kH2, "still off", sim::TimePoint::origin(), 1, 1);
  ASSERT_EQ(tr.events().size(), 1u);
  EXPECT_EQ(tr.events()[0].name, "on");

  tr.disable_all();
  tr.clear();
}

TEST(TracerTest, ChromeTraceJsonIsWellFormed) {
  auto& tr = obs::Tracer::instance();
  tr.disable_all();
  tr.enable(obs::Component::kWeb);
  tr.clear();
  const auto t0 = sim::TimePoint::origin();
  tr.instant(obs::Component::kWeb, "quote\"and\nnewline", t0 + sim::Duration::micros(1500),
             obs::track::kClient, 3,
             obs::TraceArgs().add("why", "beca\"use").add("n", 7).take());
  tr.complete(obs::Component::kWeb, "span", t0, t0 + sim::Duration::millis(2),
              obs::track::kClient, 3);
  tr.counter(obs::Component::kWeb, "cwnd", t0, obs::track::kClient, 3, 14600.0);

  const auto doc = obs::json::parse(obs::chrome_trace_json(tr.events()));
  ASSERT_TRUE(doc.has_value());
  const obs::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 4 process_name metadata rows + the 3 recorded events.
  ASSERT_EQ(events->array.size(), 7u);
  const obs::json::Value& inst = events->array[4];
  EXPECT_EQ(inst.find("ph")->string, "i");
  EXPECT_EQ(inst.find("cat")->string, "web");
  EXPECT_DOUBLE_EQ(inst.find("ts")->number, 1500.0);  // microseconds
  EXPECT_DOUBLE_EQ(inst.find("args")->find("n")->number, 7.0);
  const obs::json::Value& span = events->array[5];
  EXPECT_EQ(span.find("ph")->string, "X");
  EXPECT_DOUBLE_EQ(span.find("dur")->number, 2000.0);
  const obs::json::Value& counter = events->array[6];
  EXPECT_EQ(counter.find("ph")->string, "C");
  EXPECT_DOUBLE_EQ(counter.find("args")->find("value")->number, 14600.0);

  tr.disable_all();
  tr.clear();
}

TEST(LoggerTest, SpecSetsGlobalAndComponentLevels) {
  auto& lg = sim::Logger::instance();
  const sim::LogLevel saved = lg.level();
  lg.clear_component_levels();

  EXPECT_TRUE(lg.apply_spec("warn, tcp=trace, browser=off"));
  EXPECT_EQ(lg.level(), sim::LogLevel::kWarn);
  EXPECT_TRUE(lg.should_log(sim::LogLevel::kTrace, "tcp"));
  EXPECT_FALSE(lg.should_log(sim::LogLevel::kError, "browser"));
  EXPECT_FALSE(lg.should_log(sim::LogLevel::kInfo, "middlebox"));
  EXPECT_TRUE(lg.should_log(sim::LogLevel::kWarn, "middlebox"));

  EXPECT_FALSE(lg.apply_spec("notalevel"));
  EXPECT_FALSE(lg.apply_spec("tcp=notalevel"));

  lg.clear_component_levels();
  lg.set_level(saved);
}

// ---- Harness integration ----

TEST(HarnessObsTest, TrialResultCountersMatchRegistrySnapshot) {
  experiment::TrialConfig cfg;
  cfg.seed = 7;
  cfg.attack = experiment::full_attack_config();
  obs::MetricsSnapshot snap;
  cfg.metrics_inspector = [&](const obs::MetricsSnapshot& s) { snap = s; };
  const experiment::TrialResult r = experiment::run_trial(cfg);

  auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  EXPECT_EQ(r.tcp_fast_retransmits, counter("tcp.retransmits_fast"));
  EXPECT_EQ(r.tcp_rto_retransmits, counter("tcp.retransmits_rto"));
  EXPECT_EQ(static_cast<std::uint64_t>(r.browser_reissues), counter("web.reissues"));
  EXPECT_EQ(static_cast<std::uint64_t>(r.reset_sweeps), counter("web.reset_sweeps"));
  EXPECT_EQ(r.adversary_drops, counter("attack.packets_dropped"));
  EXPECT_EQ(r.requests_spaced, counter("attack.requests_spaced"));
  EXPECT_EQ(r.link_drops, counter("net.link_drops"));
  EXPECT_EQ(r.records_observed, counter("attack.records_observed"));
  EXPECT_EQ(static_cast<std::uint64_t>(r.gets_counted), counter("attack.gets_counted"));

  // The attacked trial actually exercised the counters being compared.
  EXPECT_GT(counter("attack.packets_dropped"), 0u);
  EXPECT_GT(counter("attack.requests_spaced"), 0u);
  EXPECT_GT(counter("tcp.segments_sent"), 0u);
  EXPECT_GT(counter("h2.client.frames_sent"), 0u);
  EXPECT_GT(counter("web.requests_sent"), 0u);
}

TEST(HarnessObsTest, SameSeedTrialsProduceIdenticalSnapshots) {
  experiment::TrialConfig cfg;
  cfg.seed = 11;
  obs::MetricsSnapshot first;
  obs::MetricsSnapshot second;
  cfg.metrics_inspector = [&](const obs::MetricsSnapshot& s) { first = s; };
  (void)experiment::run_trial(cfg);
  cfg.metrics_inspector = [&](const obs::MetricsSnapshot& s) { second = s; };
  (void)experiment::run_trial(cfg);
  EXPECT_FALSE(first.counters.empty());
  EXPECT_EQ(first, second);
}

TEST(HarnessObsTest, AttackedTrialTraceCoversAllLayers) {
  auto& tr = obs::Tracer::instance();
  tr.enable_all();
  experiment::TrialConfig cfg;
  cfg.seed = 3;
  cfg.attack = experiment::full_attack_config();
  (void)experiment::run_trial(cfg);
  const std::string path = "test_obs_trial_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(tr.events(), path));
  tr.disable_all();
  tr.clear();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = obs::json::parse(buf.str());
  ASSERT_TRUE(doc.has_value());
  const obs::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::set<std::string> cats;
  for (const auto& e : events->array) {
    if (const obs::json::Value* cat = e.find("cat")) cats.insert(cat->string);
  }
  EXPECT_TRUE(cats.count("tcp"));
  EXPECT_TRUE(cats.count("h2"));
  EXPECT_TRUE(cats.count("net"));
  EXPECT_TRUE(cats.count("web"));
  EXPECT_TRUE(cats.count("attack"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace h2sim
