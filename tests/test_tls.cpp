#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "sim/event_loop.hpp"
#include "tcp/tcp_stack.hpp"
#include "tls/record.hpp"
#include "tls/session.hpp"

namespace h2sim::tls {
namespace {

TEST(RecordCodec, SerializeParseRoundTrip) {
  RecordHeader h;
  h.type = ContentType::kApplicationData;
  std::vector<std::uint8_t> body = {1, 2, 3, 4, 5};
  h.length = static_cast<std::uint16_t>(body.size());
  const auto wire = serialize_record(h, body);
  ASSERT_EQ(wire.size(), kRecordHeaderBytes + 5);
  EXPECT_EQ(wire[0], 23);

  RecordParser p;
  p.feed(wire);
  auto rec = p.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->header.type, ContentType::kApplicationData);
  EXPECT_EQ(rec->body, body);
  EXPECT_FALSE(p.next().has_value());
}

TEST(RecordCodec, ParserHandlesFragmentedInput) {
  RecordHeader h;
  std::vector<std::uint8_t> body(100, 0x55);
  h.length = 100;
  const auto wire = serialize_record(h, body);

  RecordParser p;
  // Feed one byte at a time.
  for (std::size_t i = 0; i < wire.size(); ++i) {
    p.feed(std::span(&wire[i], 1));
    if (i + 1 < wire.size()) EXPECT_FALSE(p.next().has_value());
  }
  auto rec = p.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->body.size(), 100u);
}

TEST(RecordCodec, ParserHandlesCoalescedRecords) {
  RecordHeader h;
  std::vector<std::uint8_t> b1(10, 1), b2(20, 2);
  h.length = 10;
  auto wire = serialize_record(h, b1);
  h.length = 20;
  const auto wire2 = serialize_record(h, b2);
  wire.insert(wire.end(), wire2.begin(), wire2.end());

  RecordParser p;
  p.feed(wire);
  auto r1 = p.next();
  auto r2 = p.next();
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(r1->body.size(), 10u);
  EXPECT_EQ(r2->body.size(), 20u);
}

/// Full client/server TLS-over-TCP fixture through the simulated path.
class TlsPairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::make_unique<net::Path>(loop_, net::Path::Config{});
    server_stack_ = std::make_unique<tcp::TcpStack>(
        loop_, sim::Rng(1), net::Path::kServerNode, tcp::TcpConfig{},
        [this](net::Packet&& p) { path_->send_from_server(std::move(p)); });
    client_stack_ = std::make_unique<tcp::TcpStack>(
        loop_, sim::Rng(2), net::Path::kClientNode, tcp::TcpConfig{},
        [this](net::Packet&& p) { path_->send_from_client(std::move(p)); });
    path_->set_server_sink(
        [this](net::Packet&& p) { server_stack_->deliver(std::move(p)); });
    path_->set_client_sink(
        [this](net::Packet&& p) { client_stack_->deliver(std::move(p)); });

    server_stack_->listen(443, [this](tcp::TcpConnection& c) {
      server_tls_ = std::make_unique<TlsSession>(c, TlsSession::Role::kServer);
      TlsSession::Callbacks cbs;
      cbs.on_established = [this] { server_established_ = true; };
      cbs.on_plaintext = [this](std::span<const std::uint8_t> b) {
        server_received_.insert(server_received_.end(), b.begin(), b.end());
        if (echo_) server_tls_->write(b);
      };
      server_tls_->set_callbacks(std::move(cbs));
    });

    tcp::TcpConnection& c = client_stack_->connect(net::Path::kServerNode, 443);
    client_tls_ = std::make_unique<TlsSession>(c, TlsSession::Role::kClient);
    TlsSession::Callbacks cbs;
    cbs.on_established = [this] { client_established_ = true; };
    cbs.on_plaintext = [this](std::span<const std::uint8_t> b) {
      client_received_.insert(client_received_.end(), b.begin(), b.end());
    };
    client_tls_->set_callbacks(std::move(cbs));
  }

  /// Runs the loop for `seconds` of additional simulated time.
  void run(double seconds = 5) {
    loop_.run(loop_.now() + sim::Duration::seconds_f(seconds));
  }

  sim::EventLoop loop_;
  std::unique_ptr<net::Path> path_;
  std::unique_ptr<tcp::TcpStack> server_stack_;
  std::unique_ptr<tcp::TcpStack> client_stack_;
  std::unique_ptr<TlsSession> server_tls_;
  std::unique_ptr<TlsSession> client_tls_;
  std::vector<std::uint8_t> server_received_;
  std::vector<std::uint8_t> client_received_;
  bool client_established_ = false;
  bool server_established_ = false;
  bool echo_ = false;
};

TEST_F(TlsPairTest, HandshakeCompletesBothSides) {
  run();
  EXPECT_TRUE(client_established_);
  EXPECT_TRUE(server_established_);
}

TEST_F(TlsPairTest, PlaintextRoundTrip) {
  echo_ = true;
  run(1);
  ASSERT_TRUE(client_established_);
  std::vector<std::uint8_t> msg(5000);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<std::uint8_t>(i);
  client_tls_->write(msg);
  run(5);
  EXPECT_EQ(server_received_, msg);
  EXPECT_EQ(client_received_, msg);  // echoed back
}

TEST_F(TlsPairTest, CiphertextDiffersFromPlaintext) {
  run(1);
  // Tap the path to confirm no plaintext pattern leaks on the wire.
  std::vector<std::uint8_t> wire_bytes;
  path_->middlebox().set_tap(
      [&](const net::Packet& p, net::Direction d, sim::TimePoint) {
        if (d == net::Direction::kClientToServer) {
          wire_bytes.insert(wire_bytes.end(), p.payload.begin(), p.payload.end());
        }
      });
  std::vector<std::uint8_t> msg(1000, 0x41);  // 'A' repeated
  client_tls_->write(msg);
  run(5);
  ASSERT_EQ(server_received_, msg);
  // The wire must not contain a run of 100 'A's.
  int run_len = 0, max_run = 0;
  for (std::uint8_t b : wire_bytes) {
    run_len = b == 0x41 ? run_len + 1 : 0;
    max_run = std::max(max_run, run_len);
  }
  EXPECT_LT(max_run, 100);
}

TEST_F(TlsPairTest, RecordOverheadIsAccounted) {
  run(1);
  const auto before = client_tls_->records_sent();
  std::vector<std::uint8_t> msg(100, 1);
  client_tls_->write(msg);
  run(1);
  EXPECT_EQ(client_tls_->records_sent(), before + 1);
}

TEST_F(TlsPairTest, LargeWritesSplitIntoMaxSizeRecords) {
  run(1);
  const auto before = client_tls_->records_sent();
  std::vector<std::uint8_t> msg(40000, 1);
  client_tls_->write(msg);
  run(5);
  // 40000 / 16384 -> 3 records.
  EXPECT_EQ(client_tls_->records_sent(), before + 3);
  EXPECT_EQ(server_received_.size(), 40000u);
}

TEST_F(TlsPairTest, ManySmallWritesSurviveTcpCoalescing) {
  run(1);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> msg(37, static_cast<std::uint8_t>(i));
    client_tls_->write(msg);
  }
  run(5);
  EXPECT_EQ(server_received_.size(), 50u * 37u);
}

TEST_F(TlsPairTest, CloseDeliversCleanTeardown) {
  run(1);
  // Server closes its side in response (full duplex teardown).
  tls::TlsSession::Callbacks cbs;
  cbs.on_peer_close = [this] { server_tls_->close(); };
  server_tls_->set_callbacks(std::move(cbs));
  client_tls_->close();
  run(5);
  EXPECT_TRUE(client_tls_->connection().fully_closed());
  EXPECT_TRUE(server_tls_->connection().fully_closed());
}

}  // namespace
}  // namespace h2sim::tls
