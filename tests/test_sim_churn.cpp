// Stress tests for the allocation-free event-loop core: slab recycling under
// schedule/cancel/reschedule churn, generation-counter safety for stale and
// loop-outliving handles, FIFO ordering under slot reuse, and the BufferPool
// and RingQueue building blocks. The steady-state assertions pin the
// tentpole guarantee: once warmed, the hot path's AllocStats stop moving.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/buffer_pool.hpp"
#include "sim/event_loop.hpp"
#include "sim/ring_queue.hpp"

namespace h2sim::sim {
namespace {

TEST(SimChurn, ScheduleCancelRescheduleStorm) {
  EventLoop loop;
  int fired = 0;
  // Repeatedly schedule a batch, cancel half, reschedule replacements. The
  // slab must recycle slots instead of growing without bound.
  for (int round = 0; round < 100; ++round) {
    std::vector<TimerHandle> handles;
    for (int i = 0; i < 64; ++i) {
      handles.push_back(
          loop.schedule_after(Duration::micros(i), [&fired] { ++fired; }));
    }
    for (int i = 0; i < 64; i += 2) handles[static_cast<std::size_t>(i)].cancel();
    for (int i = 0; i < 32; ++i) {
      loop.schedule_after(Duration::micros(100 + i), [&fired] { ++fired; });
    }
    loop.run();
  }
  EXPECT_EQ(fired, 100 * (32 + 32));
  // 64 + 32 live slots per round, recycled every round: one slab chunk (256
  // slots) is plenty, and the churn must not have grown it further.
  EXPECT_EQ(loop.alloc_stats().slab_chunks, 1u);
  EXPECT_EQ(loop.alloc_stats().callback_heap, 0u);
}

TEST(SimChurn, SteadyStateAllocStatsStopMoving) {
  EventLoop loop;
  int fired = 0;
  const auto burst = [&] {
    for (int i = 0; i < 500; ++i) {
      loop.schedule_after(Duration::micros(i), [&fired] { ++fired; });
    }
    loop.run();
  };
  burst();  // warm-up: slab chunks + heap growth happen here
  const EventLoop::AllocStats warm = loop.alloc_stats();
  EXPECT_GT(warm.slab_chunks, 0u);  // the growth path did run
  for (int round = 0; round < 20; ++round) burst();
  const EventLoop::AllocStats& after = loop.alloc_stats();
  EXPECT_EQ(after.slab_chunks, warm.slab_chunks);
  EXPECT_EQ(after.callback_heap, warm.callback_heap);
  EXPECT_EQ(after.heap_growth, warm.heap_growth);
  EXPECT_EQ(fired, 21 * 500);
}

TEST(SimChurn, CancelFromInsideCallback) {
  EventLoop loop;
  bool victim_fired = false;
  TimerHandle victim;
  // The canceller runs first (same instant, scheduled earlier) and cancels
  // the victim while it is already in the heap.
  loop.schedule_after(Duration::micros(10), [&] { victim.cancel(); });
  victim = loop.schedule_after(Duration::micros(10),
                               [&victim_fired] { victim_fired = true; });
  loop.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_FALSE(victim.pending());
}

TEST(SimChurn, CancelOwnHandleInsideCallbackIsNoop) {
  EventLoop loop;
  int fired = 0;
  TimerHandle self;
  self = loop.schedule_after(Duration::micros(1), [&] {
    ++fired;
    // The slot was released before the callback ran; cancelling the handle
    // now must neither crash nor disturb a slot reused by this schedule.
    self.cancel();
    loop.schedule_after(Duration::micros(1), [&fired] { ++fired; });
  });
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimChurn, SameInstantFifoOrderSurvivesSlabReuse) {
  EventLoop loop;
  // Force heavy slot recycling first so the same-instant batch lands in
  // shuffled slab positions.
  for (int round = 0; round < 10; ++round) {
    std::vector<TimerHandle> hs;
    for (int i = 0; i < 97; ++i) {
      hs.push_back(loop.schedule_after(Duration::micros(i % 7), [] {}));
    }
    for (int i = 0; i < 97; i += 3) hs[static_cast<std::size_t>(i)].cancel();
    loop.run();
  }
  std::vector<int> order;
  const TimePoint at = loop.now() + Duration::millis(1);
  for (int i = 0; i < 64; ++i) {
    loop.schedule_at(at, [&order, i] { order.push_back(i); });
  }
  loop.run();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimChurn, SlabGrowsPastOneChunkAndStabilizes) {
  EventLoop loop;
  int fired = 0;
  const auto flood = [&] {
    // More pending events than one 256-slot chunk holds.
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_after(Duration::micros(i), [&fired] { ++fired; });
    }
    loop.run();
  };
  flood();
  const std::uint64_t chunks = loop.alloc_stats().slab_chunks;
  EXPECT_GE(chunks, 4u);  // 1000 concurrent slots need >= 4 chunks
  flood();
  flood();
  EXPECT_EQ(loop.alloc_stats().slab_chunks, chunks);  // pool-exhaustion growth
                                                      // is a one-time cost
  EXPECT_EQ(fired, 3000);
}

TEST(SimChurn, HandleOutlivesEventLoop) {
  TimerHandle fired_handle;
  TimerHandle pending_handle;
  {
    EventLoop loop;
    fired_handle = loop.schedule_after(Duration::micros(1), [] {});
    pending_handle = loop.schedule_after(Duration::seconds(60), [] {});
    loop.run(TimePoint::origin() + Duration::millis(1));
  }
  // The loop (and its slab) are gone: every handle operation must be a
  // harmless no-op.
  EXPECT_FALSE(fired_handle.pending());
  EXPECT_FALSE(pending_handle.pending());
  fired_handle.cancel();
  pending_handle.cancel();
}

TEST(SimChurn, StaleGenerationHandleCannotTouchRecycledSlot) {
  EventLoop loop;
  bool second_fired = false;
  TimerHandle first = loop.schedule_after(Duration::micros(1), [] {});
  loop.run();  // slot released; generation bumped
  // The next schedule recycles the same slot with a new generation.
  TimerHandle second = loop.schedule_after(Duration::micros(1),
                                           [&second_fired] { second_fired = true; });
  EXPECT_FALSE(first.pending());
  first.cancel();  // stale generation: must NOT cancel the new occupant
  EXPECT_TRUE(second.pending());
  loop.run();
  EXPECT_TRUE(second_fired);
}

TEST(SimChurn, CancelledEventConsumesNoExecution) {
  EventLoop loop;
  int fired = 0;
  TimerHandle h = loop.schedule_after(Duration::micros(5), [&fired] { ++fired; });
  loop.schedule_after(Duration::micros(9), [&fired] { ++fired; });
  h.cancel();
  EXPECT_FALSE(h.pending());
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.executed_events(), 1u);
}

TEST(SimChurn, OversizedCallbackFallsBackToHeapAndStillRuns) {
  EventLoop loop;
  // Capture well past the inline small-buffer capacity.
  struct Big {
    std::uint8_t bytes[256] = {};
  };
  Big big;
  big.bytes[0] = 42;
  int seen = 0;
  loop.schedule_after(Duration::micros(1),
                      [big, &seen] { seen = big.bytes[0]; });
  EXPECT_EQ(loop.alloc_stats().callback_heap, 1u);
  loop.run();
  EXPECT_EQ(seen, 42);
}

TEST(BufferPoolTest, RecyclesCapacityAndCountsHitsMisses) {
  BufferPool pool;
  std::vector<std::uint8_t> a = pool.acquire();
  EXPECT_EQ(pool.stats().misses, 1u);
  a.assign(1000, 0xab);
  const std::uint8_t* data = a.data();
  pool.release(std::move(a));
  EXPECT_EQ(pool.stats().recycled, 1u);
  std::vector<std::uint8_t> b = pool.acquire();
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_TRUE(b.empty());
  EXPECT_GE(b.capacity(), 1000u);
  EXPECT_EQ(b.data(), data);  // same storage came back
}

TEST(BufferPoolTest, IgnoresUnallocatedBuffersAndCapsSize) {
  BufferPool pool;
  pool.release({});  // capacity 0: not pooled
  EXPECT_EQ(pool.size(), 0u);
  for (std::size_t i = 0; i < BufferPool::kMaxPooled + 5; ++i) {
    std::vector<std::uint8_t> v(8);
    pool.release(std::move(v));
  }
  EXPECT_EQ(pool.size(), BufferPool::kMaxPooled);
  EXPECT_EQ(pool.stats().discarded, 5u);
}

TEST(RingQueueTest, FifoOrderAcrossGrowthAndWraparound) {
  RingQueue<int> q;
  int next_in = 0;
  int next_out = 0;
  // Interleave pushes and pops so the head wraps repeatedly while the queue
  // grows from empty through several capacity doublings.
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 3; ++i) q.push_back(next_in++);
    for (int i = 0; i < 2 && !q.empty(); ++i) {
      EXPECT_EQ(q.front(), next_out++);
      q.pop_front();
    }
  }
  while (!q.empty()) {
    EXPECT_EQ(q.front(), next_out++);
    q.pop_front();
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(RingQueueTest, PopReleasesElementResources) {
  RingQueue<std::vector<int>> q;
  q.push_back(std::vector<int>(100, 7));
  q.pop_front();
  ASSERT_GE(q.capacity(), 1u);
  // The popped slot must have been reset, not left holding storage.
  q.push_back(std::vector<int>{});
  EXPECT_EQ(q.front().capacity(), 0u);
}

}  // namespace
}  // namespace h2sim::sim
