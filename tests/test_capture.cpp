// The wire-capture subsystem: pcapng serialization round trips, synthetic
// Ethernet/IPv4/TCP framing, TCP/TLS reassembly edge cases, and the
// subsystem's two headline guarantees — (1) export → reingest reproduces
// the live trial's adversary view exactly (32-seed round-trip identity),
// and (2) capture is purely observational: a captured trial's TrialResult
// is bit-identical to an uncaptured one apart from the capture counters.
// Also validates the committed golden corpus against the live simulator.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/boundary.hpp"
#include "analysis/predictor.hpp"
#include "analysis/trace.hpp"
#include "capture/frame.hpp"
#include "capture/pcapng.hpp"
#include "capture/reader.hpp"
#include "experiment/runner.hpp"
#include "obs/context.hpp"
#include "web/website.hpp"

#ifndef H2SIM_GOLDEN_DIR
#error "H2SIM_GOLDEN_DIR must point at the committed golden corpus"
#endif

namespace h2sim::capture {
namespace {

namespace fs = std::filesystem;

/// Unique per-test scratch directory, removed on scope exit.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : dir_(fs::temp_directory_path() /
             ("h2sim_capture_" + tag + "_" +
              std::to_string(static_cast<unsigned>(::getpid())))) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~ScratchDir() { fs::remove_all(dir_); }
  fs::path operator/(const std::string& name) const { return dir_ / name; }

 private:
  fs::path dir_;
};

// --- PcapngWriter / PcapngReader ---

TEST(Pcapng, WriterReaderRoundTrip) {
  ScratchDir dir("pcapng");
  const std::string path = (dir / "rt.pcapng").string();

  PcapngWriter writer(path);
  const std::uint32_t gw = writer.add_interface("gateway", "middlebox vantage");
  const std::uint32_t cl = writer.add_interface("client", "victim vantage");
  EXPECT_EQ(gw, 0u);
  EXPECT_EQ(cl, 1u);

  const std::vector<std::uint8_t> a = {0xde, 0xad, 0xbe, 0xef};
  const std::vector<std::uint8_t> b = {0x01};  // exercises padding to 4 bytes
  // > 2^32 ns exercises the EPB high/low timestamp split.
  writer.write_packet(gw, 5'000'000'000LL, a);
  writer.write_packet(cl, 5'000'000'123LL, b);
  EXPECT_EQ(writer.packets_written(), 2u);
  EXPECT_GT(writer.bytes_buffered(), 0u);
  ASSERT_TRUE(writer.close());

  PcapngReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(path, &error)) << error;
  ASSERT_EQ(reader.interfaces().size(), 2u);
  EXPECT_EQ(reader.interfaces()[0].name, "gateway");
  EXPECT_EQ(reader.interfaces()[1].name, "client");
  EXPECT_EQ(reader.interfaces()[0].linktype, kLinktypeEthernet);
  EXPECT_EQ(reader.interfaces()[0].tsresol_exp, 9);  // nanoseconds
  ASSERT_EQ(reader.packets().size(), 2u);
  EXPECT_EQ(reader.packets()[0].iface, gw);
  EXPECT_EQ(reader.packets()[0].ts_nanos, 5'000'000'000LL);
  EXPECT_EQ(reader.packets()[0].frame, a);
  EXPECT_EQ(reader.packets()[1].iface, cl);
  EXPECT_EQ(reader.packets()[1].ts_nanos, 5'000'000'123LL);
  EXPECT_EQ(reader.packets()[1].frame, b);
}

TEST(Pcapng, ReaderRejectsMissingAndMalformedFiles) {
  PcapngReader reader;
  std::string error;
  EXPECT_FALSE(reader.open("/nonexistent/nope.pcapng", &error));
  EXPECT_FALSE(error.empty());

  ScratchDir dir("pcapng_bad");
  const std::string path = (dir / "bad.pcapng").string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "this is not a pcapng file at all";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  error.clear();
  EXPECT_FALSE(reader.open(path, &error));
  EXPECT_FALSE(error.empty());
}

// --- Synthetic framing ---

net::Packet sample_packet() {
  net::Packet p;
  p.src = 1;
  p.dst = 2;
  p.tcp.src_port = 54321;
  p.tcp.dst_port = 443;
  p.tcp.seq = 0xCAFEBABE;
  p.tcp.ack = 0x12345678;
  p.tcp.flags = net::tcpflag::kAck;
  p.tcp.wnd = 65535;
  for (int i = 0; i < 100; ++i) p.payload.push_back(static_cast<std::uint8_t>(i));
  return p;
}

TEST(Frame, EncodeDecodeRoundTrip) {
  const net::Packet p = sample_packet();
  std::vector<std::uint8_t> frame;
  encode_frame(p, frame);
  ASSERT_EQ(frame.size(), kFrameOverheadBytes + p.payload.size());

  net::Packet out;
  std::string error;
  ASSERT_TRUE(decode_frame(frame, &out, &error)) << error;
  EXPECT_EQ(out.src, p.src);
  EXPECT_EQ(out.dst, p.dst);
  EXPECT_EQ(out.tcp.src_port, p.tcp.src_port);
  EXPECT_EQ(out.tcp.dst_port, p.tcp.dst_port);
  EXPECT_EQ(out.tcp.seq, p.tcp.seq);
  EXPECT_EQ(out.tcp.ack, p.tcp.ack);
  EXPECT_EQ(out.tcp.flags, p.tcp.flags);
  EXPECT_EQ(out.tcp.wnd, p.tcp.wnd);
  EXPECT_EQ(out.payload, p.payload);
}

TEST(Frame, AllTcpFlagsSurviveTheWireTranslation) {
  for (std::uint8_t flags :
       {net::tcpflag::kSyn, net::tcpflag::kAck, net::tcpflag::kFin,
        net::tcpflag::kRst,
        static_cast<std::uint8_t>(net::tcpflag::kSyn | net::tcpflag::kAck),
        static_cast<std::uint8_t>(net::tcpflag::kFin | net::tcpflag::kAck)}) {
    net::Packet p = sample_packet();
    p.tcp.flags = flags;
    p.payload.clear();
    std::vector<std::uint8_t> frame;
    encode_frame(p, frame);
    net::Packet out;
    ASSERT_TRUE(decode_frame(frame, &out, nullptr));
    EXPECT_EQ(out.tcp.flags, flags) << "flags " << static_cast<int>(flags);
  }
}

TEST(Frame, ChecksumsValidateLikeADissectorWould) {
  const net::Packet p = sample_packet();
  std::vector<std::uint8_t> frame;
  encode_frame(p, frame);

  // RFC 1071: the checksum of a header that includes its own (correct)
  // checksum field is 0 — exactly the verification a dissector performs.
  const std::span<const std::uint8_t> ip(frame.data() + kEthernetHeaderBytes,
                                         kIpv4HeaderBytes);
  EXPECT_EQ(inet_checksum(ip), 0);

  // TCP checksum over pseudo-header + segment must also validate.
  const std::size_t seg_len = kTcpHeaderBytes + p.payload.size();
  std::vector<std::uint8_t> pseudo;
  pseudo.insert(pseudo.end(), frame.begin() + kEthernetHeaderBytes + 12,
                frame.begin() + kEthernetHeaderBytes + 20);  // src+dst IP
  pseudo.push_back(0);
  pseudo.push_back(6);  // protocol TCP
  pseudo.push_back(static_cast<std::uint8_t>(seg_len >> 8));
  pseudo.push_back(static_cast<std::uint8_t>(seg_len & 0xFF));
  pseudo.insert(pseudo.end(),
                frame.begin() + kEthernetHeaderBytes + kIpv4HeaderBytes,
                frame.end());
  EXPECT_EQ(inet_checksum(pseudo), 0);
}

TEST(Frame, DecodeRejectsNonIpv4TcpFrames) {
  net::Packet out;
  std::string error;

  // Too short for Ethernet.
  EXPECT_FALSE(decode_frame(std::vector<std::uint8_t>(5), &out, &error));

  // Valid frame, ethertype rewritten to ARP.
  std::vector<std::uint8_t> frame;
  encode_frame(sample_packet(), frame);
  frame[12] = 0x08;
  frame[13] = 0x06;
  EXPECT_FALSE(decode_frame(frame, &out, &error));
  EXPECT_FALSE(error.empty());

  // Valid frame, IP protocol rewritten to UDP.
  frame.clear();
  encode_frame(sample_packet(), frame);
  frame[kEthernetHeaderBytes + 9] = 17;
  EXPECT_FALSE(decode_frame(frame, &out, nullptr));
}

TEST(Frame, DecodeToleratesEthernetPadding) {
  // Minimum Ethernet frames are zero-padded to 60 bytes by real NICs; the
  // IP total-length field, not the frame length, must delimit the payload.
  net::Packet p = sample_packet();
  p.payload = {0xAA, 0xBB};
  std::vector<std::uint8_t> frame;
  encode_frame(p, frame);
  frame.resize(60, 0);
  net::Packet out;
  ASSERT_TRUE(decode_frame(frame, &out, nullptr));
  EXPECT_EQ(out.payload, p.payload);
}

// --- TlsRecordReassembler edge cases ---

/// 5-byte TLS record header + body.
std::vector<std::uint8_t> tls_record(std::uint8_t type, std::size_t body_len) {
  std::vector<std::uint8_t> out = {
      type, 0x03, 0x03, static_cast<std::uint8_t>(body_len >> 8),
      static_cast<std::uint8_t>(body_len & 0xFF)};
  out.resize(out.size() + body_len, 0x5A);
  return out;
}

CapturedPacket s2c_packet(std::uint32_t seq, std::vector<std::uint8_t> payload,
                          double t_ms, std::uint8_t flags = net::tcpflag::kAck) {
  CapturedPacket cp;
  cp.time = sim::TimePoint::from_nanos(static_cast<std::int64_t>(t_ms * 1e6));
  cp.packet.src = 2;
  cp.packet.dst = 1;
  cp.packet.tcp.src_port = 443;  // from the server => server->client
  cp.packet.tcp.dst_port = 50000;
  cp.packet.tcp.seq = seq;
  cp.packet.tcp.flags = flags;
  cp.packet.payload = std::move(payload);
  return cp;
}

/// A reassembler whose server->client stream is already SYN-synced at `isn`.
TlsRecordReassembler synced_reassembler(std::uint32_t isn) {
  TlsRecordReassembler r;
  r.feed(s2c_packet(isn, {}, 0.0, net::tcpflag::kSyn | net::tcpflag::kAck));
  return r;
}

TEST(Reassembler, RecordSplitAcrossPacketsReassembles) {
  TlsRecordReassembler r = synced_reassembler(1000);
  const auto rec = tls_record(23, 400);
  // Split mid-header and mid-body: 3 + 200 + rest.
  std::vector<std::uint8_t> p1(rec.begin(), rec.begin() + 3);
  std::vector<std::uint8_t> p2(rec.begin() + 3, rec.begin() + 203);
  std::vector<std::uint8_t> p3(rec.begin() + 203, rec.end());
  r.feed(s2c_packet(1001, p1, 1.0));
  r.feed(s2c_packet(1004, p2, 2.0));
  EXPECT_TRUE(r.trace().records().empty());  // still incomplete
  r.feed(s2c_packet(1204, p3, 3.0));
  ASSERT_EQ(r.trace().records().size(), 1u);
  const analysis::RecordObs& obs = r.trace().records()[0];
  EXPECT_EQ(obs.body_len, 400u);
  EXPECT_EQ(obs.dir, net::Direction::kServerToClient);
  // Attributed to the packet that completed the record.
  EXPECT_EQ(obs.time, sim::TimePoint::from_nanos(3'000'000));
}

TEST(Reassembler, TwoRecordsCoalescedInOnePacketBothEmerge) {
  TlsRecordReassembler r = synced_reassembler(2000);
  std::vector<std::uint8_t> payload = tls_record(23, 100);
  const auto second = tls_record(23, 200);
  payload.insert(payload.end(), second.begin(), second.end());
  r.feed(s2c_packet(2001, payload, 5.0));
  ASSERT_EQ(r.trace().records().size(), 2u);
  EXPECT_EQ(r.trace().records()[0].body_len, 100u);
  EXPECT_EQ(r.trace().records()[1].body_len, 200u);
  EXPECT_EQ(r.trace().records()[0].time, r.trace().records()[1].time);
}

TEST(Reassembler, OutOfOrderPacketsReorderBySequence) {
  TlsRecordReassembler r = synced_reassembler(3000);
  const auto rec = tls_record(23, 300);
  std::vector<std::uint8_t> p1(rec.begin(), rec.begin() + 100);
  std::vector<std::uint8_t> p2(rec.begin() + 100, rec.end());
  r.feed(s2c_packet(3101, p2, 1.0));  // arrives first
  EXPECT_TRUE(r.trace().records().empty());
  r.feed(s2c_packet(3001, p1, 2.0));  // the gap filler
  ASSERT_EQ(r.trace().records().size(), 1u);
  EXPECT_EQ(r.trace().records()[0].body_len, 300u);
}

TEST(Reassembler, DuplicatePacketsDedupeBySequence) {
  TlsRecordReassembler r = synced_reassembler(4000);
  const auto rec = tls_record(23, 150);
  const std::vector<std::uint8_t> payload(rec.begin(), rec.end());
  r.feed(s2c_packet(4001, payload, 1.0));
  r.feed(s2c_packet(4001, payload, 2.0));  // full retransmission
  ASSERT_EQ(r.trace().records().size(), 1u);

  // Overlapping retransmission: old bytes + one fresh record appended.
  std::vector<std::uint8_t> overlap(rec.begin() + 100, rec.end());
  const auto fresh = tls_record(23, 80);
  overlap.insert(overlap.end(), fresh.begin(), fresh.end());
  r.feed(s2c_packet(4101, overlap, 3.0));
  ASSERT_EQ(r.trace().records().size(), 2u);
  EXPECT_EQ(r.trace().records()[1].body_len, 80u);
}

TEST(Reassembler, DirectionComesFromTheServerPort) {
  ReassemblerConfig cfg;
  cfg.server_port = 8443;
  TlsRecordReassembler r(cfg);
  net::Packet p;
  p.tcp.dst_port = 8443;
  EXPECT_EQ(r.direction_of(p), net::Direction::kClientToServer);
  p.tcp.dst_port = 50000;
  EXPECT_EQ(r.direction_of(p), net::Direction::kServerToClient);
}

// --- expand_capture_path ---

TEST(CapturePath, PlaceholderSubstitutionAndCollisionAvoidance) {
  using experiment::expand_capture_path;
  EXPECT_EQ(expand_capture_path("caps/trial_{seed}.pcapng", 3, 42, 10),
            "caps/trial_42.pcapng");
  EXPECT_EQ(expand_capture_path("{index}_{seed}.pcapng", 3, 42, 10),
            "3_42.pcapng");
  // No placeholder + multi-trial sweep: index inserted before the extension
  // so concurrent trials never write the same file.
  EXPECT_EQ(expand_capture_path("caps/out.pcapng", 3, 42, 10),
            "caps/out_3.pcapng");
  EXPECT_EQ(expand_capture_path("caps/out", 3, 42, 10), "caps/out_3");
  // The dot in a directory name is not an extension.
  EXPECT_EQ(expand_capture_path("caps.d/out", 3, 42, 10), "caps.d/out_3");
  // Single trial: pattern used verbatim.
  EXPECT_EQ(expand_capture_path("caps/out.pcapng", 0, 42, 1),
            "caps/out.pcapng");
}

// --- Round-trip identity over 32 seeds (the acceptance criterion) ---

experiment::TrialConfig small_site(experiment::TrialConfig cfg) {
  cfg.site.pre_objects = 2;
  cfg.site.filler_objects = 8;
  cfg.site.head_fillers = 3;
  return cfg;
}

analysis::SizeIdentityDb default_emblem_db() {
  const web::Website site = web::make_isidewith_site();
  analysis::SizeIdentityDb db;
  for (int k = 0; k < 8; ++k) {
    db.add("party" + std::to_string(k),
           site.find(site.emblem_paths[static_cast<std::size_t>(k)])->size);
  }
  return db;
}

TEST(RoundTrip, ThirtyTwoSeedsReproduceTheLiveAdversaryView) {
  constexpr std::size_t kTrials = 32;
  ScratchDir dir("roundtrip");

  std::vector<analysis::PacketTrace> live(kTrials);
  std::vector<experiment::TrialConfig> cfgs;
  for (std::size_t i = 0; i < kTrials; ++i) {
    experiment::TrialConfig cfg;
    cfg.seed = 100 + i;
    if (i < 16) {
      cfg.attack = experiment::full_attack_config();
    } else {
      cfg = small_site(std::move(cfg));  // attack off, multiplexed baseline
    }
    cfg.trace_inspector = [&live, i](const analysis::PacketTrace& t) {
      live[i] = t;  // per-trial slot: safe from concurrent inspectors
    };
    cfgs.push_back(std::move(cfg));
  }

  experiment::RunOptions opts;
  opts.capture_path = (dir / "trial_{index}.pcapng").string();
  const std::vector<experiment::TrialResult> results =
      experiment::run_trials(cfgs, opts);
  ASSERT_EQ(results.size(), kTrials);

  const analysis::SizeIdentityDb emblem_db = default_emblem_db();
  for (std::size_t i = 0; i < kTrials; ++i) {
    const std::string path =
        (dir / ("trial_" + std::to_string(i) + ".pcapng")).string();

    PcapReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, &error)) << "trial " << i << ": " << error;
    EXPECT_EQ(reader.skipped_frames(), 0u) << "trial " << i;

    const auto gw = reader.find_interface("gateway");
    ASSERT_TRUE(gw.has_value()) << "trial " << i;
    const auto packets = reader.packets_on(*gw);
    EXPECT_EQ(packets.size(), results[i].capture_packets) << "trial " << i;
    EXPECT_EQ(fs::file_size(path), results[i].capture_bytes_written)
        << "trial " << i;

    // (1) Record-for-record identity with the live gateway monitor.
    TlsRecordReassembler reassembler;
    reassembler.feed_all(std::span<const CapturedPacket* const>(packets));
    ASSERT_EQ(reassembler.trace().records().size(), live[i].records().size())
        << "trial " << i;
    EXPECT_TRUE(reassembler.trace().records() == live[i].records())
        << "record stream diverged at trial " << i;
    EXPECT_EQ(static_cast<std::size_t>(reassembler.get_count()),
              static_cast<std::size_t>(results[i].gets_counted))
        << "trial " << i;

    // (2) The offline pipeline reaches the live trial's verdicts.
    if (i < 16) {
      const auto detections = analysis::detect_objects(reassembler.trace());
      const auto pred = analysis::predict_sequence(detections, emblem_db);
      EXPECT_EQ(pred.ranking, results[i].predicted)
          << "offline prediction diverged at trial " << i;
    }
  }
}

TEST(RoundTrip, CaptureIsPurelyObservational) {
  ScratchDir dir("observational");
  for (const bool attack_on : {true, false}) {
    experiment::TrialConfig off_cfg;
    off_cfg.seed = 77;
    if (attack_on) off_cfg.attack = experiment::full_attack_config();
    else off_cfg = small_site(std::move(off_cfg));

    experiment::TrialConfig on_cfg = off_cfg;
    on_cfg.capture.path =
        (dir / (attack_on ? "on.pcapng" : "off.pcapng")).string();
    on_cfg.capture.client_vantage = true;
    on_cfg.capture.gateway_vantage = true;
    on_cfg.capture.server_vantage = true;

    const experiment::TrialResult without = experiment::run_trial(off_cfg);
    experiment::TrialResult with = experiment::run_trial(on_cfg);

    EXPECT_GT(with.capture_packets, 0u);
    EXPECT_GT(with.capture_bytes_written, 0u);
    EXPECT_EQ(without.capture_packets, 0u);
    EXPECT_EQ(without.capture_bytes_written, 0u);
    // Every other field — timings, retransmits, verdicts, hot-path alloc
    // counts — must be bit-identical: the taps observe, never perturb.
    with.capture_packets = 0;
    with.capture_bytes_written = 0;
    EXPECT_EQ(with, without) << (attack_on ? "full attack" : "baseline");
  }
}

// --- Golden corpus ---

TEST(Golden, Table2CaptureReproducesTheLiveSeed7Attack) {
  PcapReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(std::string(H2SIM_GOLDEN_DIR) + "/table2_seed7.pcapng",
                          &error))
      << error;
  EXPECT_EQ(reader.skipped_frames(), 0u);
  const auto gw = reader.find_interface("gateway");
  ASSERT_TRUE(gw.has_value());

  // The live trial the golden file was exported from.
  experiment::TrialConfig cfg;
  cfg.seed = 7;
  cfg.attack = experiment::full_attack_config();
  analysis::PacketTrace live;
  cfg.trace_inspector = [&live](const analysis::PacketTrace& t) { live = t; };
  const experiment::TrialResult r = experiment::run_trial(cfg);

  TlsRecordReassembler reassembler;
  reassembler.feed_all(
      std::span<const CapturedPacket* const>(reader.packets_on(*gw)));
  ASSERT_EQ(reassembler.trace().records().size(), live.records().size());
  EXPECT_TRUE(reassembler.trace().records() == live.records())
      << "golden capture no longer matches the live simulator";

  // Offline analysis of the committed file recovers the full Table-2
  // ranking: all 8 emblems, in the order the victim's answers produced.
  const auto detections = analysis::detect_objects(reassembler.trace());
  const auto pred = analysis::predict_sequence(detections, default_emblem_db());
  ASSERT_EQ(pred.ranking.size(), 8u);
  EXPECT_EQ(pred.ranking, r.predicted);
  for (int j = 0; j < 8; ++j) {
    EXPECT_EQ(pred.ranking[static_cast<std::size_t>(j)],
              "party" + std::to_string(r.truth[static_cast<std::size_t>(j)]))
        << "position " << j;
  }
}

TEST(Golden, BaselineCaptureIngestsButDefeatsTheBoundaryDetector) {
  PcapReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(
      std::string(H2SIM_GOLDEN_DIR) + "/baseline_small_seed1.pcapng", &error))
      << error;
  EXPECT_EQ(reader.skipped_frames(), 0u);
  const auto gw = reader.find_interface("gateway");
  ASSERT_TRUE(gw.has_value());

  TlsRecordReassembler reassembler;
  reassembler.feed_all(
      std::span<const CapturedPacket* const>(reader.packets_on(*gw)));
  EXPECT_GT(reassembler.trace().records().size(), 0u);
  EXPECT_GT(reassembler.get_count(), 0);

  // Without the attack the transfer is multiplexed, and size-based
  // identification cannot recover the full ranking — the paper's premise.
  const auto detections = analysis::detect_objects(reassembler.trace());
  const auto pred = analysis::predict_sequence(detections, default_emblem_db());
  std::size_t identified = 0;
  for (const std::string& label : pred.ranking) {
    if (!label.empty()) ++identified;
  }
  EXPECT_LT(identified, 8u);
}

}  // namespace
}  // namespace h2sim::capture
