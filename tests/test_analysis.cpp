#include <gtest/gtest.h>

#include "analysis/boundary.hpp"
#include "analysis/dom.hpp"
#include "analysis/predictor.hpp"
#include "analysis/stats.hpp"
#include "analysis/trace.hpp"

namespace h2sim::analysis {
namespace {

ServerWireEvent data_event(std::uint32_t sid, std::size_t bytes, bool end = false,
                           double t_ms = 0) {
  ServerWireEvent e;
  e.time = sim::TimePoint::from_nanos(static_cast<std::int64_t>(t_ms * 1e6));
  e.stream_id = sid;
  e.object = "obj" + std::to_string(sid);
  e.data_bytes = bytes;
  e.is_data = true;
  e.end_stream = end;
  return e;
}

TEST(Dom, ContiguousTransmissionIsZero) {
  WireLog log;
  for (int i = 0; i < 5; ++i) log.add(data_event(1, 1000, i == 4));
  const DomResult r = degree_of_multiplexing(log, 1);
  EXPECT_EQ(r.dom, 0.0);
  EXPECT_EQ(r.runs, 1u);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.total_bytes, 5000u);
}

TEST(Dom, PerfectAlternationApproachesOne) {
  WireLog log;
  for (int i = 0; i < 10; ++i) {
    log.add(data_event(1, 1000, i == 9));
    log.add(data_event(3, 1000, i == 9));
  }
  const DomResult r = degree_of_multiplexing(log, 1);
  EXPECT_DOUBLE_EQ(r.dom, 1.0 - 1000.0 / 10000.0);
  EXPECT_EQ(r.runs, 10u);
}

TEST(Dom, LargestRunGoverns) {
  WireLog log;
  // Stream 1: run of 3, then foreign, then run of 2.
  log.add(data_event(1, 1000));
  log.add(data_event(1, 1000));
  log.add(data_event(1, 1000));
  log.add(data_event(3, 500));
  log.add(data_event(1, 1000));
  log.add(data_event(1, 1000, true));
  const DomResult r = degree_of_multiplexing(log, 1);
  EXPECT_DOUBLE_EQ(r.dom, 1.0 - 3000.0 / 5000.0);
  EXPECT_EQ(r.runs, 2u);
}

TEST(Dom, ControlFramesDoNotBreakRuns) {
  WireLog log;
  log.add(data_event(1, 1000));
  ServerWireEvent ctrl;
  ctrl.stream_id = 3;
  ctrl.is_data = false;  // HEADERS/WINDOW_UPDATE etc.
  log.add(ctrl);
  log.add(data_event(1, 1000, true));
  EXPECT_EQ(degree_of_multiplexing(log, 1).dom, 0.0);
}

TEST(Dom, ObjectSummaryAcrossCopies) {
  WireLog log;
  // Copy 1 (stream 1): interleaved. Copy 2 (stream 5): clean.
  log.add(data_event(1, 1000));
  log.add(data_event(3, 1000));
  log.add(data_event(1, 1000, true));
  log.add(data_event(5, 2000, true));
  // Both stream 1 and 5 carry the same object label.
  WireLog relabeled;
  for (auto ev : log.events()) {
    if (ev.stream_id == 1 || ev.stream_id == 5) ev.object = "html";
    relabeled.add(ev);
  }
  const ObjectDom od = object_dom(relabeled, "html");
  EXPECT_EQ(od.copies.size(), 2u);
  EXPECT_GT(od.primary_dom, 0.0);
  EXPECT_FALSE(od.primary_serialized);
  EXPECT_TRUE(od.any_copy_serialized);
  EXPECT_EQ(od.min_dom, 0.0);
}

TEST(Dom, MissingObjectIsFullyMultiplexedByConvention) {
  WireLog log;
  const ObjectDom od = object_dom(log, "ghost");
  EXPECT_EQ(od.min_dom, 1.0);
  EXPECT_FALSE(od.any_copy_serialized);
}

// --- Boundary detection ---

RecordObs rec(double t_ms, std::size_t body,
              net::Direction dir = net::Direction::kServerToClient) {
  RecordObs r;
  r.time = sim::TimePoint::from_nanos(static_cast<std::int64_t>(t_ms * 1e6));
  r.dir = dir;
  r.type = tls::ContentType::kApplicationData;
  r.body_len = body;
  return r;
}

TEST(Boundary, SplitsOnSubFullRecords) {
  PacketTrace trace;
  // Object A: 3 full (1049) + tail 500; object B: 2 full + tail 300.
  for (int i = 0; i < 3; ++i) trace.add(rec(i, 1049));
  trace.add(rec(3, 500));
  for (int i = 0; i < 2; ++i) trace.add(rec(4 + i, 1049));
  trace.add(rec(6, 300));
  const auto objs = detect_objects(trace);
  ASSERT_EQ(objs.size(), 2u);
  EXPECT_EQ(objs[0].size_estimate, 3 * 1024 + 475u);
  EXPECT_TRUE(objs[0].ended_by_delimiter);
  EXPECT_EQ(objs[1].size_estimate, 2 * 1024 + 275u);
}

TEST(Boundary, IgnoresControlChatterAndDirection) {
  PacketTrace trace;
  trace.add(rec(0, 29));                                      // WINDOW_UPDATE
  trace.add(rec(0.5, 300, net::Direction::kClientToServer));  // a GET
  trace.add(rec(1, 1049));
  trace.add(rec(2, 500));
  const auto objs = detect_objects(trace);
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0].records, 2u);
}

TEST(Boundary, IdleGapSplitsWithoutDelimiter) {
  PacketTrace trace;
  trace.add(rec(0, 1049));
  trace.add(rec(1, 1049));
  trace.add(rec(500, 1049));  // long silence before
  trace.add(rec(501, 400));
  const auto objs = detect_objects(trace);
  ASSERT_EQ(objs.size(), 2u);
  EXPECT_FALSE(objs[0].ended_by_delimiter);
  EXPECT_TRUE(objs[1].ended_by_delimiter);
}

TEST(Boundary, EmptyTraceYieldsNothing) {
  PacketTrace trace;
  EXPECT_TRUE(detect_objects(trace).empty());
}

TEST(Boundary, ZeroLengthObjectIsInvisibleAndDoesNotCorruptNeighbors) {
  // A zero-length object (204/304-style response) puts only a small HEADERS
  // record on the wire — control-sized, below min_body_record. It must
  // neither appear as a detection nor split or inflate its neighbors.
  PacketTrace trace;
  for (int i = 0; i < 3; ++i) trace.add(rec(i, 1049));
  trace.add(rec(3, 500));   // object A tail
  trace.add(rec(3.5, 45));  // the empty object's HEADERS-only response
  for (int i = 0; i < 2; ++i) trace.add(rec(4 + i, 1049));
  trace.add(rec(6, 300));  // object B tail
  const auto objs = detect_objects(trace);
  ASSERT_EQ(objs.size(), 2u);
  EXPECT_EQ(objs[0].size_estimate, 3 * 1024 + 475u);
  EXPECT_EQ(objs[1].size_estimate, 2 * 1024 + 275u);
}

TEST(Boundary, SingleRecordObjectIsItsOwnDelimiter) {
  // An object small enough for one sub-full record: the record both carries
  // the body and delimits it (Figure 1's degenerate case).
  PacketTrace trace;
  trace.add(rec(0, 1049));
  trace.add(rec(1, 1049));
  trace.add(rec(2, 700));  // object A tail
  trace.add(rec(3, 400));  // object B: single record
  trace.add(rec(4, 1049));
  trace.add(rec(5, 200));  // object C tail
  const auto objs = detect_objects(trace);
  ASSERT_EQ(objs.size(), 3u);
  EXPECT_EQ(objs[1].records, 1u);
  EXPECT_EQ(objs[1].size_estimate, 375u);
  EXPECT_TRUE(objs[1].ended_by_delimiter);
  EXPECT_EQ(objs[1].start, objs[1].end);
}

TEST(Boundary, TraceOfOneRecordYieldsOneObject) {
  PacketTrace trace;
  trace.add(rec(0, 400));
  const auto objs = detect_objects(trace);
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0].records, 1u);
  EXPECT_EQ(objs[0].size_estimate, 375u);
}

// --- Predictor ---

TEST(Predictor, IdentifiesWithinTolerance) {
  SizeIdentityDb db;
  db.add("party0", 5200);
  db.add("party1", 6700);
  auto m = db.identify(5250);  // ~1% off
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->label, "party0");
  EXPECT_FALSE(db.identify(6000).has_value());  // between entries
}

TEST(Predictor, PicksNearestWhenMultipleMatch) {
  SizeIdentityDb db;
  db.set_tolerance(0.5);
  db.add("a", 1000);
  db.add("b", 1100);
  EXPECT_EQ(db.identify(1090)->label, "b");
}

std::vector<DetectedObject> detections_of(std::initializer_list<std::size_t> sizes) {
  std::vector<DetectedObject> dets;
  for (std::size_t s : sizes) {
    DetectedObject d;
    d.size_estimate = s;
    d.ended_by_delimiter = true;
    dets.push_back(d);
  }
  return dets;
}

TEST(Predictor, SequenceIsLongestDistinctRun) {
  SizeIdentityDb db;
  db.add("party0", 5200);
  db.add("party1", 6700);
  db.add("party2", 8600);
  const auto pred =
      predict_sequence(detections_of({8600, 123456, 5200, 5200, 6700}), db);
  // The duplicate 5200 splits the runs; the latest distinct run wins.
  ASSERT_EQ(pred.ranking.size(), 2u);
  EXPECT_EQ(pred.ranking[0], "party0");
  EXPECT_EQ(pred.ranking[1], "party1");
  ASSERT_EQ(pred.unmatched.size(), 1u);
  EXPECT_EQ(pred.unmatched[0], 123456u);
}

TEST(Predictor, JunkPrefixDoesNotShiftTheBurst) {
  // The disrupt-phase chaos can produce coincidental emblem-sized junk ahead
  // of the real burst; the sliding window must still lock onto the full
  // burst.
  SizeIdentityDb db;
  db.add("a", 1000);
  db.add("b", 2000);
  db.add("c", 3000);
  db.add("d", 4000);
  const auto pred = predict_sequence(
      detections_of({3000, 4000,  // junk "c d"
                     1000, 2000, 3000, 4000}),  // the real burst "a b c d"
      db, 4);
  ASSERT_EQ(pred.ranking.size(), 4u);
  EXPECT_EQ(pred.ranking[0], "a");
  EXPECT_EQ(pred.ranking[1], "b");
  EXPECT_EQ(pred.ranking[2], "c");
  EXPECT_EQ(pred.ranking[3], "d");
}

// --- Stats helpers ---

TEST(Stats, MeanStddevMedian) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.01);
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 50), 5.0);
  EXPECT_DOUBLE_EQ(percent_true({true, false, true, true}), 75.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Trace, DirectionFilters) {
  PacketTrace trace;
  trace.add(rec(0, 100));
  trace.add(rec(1, 100, net::Direction::kClientToServer));
  EXPECT_EQ(trace.in_direction(net::Direction::kServerToClient).size(), 1u);
  EXPECT_EQ(trace.count_appdata(net::Direction::kClientToServer, 50), 1u);
  EXPECT_EQ(trace.count_appdata(net::Direction::kClientToServer, 200), 0u);
}

TEST(WireLogHelpers, StreamsForObject) {
  WireLog log;
  auto ev = data_event(1, 100);
  ev.object = "x";
  log.add(ev);
  ev = data_event(5, 100);
  ev.object = "x";
  log.add(ev);
  ev = data_event(1, 100);
  ev.object = "x";
  log.add(ev);
  const auto streams = log.streams_for("x");
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0], 1u);
  EXPECT_EQ(streams[1], 5u);
}

}  // namespace
}  // namespace h2sim::analysis
