#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.hpp"
#include "sim/random.hpp"

namespace h2sim::sim {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(TimePoint::from_nanos(300), [&] { order.push_back(3); });
  loop.schedule_at(TimePoint::from_nanos(100), [&] { order.push_back(1); });
  loop.schedule_at(TimePoint::from_nanos(200), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now().count_nanos(), 300);
}

TEST(EventLoop, SameInstantIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(TimePoint::from_nanos(50), [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  TimePoint fired;
  loop.schedule_after(Duration::millis(5), [&] {
    loop.schedule_after(Duration::millis(7), [&] { fired = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired.count_nanos(), Duration::millis(12).count_nanos());
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  TimerHandle h = loop.schedule_after(Duration::millis(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelAfterFireIsNoop) {
  EventLoop loop;
  int count = 0;
  TimerHandle h = loop.schedule_after(Duration::millis(1), [&] { ++count; });
  loop.run();
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or affect anything
  loop.run();
  EXPECT_EQ(count, 1);
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  loop.schedule_after(Duration::millis(10), [&] {
    // Scheduling "in the past" from inside a callback fires promptly.
    loop.schedule_at(TimePoint::from_nanos(0), [&] {
      EXPECT_EQ(loop.now().count_nanos(), Duration::millis(10).count_nanos());
    });
  });
  loop.run();
}

TEST(EventLoop, RunUntilStopsAtBound) {
  EventLoop loop;
  bool late = false;
  loop.schedule_after(Duration::millis(5), [] {});
  loop.schedule_after(Duration::millis(50), [&] { late = true; });
  loop.run(TimePoint::origin() + Duration::millis(10));
  EXPECT_FALSE(late);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.run();
  EXPECT_TRUE(late);
}

TEST(EventLoop, StopFromCallback) {
  EventLoop loop;
  int executed = 0;
  loop.schedule_after(Duration::millis(1), [&] {
    ++executed;
    loop.stop();
  });
  loop.schedule_after(Duration::millis(2), [&] { ++executed; });
  loop.run();
  EXPECT_EQ(executed, 1);
  loop.run();
  EXPECT_EQ(executed, 2);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.uniform(17), 17u);
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    const auto v = r.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng r(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  const double p = static_cast<double>(hits) / n;
  EXPECT_NEAR(p, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.3);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  Rng a2(42);
  Rng child2 = a2.split();
  // Same lineage -> same stream.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(5);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  r.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Time, DurationArithmetic) {
  EXPECT_EQ((Duration::millis(1) + Duration::micros(500)).count_nanos(), 1'500'000);
  EXPECT_EQ((Duration::seconds(1) - Duration::millis(250)).to_millis(), 750.0);
  EXPECT_EQ((Duration::millis(10) * 3).to_millis(), 30.0);
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
}

TEST(Time, TimePointArithmetic) {
  const TimePoint t = TimePoint::origin() + Duration::millis(5);
  EXPECT_EQ((t - TimePoint::origin()).to_millis(), 5.0);
  EXPECT_EQ((t + Duration::millis(5)).to_millis(), 10.0);
}

}  // namespace
}  // namespace h2sim::sim
