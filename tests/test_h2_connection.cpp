#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "h2_fixture.hpp"
#include "http/message.hpp"

namespace h2sim::h2 {
namespace {

using h2sim::testing::H2Pair;

hpack::HeaderList get(const std::string& path) {
  http::Request r;
  r.authority = "example.com";
  r.path = path;
  return r.to_h2_headers();
}

TEST(H2Connection, SettingsHandshakeCompletes) {
  H2Pair pair;
  pair.run(1);
  ASSERT_TRUE(pair.client);
  ASSERT_TRUE(pair.server);
  EXPECT_TRUE(pair.client->ready());
  EXPECT_TRUE(pair.server->ready());
  EXPECT_FALSE(pair.client->dead());
}

TEST(H2Connection, RequestResponseRoundTrip) {
  H2Pair pair;
  pair.run(1);

  std::vector<std::uint8_t> body;
  bool ended = false;
  h2::ClientConnection::Handlers ch;
  ch.on_response_data = [&](std::uint32_t, std::span<const std::uint8_t> b, bool end) {
    body.insert(body.end(), b.begin(), b.end());
    ended |= end;
  };
  pair.client->set_handlers(std::move(ch));

  h2::ServerConnection::Handlers sh;
  sh.on_request = [&](std::uint32_t sid, const hpack::HeaderList& headers) {
    auto req = http::Request::from_h2_headers(headers);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->path, "/hello");
    pair.server->respond_headers(sid, 200);
    std::vector<std::uint8_t> data(5000, 0x5a);
    pair.server->send_body_chunk(sid, data, true);
  };
  pair.server->set_handlers(std::move(sh));

  const std::uint32_t sid = pair.client->send_request(get("/hello"));
  EXPECT_EQ(sid, 1u);
  pair.run(5);
  EXPECT_EQ(body.size(), 5000u);
  EXPECT_TRUE(ended);
}

TEST(H2Connection, StreamIdsIncreaseByTwo) {
  H2Pair pair;
  pair.run(1);
  EXPECT_EQ(pair.client->send_request(get("/a")), 1u);
  EXPECT_EQ(pair.client->send_request(get("/b")), 3u);
  EXPECT_EQ(pair.client->send_request(get("/c")), 5u);
}

TEST(H2Connection, RoundRobinInterleavesStreams) {
  h2::ConnectionConfig scfg;
  scfg.scheduler = h2::SchedulerKind::kRoundRobin;
  scfg.data_chunk_size = 1000;
  H2Pair pair(scfg);
  pair.run(1);

  std::vector<std::uint32_t> data_order;
  h2::ClientConnection::Handlers ch;
  ch.on_response_data = [&](std::uint32_t sid, std::span<const std::uint8_t>, bool) {
    data_order.push_back(sid);
  };
  pair.client->set_handlers(std::move(ch));

  h2::ServerConnection::Handlers sh;
  sh.on_request = [&](std::uint32_t sid, const hpack::HeaderList&) {
    pair.server->respond_headers(sid, 200);
    // Enqueue everything at once so the scheduler decides interleaving.
    pair.server->send_body_chunk(sid, std::vector<std::uint8_t>(8000, 1), true);
  };
  pair.server->set_handlers(std::move(sh));

  pair.client->send_request(get("/a"));
  pair.client->send_request(get("/b"));
  pair.run(5);

  // Both streams' frames should alternate at least once.
  bool interleaved = false;
  for (std::size_t i = 2; i < data_order.size(); ++i) {
    if (data_order[i] != data_order[i - 1]) interleaved = true;
  }
  EXPECT_TRUE(interleaved);
}

TEST(H2Connection, SequentialSchedulerFinishesFirstStreamFirst) {
  h2::ConnectionConfig scfg;
  scfg.scheduler = h2::SchedulerKind::kSequential;
  scfg.data_chunk_size = 1000;
  H2Pair pair(scfg);
  pair.run(1);

  std::vector<std::uint32_t> data_order;
  h2::ClientConnection::Handlers ch;
  ch.on_response_data = [&](std::uint32_t sid, std::span<const std::uint8_t>, bool) {
    data_order.push_back(sid);
  };
  pair.client->set_handlers(std::move(ch));

  int pending = 0;
  h2::ServerConnection::Handlers sh;
  sh.on_request = [&](std::uint32_t sid, const hpack::HeaderList&) {
    pair.server->respond_headers(sid, 200);
    ++pending;
    if (pending == 2) {
      // Enqueue both bodies only once both requests are in, so the
      // scheduler genuinely chooses.
      pair.server->send_body_chunk(1, std::vector<std::uint8_t>(8000, 1), true);
      pair.server->send_body_chunk(3, std::vector<std::uint8_t>(8000, 2), true);
    }
  };
  pair.server->set_handlers(std::move(sh));

  pair.client->send_request(get("/a"));
  pair.client->send_request(get("/b"));
  pair.run(5);

  ASSERT_FALSE(data_order.empty());
  // All frames of stream 1 strictly precede all frames of stream 3.
  bool seen3 = false;
  for (std::uint32_t sid : data_order) {
    if (sid == 3) seen3 = true;
    if (seen3) EXPECT_EQ(sid, 3u);
  }
}

TEST(H2Connection, RstStreamFlushesServerQueue) {
  h2::ConnectionConfig scfg;
  scfg.data_chunk_size = 1000;
  // Tiny watermark so the queue drains slowly and the reset catches data
  // still queued.
  scfg.tcp_send_watermark = 2000;
  H2Pair pair(scfg);
  pair.run(1);

  std::size_t received = 0;
  h2::ClientConnection::Handlers ch;
  ch.on_response_data = [&](std::uint32_t, std::span<const std::uint8_t> b, bool) {
    received += b.size();
  };
  pair.client->set_handlers(std::move(ch));

  bool server_saw_reset = false;
  h2::ServerConnection::Handlers sh;
  sh.on_request = [&](std::uint32_t sid, const hpack::HeaderList&) {
    pair.server->respond_headers(sid, 200);
    pair.server->send_body_chunk(sid, std::vector<std::uint8_t>(500000, 1), true);
  };
  sh.on_stream_reset = [&](std::uint32_t, h2::ErrorCode) { server_saw_reset = true; };
  pair.server->set_handlers(std::move(sh));

  const std::uint32_t sid = pair.client->send_request(get("/big"));
  pair.run(0.2);
  pair.client->cancel(sid);
  pair.run(5);
  EXPECT_TRUE(server_saw_reset);
  EXPECT_LT(received, 500000u);  // the flush prevented full delivery
  EXPECT_FALSE(pair.client->dead());
  EXPECT_FALSE(pair.server->dead());
}

TEST(H2Connection, PingEchoed) {
  H2Pair pair;
  pair.run(1);
  pair.client->send_ping();
  pair.run(1);
  EXPECT_GE(pair.client->stats().frames_received, 1u);
  EXPECT_FALSE(pair.client->dead());
}

TEST(H2Connection, LargeHeadersUseContinuation) {
  H2Pair pair;
  pair.run(1);

  hpack::HeaderList got;
  h2::ServerConnection::Handlers sh;
  sh.on_request = [&](std::uint32_t sid, const hpack::HeaderList& headers) {
    got = headers;
    pair.server->respond_headers(sid, 200, {}, true);
  };
  pair.server->set_handlers(std::move(sh));

  hpack::HeaderList headers = get("/big-headers");
  // ~40 KB of uncompressible header data: must exceed 16384 after HPACK.
  for (int i = 0; i < 40; ++i) {
    std::string value;
    for (int j = 0; j < 1000; ++j) {
      value.push_back(static_cast<char>('A' + (i * 7 + j * 13) % 26));
    }
    headers.push_back({"x-custom-" + std::to_string(i), value});
  }
  pair.client->send_request(headers);
  pair.run(5);
  EXPECT_EQ(got.size(), headers.size());
  EXPECT_EQ(got, headers);
}

TEST(H2Connection, ServerPushDeliversPromise) {
  h2::ConnectionConfig ccfg;
  ccfg.enable_push = true;
  H2Pair pair(h2::ConnectionConfig{}, ccfg);
  pair.run(1);

  std::uint32_t promised_id = 0;
  hpack::HeaderList promised_headers;
  std::size_t pushed_bytes = 0;
  h2::ClientConnection::Handlers ch;
  ch.on_push_promise = [&](std::uint32_t, std::uint32_t promised,
                           const hpack::HeaderList& h) {
    promised_id = promised;
    promised_headers = h;
  };
  ch.on_response_data = [&](std::uint32_t sid, std::span<const std::uint8_t> b, bool) {
    if (sid == promised_id) pushed_bytes += b.size();
  };
  pair.client->set_handlers(std::move(ch));

  h2::ServerConnection::Handlers sh;
  sh.on_request = [&](std::uint32_t sid, const hpack::HeaderList&) {
    const std::uint32_t p = pair.server->push(sid, get("/pushed.css"));
    EXPECT_NE(p, 0u);
    pair.server->respond_headers(p, 200);
    pair.server->send_body_chunk(p, std::vector<std::uint8_t>(1234, 7), true);
    pair.server->respond_headers(sid, 200, {}, true);
  };
  pair.server->set_handlers(std::move(sh));

  pair.client->send_request(get("/index.html"));
  pair.run(5);
  EXPECT_EQ(promised_id, 2u);
  EXPECT_EQ(pushed_bytes, 1234u);
  auto req = http::Request::from_h2_headers(promised_headers);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->path, "/pushed.css");
}

TEST(H2Connection, PushRefusedWhenDisabled) {
  H2Pair pair;  // client default: push disabled
  pair.run(1);
  h2::ServerConnection::Handlers sh;
  std::uint32_t push_result = 99;
  sh.on_request = [&](std::uint32_t sid, const hpack::HeaderList&) {
    push_result = pair.server->push(sid, get("/nope.css"));
    pair.server->respond_headers(sid, 200, {}, true);
  };
  pair.server->set_handlers(std::move(sh));
  pair.client->send_request(get("/index.html"));
  pair.run(5);
  EXPECT_EQ(push_result, 0u);  // SETTINGS_ENABLE_PUSH=0 honoured
  EXPECT_FALSE(pair.client->dead());
}

TEST(H2Connection, GoawaySurfacesToClient) {
  H2Pair pair;
  pair.run(1);
  bool goaway = false;
  h2::ClientConnection::Handlers ch;
  ch.on_goaway = [&](const GoawayPayload& g) {
    goaway = true;
    EXPECT_EQ(g.error, ErrorCode::kNoError);
  };
  pair.client->set_handlers(std::move(ch));
  pair.server->send_goaway(ErrorCode::kNoError, "bye");
  pair.run(1);
  EXPECT_TRUE(goaway);
}

TEST(H2Connection, FlowControlWindowLimitsBurst) {
  h2::ConnectionConfig scfg;
  scfg.data_chunk_size = 16384;
  h2::ConnectionConfig ccfg;
  ccfg.initial_window_size = 20000;      // tight stream window
  ccfg.connection_window_bonus = 1 << 20;
  H2Pair pair(scfg, ccfg);
  pair.run(1);

  std::size_t received = 0;
  h2::ClientConnection::Handlers ch;
  ch.on_response_data = [&](std::uint32_t, std::span<const std::uint8_t> b, bool) {
    received += b.size();
  };
  pair.client->set_handlers(std::move(ch));

  h2::ServerConnection::Handlers sh;
  sh.on_request = [&](std::uint32_t sid, const hpack::HeaderList&) {
    pair.server->respond_headers(sid, 200);
    pair.server->send_body_chunk(sid, std::vector<std::uint8_t>(100000, 3), true);
  };
  pair.server->set_handlers(std::move(sh));
  pair.client->send_request(get("/windowed"));
  pair.run(10);
  // Delivery completes because the client's batched WINDOW_UPDATEs keep the
  // 20 KB window refilled.
  EXPECT_EQ(received, 100000u);
}

TEST(H2Connection, WeightedSchedulerFavoursHeavyStream) {
  h2::ConnectionConfig scfg;
  scfg.scheduler = h2::SchedulerKind::kWeighted;
  scfg.data_chunk_size = 1000;
  scfg.tcp_send_watermark = 4000;  // force scheduling pressure
  H2Pair pair(scfg);
  pair.run(1);

  std::map<std::uint32_t, int> frames;
  std::vector<std::uint32_t> completion_order;
  h2::ClientConnection::Handlers ch;
  ch.on_response_data = [&](std::uint32_t sid, std::span<const std::uint8_t>,
                            bool end) {
    ++frames[sid];
    if (end) completion_order.push_back(sid);
  };
  pair.client->set_handlers(std::move(ch));

  int pending = 0;
  h2::ServerConnection::Handlers sh;
  sh.on_request = [&](std::uint32_t sid, const hpack::HeaderList&) {
    pair.server->respond_headers(sid, 200);
    // Stream 1 heavy (weight 255), stream 3 light (weight 1).
    pair.server->find_stream(sid)->weight = sid == 1 ? 255 : 1;
    ++pending;
    if (pending == 2) {
      pair.server->send_body_chunk(1, std::vector<std::uint8_t>(60000, 1), true);
      pair.server->send_body_chunk(3, std::vector<std::uint8_t>(60000, 2), true);
    }
  };
  pair.server->set_handlers(std::move(sh));

  pair.client->send_request(get("/heavy"));
  pair.client->send_request(get("/light"));
  pair.run(10);
  // Both fully delivered, and the 255:1 weighting finished the heavy stream
  // first.
  EXPECT_EQ(frames[1], frames[3]);
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_EQ(completion_order[0], 1u);
  EXPECT_EQ(completion_order[1], 3u);
}

TEST(H2Connection, WindowUpdateBatchConfigurable) {
  h2::ConnectionConfig scfg;
  h2::ConnectionConfig ccfg;
  ccfg.window_update_batch = 4096;  // chatty client
  H2Pair chatty(scfg, ccfg);
  chatty.run(1);
  h2::ServerConnection::Handlers sh;
  sh.on_request = [&](std::uint32_t sid, const hpack::HeaderList&) {
    chatty.server->respond_headers(sid, 200);
    chatty.server->send_body_chunk(sid, std::vector<std::uint8_t>(100000, 1), true);
  };
  chatty.server->set_handlers(std::move(sh));
  chatty.client->send_request(get("/dl"));
  chatty.run(10);
  // ~100 KB at a 4 KiB credit cadence: >= 20 client frames beyond setup.
  EXPECT_GE(chatty.client->stats().frames_sent, 20u);
}

TEST(H2Connection, StatsCountFrames) {
  H2Pair pair;
  pair.run(1);
  h2::ServerConnection::Handlers sh;
  sh.on_request = [&](std::uint32_t sid, const hpack::HeaderList&) {
    pair.server->respond_headers(sid, 200);
    pair.server->send_body_chunk(sid, std::vector<std::uint8_t>(3000, 1), true);
  };
  pair.server->set_handlers(std::move(sh));
  pair.client->send_request(get("/stats"));
  pair.run(5);
  EXPECT_GE(pair.server->stats().data_frames_sent, 1u);
  EXPECT_EQ(pair.server->stats().data_bytes_sent, 3000u);
  EXPECT_GE(pair.client->stats().frames_sent, 3u);  // SETTINGS, WU, HEADERS...
  EXPECT_EQ(pair.server->stats().streams_opened, 1u);
}

}  // namespace
}  // namespace h2sim::h2
