#include <gtest/gtest.h>

#include "analysis/partial.hpp"

namespace h2sim::analysis {
namespace {

SizeIdentityDb catalogue() {
  SizeIdentityDb db;
  db.add("a", 5200);
  db.add("b", 6700);
  db.add("c", 8600);
  db.add("d", 9900);
  db.add("e", 11400);
  return db;
}

TEST(PartialInference, ExplainsExactPair) {
  const auto db = catalogue();
  const auto r = explain_region(5200 + 8600, db);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->labels.size(), 2u);
  // Sorted by size descending in the search.
  EXPECT_EQ(r->labels[0], "c");
  EXPECT_EQ(r->labels[1], "a");
  EXPECT_NEAR(r->residual_rel, 0.0, 1e-9);
}

TEST(PartialInference, ExplainsTripleWithinTolerance) {
  const auto db = catalogue();
  const std::size_t total = 5200 + 6700 + 11400;
  const auto r = explain_region(total + 150, db);  // ~0.6% off
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->labels.size(), 3u);
  EXPECT_LE(r->residual_rel, 0.02);
}

TEST(PartialInference, RejectsUnexplainableTotals) {
  const auto db = catalogue();
  EXPECT_FALSE(explain_region(1234, db).has_value());
  EXPECT_FALSE(explain_region(0, db).has_value());
  // Far larger than any max_subset=4 combination.
  EXPECT_FALSE(explain_region(500000, db).has_value());
}

TEST(PartialInference, RespectsSubsetBound) {
  const auto db = catalogue();
  PartialConfig cfg;
  cfg.max_subset = 2;
  const std::size_t triple = 5200 + 6700 + 8600;
  // 20500 as a pair: closest pairs are 8600+11400=20000 (2.4% off) and
  // 9900+11400=21300 (3.9% off) — both outside tolerance.
  EXPECT_FALSE(explain_region(triple, db, cfg).has_value());
  cfg.max_subset = 3;
  EXPECT_TRUE(explain_region(triple, db, cfg).has_value());
}

TEST(PartialInference, PrefersSmallestResidual) {
  SizeIdentityDb db;
  db.add("x", 1000);
  db.add("y", 1010);
  PartialConfig cfg;
  cfg.tolerance = 0.05;
  cfg.max_subset = 1;
  const auto r = explain_region(1008, db, cfg);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->labels[0], "y");
}

TEST(PartialInference, FullTraceMixesDirectAndSubset) {
  const auto db = catalogue();
  std::vector<DetectedObject> dets;
  auto det = [](std::size_t size) {
    DetectedObject d;
    d.size_estimate = size;
    d.ended_by_delimiter = true;
    return d;
  };
  dets.push_back(det(9900));          // direct: d
  dets.push_back(det(5200 + 6700));   // region: a + b
  dets.push_back(det(777));           // junk
  const auto inf = infer_objects_partial(dets, db);
  EXPECT_EQ(inf.direct_matches, 1);
  EXPECT_EQ(inf.subset_matches, 2);
  EXPECT_EQ(inf.unexplained_regions, 1);
  ASSERT_EQ(inf.labels.size(), 3u);
  EXPECT_EQ(inf.labels[0], "d");
}

TEST(PartialInference, SingleItemRegionCountsAsDirect) {
  // A region equal to one catalogue size should resolve via identify(), not
  // get double-reported by the subset search.
  const auto db = catalogue();
  std::vector<DetectedObject> dets;
  DetectedObject d;
  d.size_estimate = 8600;
  dets.push_back(d);
  const auto inf = infer_objects_partial(dets, db);
  EXPECT_EQ(inf.direct_matches, 1);
  EXPECT_EQ(inf.subset_matches, 0);
  ASSERT_EQ(inf.labels.size(), 1u);
  EXPECT_EQ(inf.labels[0], "c");
}

}  // namespace
}  // namespace h2sim::analysis
