// The parallel trial runner: job resolution, bit-identical determinism
// between sequential and parallel execution (results AND metrics
// snapshots), per-trial context isolation, and the per-trial RNG audit —
// a trial's stream is derived from its own seed, so concurrent neighbors
// cannot perturb it.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "experiment/runner.hpp"
#include "obs/context.hpp"

namespace h2sim::experiment {
namespace {

/// Short trials for runner-mechanics tests: a two-object site loads in a
/// fraction of the default page's simulated time.
TrialConfig quick_config(std::uint64_t seed) {
  TrialConfig cfg;
  cfg.seed = seed;
  cfg.attack.enabled = false;
  cfg.site_builder = [] { return web::make_two_object_site(20000, 40000); };
  return cfg;
}

TEST(ResolveJobs, ExplicitThenEnvThenHardware) {
  EXPECT_EQ(resolve_jobs(3), 3);
  ASSERT_EQ(setenv("H2SIM_JOBS", "5", 1), 0);
  EXPECT_EQ(resolve_jobs(0), 5);
  ASSERT_EQ(setenv("H2SIM_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(resolve_jobs(0), 1);  // falls through to hardware_concurrency
  ASSERT_EQ(unsetenv("H2SIM_JOBS"), 0);
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_EQ(resolve_jobs(-4), resolve_jobs(0));
}

TEST(Runner, EmptyConfigListYieldsEmptyResults) {
  EXPECT_TRUE(run_trials({}).empty());
}

TEST(Runner, ResultsComeBackInInputOrder) {
  std::vector<TrialConfig> cfgs;
  for (std::uint64_t s : {900, 901, 902, 903, 904, 905}) {
    cfgs.push_back(quick_config(s));
  }
  RunOptions opts;
  opts.jobs = 3;
  const auto parallel = run_trials(cfgs, opts);
  ASSERT_EQ(parallel.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(parallel[i], run_trial(cfgs[i])) << "slot " << i;
  }
}

// The acceptance-criterion test: over 32 seeds, run_trials with several
// workers must reproduce the sequential path bit for bit — TrialResults,
// the serialized metrics snapshots, and the JSON each renders to.
TEST(Runner, SequentialAndParallelBitIdenticalOver32Seeds) {
  constexpr std::size_t kSeeds = 32;
  auto build = [](std::vector<obs::MetricsSnapshot>& snaps) {
    std::vector<TrialConfig> cfgs;
    for (std::size_t i = 0; i < kSeeds; ++i) {
      TrialConfig cfg = quick_config(3000 + i);
      cfg.metrics_inspector = [&snaps, i](const obs::MetricsSnapshot& s) {
        snaps[i] = s;  // per-trial slot: safe from concurrent inspectors
      };
      cfgs.push_back(std::move(cfg));
    }
    return cfgs;
  };

  std::vector<obs::MetricsSnapshot> seq_snaps(kSeeds), par_snaps(kSeeds);
  RunOptions seq;
  seq.jobs = 1;
  const auto sequential = run_trials(build(seq_snaps), seq);
  RunOptions par;
  par.jobs = 4;
  const auto parallel = run_trials(build(par_snaps), par);

  ASSERT_EQ(sequential.size(), kSeeds);
  ASSERT_EQ(parallel.size(), kSeeds);
  for (std::size_t i = 0; i < kSeeds; ++i) {
    EXPECT_EQ(sequential[i], parallel[i]) << "TrialResult diverged at seed slot " << i;
    EXPECT_EQ(seq_snaps[i], par_snaps[i]) << "MetricsSnapshot diverged at seed slot " << i;
    // Byte-identical serialized form, the strongest statement of the
    // guarantee (and what a results file on disk would contain).
    EXPECT_EQ(obs::metrics_json(seq_snaps[i]), obs::metrics_json(par_snaps[i]));
  }
}

// RNG audit companion: a trial is a pure function of its seed, so running
// the same seed inside two different batches — surrounded by different
// concurrent neighbors — must give identical results and snapshots. Any
// residual shared engine (rand(), a process-wide stream) would make the
// outcome depend on who else is running.
TEST(Runner, SameSeedUnaffectedByConcurrentNeighbors) {
  constexpr std::uint64_t kShared = 4242;

  auto run_batch = [](std::vector<std::uint64_t> seeds, std::size_t shared_at,
                      obs::MetricsSnapshot* snap) {
    std::vector<TrialConfig> cfgs;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      TrialConfig cfg = quick_config(seeds[i]);
      if (i == shared_at) {
        cfg.metrics_inspector = [snap](const obs::MetricsSnapshot& s) {
          *snap = s;
        };
      }
      cfgs.push_back(std::move(cfg));
    }
    RunOptions opts;
    opts.jobs = 4;
    return run_trials(cfgs, opts)[shared_at];
  };

  obs::MetricsSnapshot snap_a, snap_b;
  const TrialResult a =
      run_batch({kShared, 11, 12, 13, 14, 15}, 0, &snap_a);
  const TrialResult b =
      run_batch({21, 22, 23, kShared, 24, 25, 26, 27}, 3, &snap_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(snap_a, snap_b);
}

TEST(Runner, ProgressReportsEveryTrialExactlyOnce) {
  std::vector<TrialConfig> cfgs;
  for (std::uint64_t s : {700, 701, 702, 703, 704}) cfgs.push_back(quick_config(s));

  std::vector<Progress> seen;
  RunOptions opts;
  opts.jobs = 2;
  // The runner serializes on_progress internally; the vector needs no lock.
  // Callbacks can arrive out of `done` order (the count is taken before the
  // serialization lock), so assert on the set of reports, not the sequence.
  opts.on_progress = [&seen](const Progress& p) { seen.push_back(p); };
  run_trials(cfgs, opts);

  ASSERT_EQ(seen.size(), cfgs.size());
  std::vector<std::size_t> done_counts;
  for (const Progress& p : seen) {
    EXPECT_EQ(p.total, cfgs.size());
    EXPECT_GE(p.elapsed_seconds, 0.0);
    EXPECT_GE(p.eta_seconds, 0.0);
    if (p.done == cfgs.size()) {
      EXPECT_EQ(p.eta_seconds, 0.0);
    }
    done_counts.push_back(p.done);
  }
  std::sort(done_counts.begin(), done_counts.end());
  for (std::size_t i = 0; i < done_counts.size(); ++i) {
    EXPECT_EQ(done_counts[i], i + 1);
  }
}

// The ETA-bias fix: a sliding window must track the *recent* completion
// rate. Simulate a heterogeneous grid — 100 fast trials at 100/s, then slow
// trials at 10/s. The lifetime mean would predict the remaining 100 slow
// trials finish 4x too soon; the window converges on the true rate.
TEST(ProgressWindow, TracksRecentRateNotLifetimeMean) {
  ProgressWindow w(8);
  w.sample(0.0, 0);
  w.sample(1.0, 100);  // fast phase: 100 trials/s
  // Slow phase: 10 trials/s for 10 samples — enough to fill the window.
  for (int i = 1; i <= 10; ++i) {
    w.sample(1.0 + i, 100 + static_cast<std::size_t>(10 * i));
  }
  EXPECT_NEAR(w.rate(), 10.0, 1e-9);
  // 200 done, 300 to go at 10/s -> 30 s. Lifetime mean (200/11 ~ 18.2/s)
  // would claim ~16.5 s.
  EXPECT_NEAR(w.eta_seconds(200, 500), 30.0, 1e-6);
}

TEST(ProgressWindow, FallsBackToLifetimeMeanWhenSparse) {
  ProgressWindow w;
  EXPECT_EQ(w.rate(), 0.0);
  EXPECT_EQ(w.eta_seconds(0, 10), 0.0);  // unknowable, not negative/inf
  w.sample(2.0, 10);
  EXPECT_NEAR(w.rate(), 5.0, 1e-12);  // single sample: lifetime mean
  EXPECT_NEAR(w.eta_seconds(10, 20), 2.0, 1e-9);
  EXPECT_EQ(w.eta_seconds(20, 20), 0.0);  // done
}

// Rate-limited progress: intermediate reports may be dropped, but exactly
// one final done == total report always arrives, and none after it.
TEST(Runner, RateLimitedProgressStillDeliversExactlyOneFinal) {
  std::vector<TrialConfig> cfgs;
  for (std::uint64_t s = 600; s < 612; ++s) cfgs.push_back(quick_config(s));

  std::vector<Progress> seen;
  RunOptions opts;
  opts.jobs = 3;
  // An interval far longer than the sweep: every intermediate report is
  // rate-limited away; only the guaranteed final survives.
  opts.progress_min_interval_seconds = 3600.0;
  opts.on_progress = [&seen](const Progress& p) { seen.push_back(p); };
  run_trials(cfgs, opts);

  std::size_t finals = 0;
  for (const Progress& p : seen) {
    if (p.done == p.total) ++finals;
  }
  EXPECT_EQ(finals, 1u);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.back().done, cfgs.size());  // final is last
  EXPECT_EQ(seen.back().eta_seconds, 0.0);
  // The long interval drops the other 11 reports (the very first may slip
  // through before the timestamp is primed).
  EXPECT_LE(seen.size(), 2u);
}

TEST(Runner, UnlimitedProgressKeepsPerTrialReports) {
  std::vector<TrialConfig> cfgs;
  for (std::uint64_t s = 620; s < 625; ++s) cfgs.push_back(quick_config(s));
  std::size_t reports = 0, finals = 0;
  RunOptions opts;
  opts.jobs = 1;
  opts.on_progress = [&](const Progress& p) {
    ++reports;
    if (p.done == p.total) ++finals;
  };
  run_trials(cfgs, opts);
  EXPECT_EQ(reports, cfgs.size());
  EXPECT_EQ(finals, 1u);
}

TEST(Runner, ContextInspectorSeesTrialPrivateMetricsAndTraces) {
  std::vector<TrialConfig> cfgs = {quick_config(800), quick_config(801)};

  std::vector<std::uint64_t> requests(cfgs.size(), 0);
  std::vector<std::size_t> events(cfgs.size(), 0);
  RunOptions opts;
  opts.jobs = 2;
  opts.trace_mask = obs::component_bit(obs::Component::kWeb);
  opts.context_inspector = [&](std::size_t i, const obs::Context& ctx) {
    requests[i] = ctx.metrics.counter_value("web.requests_sent");
    events[i] = ctx.tracer.events().size();
  };
  run_trials(cfgs, opts);

  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_GT(requests[i], 0u) << "trial " << i;
    EXPECT_GT(events[i], 0u) << "trial " << i;
  }
}

// The runner leaves the caller's context alone apart from the documented
// sweep aggregates — per-trial instrumentation must not leak into it.
TEST(Runner, CallerContextOnlyReceivesSweepAggregates) {
  obs::Context caller;
  obs::ScopedContext scope(caller);
  std::vector<TrialConfig> cfgs = {quick_config(850), quick_config(851)};
  RunOptions opts;
  opts.jobs = 2;
  run_trials(cfgs, opts);
  EXPECT_EQ(caller.metrics.counter_value("experiment.trials_run"), 2u);
  EXPECT_GT(caller.metrics.gauge_value("experiment.sweep_trials_per_sec"), 0.0);
  EXPECT_EQ(caller.metrics.gauge_value("experiment.sweep_jobs"), 2.0);
  EXPECT_EQ(caller.metrics.counter_value("web.requests_sent"), 0u);
  EXPECT_EQ(caller.metrics.counter_value("tcp.segments_sent"), 0u);
}

TEST(ObsContext, ScopedContextInstallsAndRestores) {
  obs::Context ctx;
  EXPECT_EQ(&obs::current(), &obs::default_context());
  {
    obs::ScopedContext scope(ctx);
    EXPECT_EQ(&obs::current(), &ctx);
    EXPECT_EQ(&obs::metrics(), &ctx.metrics);
    EXPECT_EQ(&obs::tracer(), &ctx.tracer);
    obs::Context inner;
    {
      obs::ScopedContext nested(inner);
      EXPECT_EQ(&obs::current(), &inner);
    }
    EXPECT_EQ(&obs::current(), &ctx);
  }
  EXPECT_EQ(&obs::current(), &obs::default_context());
}

}  // namespace
}  // namespace h2sim::experiment
