#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hpack/decoder.hpp"
#include "hpack/encoder.hpp"
#include "hpack/huffman.hpp"
#include "hpack/integer.hpp"
#include "hpack/static_table.hpp"

namespace h2sim::hpack {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> out;
  for (int x : xs) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

// --- RFC 7541 §C.1 integer examples ---

TEST(HpackInteger, EncodeTenWithFiveBitPrefix) {
  std::vector<std::uint8_t> out;
  encode_integer(10, 5, 0, out);
  EXPECT_EQ(out, bytes({0x0a}));
}

TEST(HpackInteger, Encode1337WithFiveBitPrefix) {
  std::vector<std::uint8_t> out;
  encode_integer(1337, 5, 0, out);
  EXPECT_EQ(out, bytes({0x1f, 0x9a, 0x0a}));
}

TEST(HpackInteger, Encode42AtOctetBoundary) {
  std::vector<std::uint8_t> out;
  encode_integer(42, 8, 0, out);
  EXPECT_EQ(out, bytes({0x2a}));
}

TEST(HpackInteger, DecodeMatchesEncode) {
  for (std::uint64_t v : {0ull, 1ull, 30ull, 31ull, 32ull, 127ull, 128ull,
                          1337ull, 65535ull, 1000000ull}) {
    for (int prefix = 1; prefix <= 8; ++prefix) {
      std::vector<std::uint8_t> out;
      encode_integer(v, prefix, 0, out);
      std::size_t pos = 0;
      auto back = decode_integer(out, pos, prefix);
      ASSERT_TRUE(back.has_value()) << v << " prefix " << prefix;
      EXPECT_EQ(*back, v);
      EXPECT_EQ(pos, out.size());
    }
  }
}

TEST(HpackInteger, TruncatedInputFails) {
  std::vector<std::uint8_t> out;
  encode_integer(1337, 5, 0, out);
  out.pop_back();
  std::size_t pos = 0;
  EXPECT_FALSE(decode_integer(out, pos, 5).has_value());
}

TEST(HpackInteger, OverflowRejected) {
  // 0x1f then ten 0xff continuation bytes: way past 2^62.
  std::vector<std::uint8_t> in = {0x1f};
  for (int i = 0; i < 10; ++i) in.push_back(0xff);
  in.push_back(0x7f);
  std::size_t pos = 0;
  EXPECT_FALSE(decode_integer(in, pos, 5).has_value());
}

// --- RFC 7541 Appendix C Huffman vectors ---

std::string hexify(const std::string& s) {
  static const char* d = "0123456789abcdef";
  std::string out;
  for (unsigned char c : s) {
    out.push_back(d[c >> 4]);
    out.push_back(d[c & 0xf]);
  }
  return out;
}

TEST(Huffman, RfcVectorWwwExampleCom) {
  std::string enc;
  huffman::encode("www.example.com", enc);
  EXPECT_EQ(hexify(enc), "f1e3c2e5f23a6ba0ab90f4ff");
}

TEST(Huffman, RfcVectorNoCache) {
  std::string enc;
  huffman::encode("no-cache", enc);
  EXPECT_EQ(hexify(enc), "a8eb10649cbf");
}

TEST(Huffman, RfcVectorCustomKey) {
  std::string enc;
  huffman::encode("custom-key", enc);
  EXPECT_EQ(hexify(enc), "25a849e95ba97d7f");
}

TEST(Huffman, RfcVectorCustomValue) {
  std::string enc;
  huffman::encode("custom-value", enc);
  EXPECT_EQ(hexify(enc), "25a849e95bb8e8b4bf");
}

TEST(Huffman, RfcVectorDate) {
  std::string enc;
  huffman::encode("Mon, 21 Oct 2013 20:13:21 GMT", enc);
  EXPECT_EQ(hexify(enc), "d07abe941054d444a8200595040b8166e082a62d1bff");
}

TEST(Huffman, RfcVectorUrl) {
  std::string enc;
  huffman::encode("https://www.example.com", enc);
  EXPECT_EQ(hexify(enc), "9d29ad171863c78f0b97c8e9ae82ae43d3");
}

TEST(Huffman, RoundTripAllByteValues) {
  std::string s;
  for (int c = 0; c < 256; ++c) s.push_back(static_cast<char>(c));
  std::string enc;
  huffman::encode(s, enc);
  auto dec = huffman::decode(
      std::span(reinterpret_cast<const std::uint8_t*>(enc.data()), enc.size()));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, s);
}

TEST(Huffman, EncodedSizeMatchesEncodeOutput) {
  for (const char* s : {"", "a", "hello world", "x-requested-with",
                        "ALL CAPS AND 123 digits !@#"}) {
    std::string enc;
    huffman::encode(s, enc);
    EXPECT_EQ(enc.size(), huffman::encoded_size(s)) << s;
  }
}

TEST(Huffman, InvalidPaddingRejected) {
  // "0" encodes as 00000 (5 bits); pad must be all ones. Craft 0x00: symbol
  // '0' then 3 zero pad bits -> invalid.
  const std::uint8_t bad[] = {0x00};
  EXPECT_FALSE(huffman::decode(std::span(bad, 1)).has_value());
}

TEST(Huffman, DecodeEmptyIsEmpty) {
  auto dec = huffman::decode({});
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(dec->empty());
}

// --- Static table ---

TEST(StaticTable, KnownEntries) {
  EXPECT_EQ(static_table::at(1).name, ":authority");
  EXPECT_EQ(static_table::at(2).name, ":method");
  EXPECT_EQ(static_table::at(2).value, "GET");
  EXPECT_EQ(static_table::at(8).name, ":status");
  EXPECT_EQ(static_table::at(8).value, "200");
  EXPECT_EQ(static_table::at(61).name, "www-authenticate");
}

TEST(StaticTable, FindPrefersFullMatch) {
  const auto m = static_table::find(":method", "POST");
  EXPECT_EQ(m.index, 3u);
  EXPECT_TRUE(m.value_matched);
  const auto n = static_table::find(":method", "DELETE");
  EXPECT_EQ(n.index, 2u);  // first name-only match
  EXPECT_FALSE(n.value_matched);
  EXPECT_EQ(static_table::find("x-nonexistent", "").index, 0u);
}

// --- Dynamic table ---

TEST(DynamicTable, InsertAndIndex) {
  DynamicTable t(4096);
  t.insert({"a", "1"});
  t.insert({"b", "2"});
  EXPECT_EQ(t.entry_count(), 2u);
  EXPECT_EQ(t.at(1).name, "b");  // newest first
  EXPECT_EQ(t.at(2).name, "a");
}

TEST(DynamicTable, EvictionOnBudget) {
  DynamicTable t(100);  // each small entry costs 32 + name + value
  t.insert({"aaaa", "1111"});  // 40
  t.insert({"bbbb", "2222"});  // 40 -> total 80
  t.insert({"cccc", "3333"});  // would be 120 -> evict oldest
  EXPECT_EQ(t.entry_count(), 2u);
  EXPECT_EQ(t.at(2).name, "bbbb");
}

TEST(DynamicTable, OversizeEntryClearsTable) {
  DynamicTable t(64);
  t.insert({"a", "1"});
  t.insert({std::string(100, 'x'), "v"});
  EXPECT_EQ(t.entry_count(), 0u);
}

TEST(DynamicTable, ResizeEvicts) {
  DynamicTable t(4096);
  t.insert({"aaaa", "1111"});
  t.insert({"bbbb", "2222"});
  t.set_max_size(50);
  EXPECT_EQ(t.entry_count(), 1u);
  EXPECT_EQ(t.at(1).name, "bbbb");
}

// --- Encoder/decoder round trips (RFC 7541 §C.3/C.4-style flows) ---

HeaderList request_headers(const std::string& path) {
  return {
      {":method", "GET"},       {":scheme", "https"},
      {":authority", "www.example.com"}, {":path", path},
      {"user-agent", "test-agent/1.0"},
  };
}

TEST(HpackCodec, RoundTripSingleBlock) {
  Encoder enc;
  Decoder dec;
  const HeaderList in = request_headers("/index.html");
  auto block = enc.encode(in);
  auto out = dec.decode(block);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
}

TEST(HpackCodec, DynamicTableShrinksLaterBlocks) {
  Encoder enc;
  Decoder dec;
  const HeaderList first = request_headers("/a");
  const HeaderList second = request_headers("/b");
  const auto block1 = enc.encode(first);
  const auto block2 = enc.encode(second);
  // Repeated fields index into the dynamic table: second block much smaller.
  EXPECT_LT(block2.size(), block1.size() / 2);
  ASSERT_EQ(dec.decode(block1).value(), first);
  ASSERT_EQ(dec.decode(block2).value(), second);
}

TEST(HpackCodec, SensitiveFieldsNeverIndexed) {
  Encoder enc;
  Decoder dec;
  HeaderList in = {{":method", "GET"}, {"cookie", "secret=1"}};
  auto b1 = enc.encode(in);
  ASSERT_EQ(dec.decode(b1).value(), in);
  // Encoding again: cookie must not have entered either dynamic table.
  EXPECT_EQ(enc.table().entry_count(), 0u);
  EXPECT_EQ(dec.table().entry_count(), 0u);
  auto b2 = enc.encode(in);
  ASSERT_EQ(dec.decode(b2).value(), in);
  EXPECT_EQ(b1.size(), b2.size());  // no cross-block compression for cookie
}

TEST(HpackCodec, StatefulOrderMatters) {
  Encoder enc;
  Decoder dec;
  const auto b1 = enc.encode(request_headers("/a"));
  const auto b2 = enc.encode(request_headers("/b"));
  ASSERT_TRUE(dec.decode(b1).has_value());
  ASSERT_TRUE(dec.decode(b2).has_value());
}

TEST(HpackCodec, TableSizeUpdateRoundTrip) {
  Encoder enc;
  Decoder dec;
  enc.encode(request_headers("/warm"));
  dec.decode(enc.encode(request_headers("/warm2")));
  enc.set_table_size(0);  // flush
  const auto block = enc.encode(request_headers("/after"));
  auto out = dec.decode(block);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(dec.table().entry_count(), 0u);
}

TEST(HpackDecoder, RejectsGarbage) {
  Decoder dec;
  // Indexed field 0 is invalid.
  EXPECT_FALSE(dec.decode(bytes({0x80})).has_value());
  // Truncated literal.
  EXPECT_FALSE(dec.decode(bytes({0x40, 0x05, 'a'})).has_value());
  // Index beyond both tables.
  EXPECT_FALSE(dec.decode(bytes({0xff, 0xff, 0x7f})).has_value());
}

TEST(HpackDecoder, RejectsTableSizeUpdateAfterField) {
  Decoder dec;
  // Indexed :method GET (0x82) followed by a size update (0x20).
  EXPECT_FALSE(dec.decode(bytes({0x82, 0x20})).has_value());
}

TEST(HpackDecoder, RejectsOversizeTableUpdate) {
  Decoder dec;
  dec.set_max_table_size(4096);
  // Size update to 8192 > allowed.
  std::vector<std::uint8_t> block;
  encode_integer(8192, 5, 0x20, block);
  EXPECT_FALSE(dec.decode(block).has_value());
}

TEST(HpackCodec, NoHuffmanOptionStillDecodes) {
  Encoder enc(Encoder::Options{.use_huffman = false, .protect_sensitive = true});
  Decoder dec;
  const HeaderList in = request_headers("/no-huffman");
  auto out = dec.decode(enc.encode(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
}

// RFC 7541 §C.3.1 first request literal encoding (no huffman).
TEST(HpackCodec, RfcC31FirstRequest) {
  Encoder enc(Encoder::Options{.use_huffman = false, .protect_sensitive = true});
  const HeaderList in = {{":method", "GET"},
                         {":scheme", "http"},
                         {":path", "/"},
                         {":authority", "www.example.com"}};
  const auto block = enc.encode(in);
  const std::vector<std::uint8_t> expected = {
      0x82, 0x86, 0x84, 0x41, 0x0f, 0x77, 0x77, 0x77, 0x2e, 0x65,
      0x78, 0x61, 0x6d, 0x70, 0x6c, 0x65, 0x2e, 0x63, 0x6f, 0x6d};
  EXPECT_EQ(block, expected);
}

// RFC 7541 §C.4.1 with huffman.
TEST(HpackCodec, RfcC41FirstRequestHuffman) {
  Encoder enc;
  const HeaderList in = {{":method", "GET"},
                         {":scheme", "http"},
                         {":path", "/"},
                         {":authority", "www.example.com"}};
  const auto block = enc.encode(in);
  const std::vector<std::uint8_t> expected = {
      0x82, 0x86, 0x84, 0x41, 0x8c, 0xf1, 0xe3, 0xc2, 0xe5, 0xf2,
      0x3a, 0x6b, 0xa0, 0xab, 0x90, 0xf4, 0xff};
  EXPECT_EQ(block, expected);
}

}  // namespace
}  // namespace h2sim::hpack
