// End-to-end trials through the experiment harness: the full stack
// (sim/net/tcp/tls/hpack/h2/web) with and without the adversary. The
// multi-seed Monte-Carlo suites go through experiment::run_trials so they
// use every available core (cap with H2SIM_JOBS).

#include <gtest/gtest.h>

#include "experiment/harness.hpp"
#include "experiment/runner.hpp"

namespace h2sim::experiment {
namespace {

/// `count` configs derived from `proto`, seeded `seed_base .. seed_base+count-1`.
std::vector<TrialConfig> seeded(const TrialConfig& proto, std::uint64_t seed_base,
                                std::size_t count) {
  std::vector<TrialConfig> cfgs(count, proto);
  for (std::size_t i = 0; i < count; ++i) cfgs[i].seed = seed_base + i;
  return cfgs;
}

TEST(Integration, BaselinePageLoadCompletes) {
  TrialConfig cfg;
  cfg.seed = 12345;
  cfg.attack.enabled = false;
  const TrialResult r = run_trial(cfg);
  EXPECT_TRUE(r.page_complete) << r.failure_reason;
  EXPECT_FALSE(r.connection_broken);
  ASSERT_EQ(r.interest.size(), 9u);
  for (const auto& o : r.interest) EXPECT_TRUE(o.delivered) << o.label;
  EXPECT_EQ(r.gets_counted, 53);
  EXPECT_GT(r.records_observed, 1000u);
}

TEST(Integration, DeterministicForSameSeed) {
  TrialConfig cfg;
  cfg.seed = 777;
  cfg.attack.enabled = false;
  const TrialResult a = run_trial(cfg);
  const TrialResult b = run_trial(cfg);
  EXPECT_EQ(a.page_complete, b.page_complete);
  EXPECT_EQ(a.tcp_retransmits, b.tcp_retransmits);
  EXPECT_EQ(a.records_observed, b.records_observed);
  EXPECT_EQ(a.truth, b.truth);
  ASSERT_EQ(a.interest.size(), b.interest.size());
  for (std::size_t i = 0; i < a.interest.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.interest[i].primary_dom, b.interest[i].primary_dom);
  }
}

TEST(Integration, DifferentSeedsDifferentPermutations) {
  TrialConfig a, b;
  a.seed = 1;
  b.seed = 2;
  a.attack.enabled = b.attack.enabled = false;
  // At least the permutation or DoM pattern should differ across seeds.
  const TrialResult ra = run_trial(a);
  const TrialResult rb = run_trial(b);
  EXPECT_TRUE(ra.truth != rb.truth || ra.records_observed != rb.records_observed);
}

TEST(Integration, BaselineEmblemsHeavilyMultiplexed) {
  TrialConfig proto;
  proto.attack.enabled = false;
  int mux = 0, total = 0;
  for (const TrialResult& r : run_trials(seeded(proto, 100, 10))) {
    if (!r.page_complete) continue;
    for (int j = 1; j <= 8; ++j) {
      ++total;
      if (r.interest[static_cast<std::size_t>(j)].primary_dom > 0.3) ++mux;
    }
  }
  ASSERT_GT(total, 0);
  // Without the adversary, the image burst multiplexes heavily.
  EXPECT_GT(static_cast<double>(mux) / total, 0.8);
}

TEST(Integration, FullAttackSerializesHtml) {
  TrialConfig proto;
  proto.attack = full_attack_config();
  int success = 0, completed = 0;
  for (const TrialResult& r : run_trials(seeded(proto, 200, 8))) {
    if (!r.page_complete) continue;
    ++completed;
    if (r.success[0]) ++success;
  }
  ASSERT_GT(completed, 3);
  // The paper reports ~90%; require a clear majority here (few trials).
  EXPECT_GE(static_cast<double>(success) / completed, 0.75);
}

TEST(Integration, FullAttackRecoversMostOfTheRanking) {
  TrialConfig proto;
  proto.attack = full_attack_config();
  int correct_positions = 0, total_positions = 0;
  for (const TrialResult& r : run_trials(seeded(proto, 300, 6))) {
    // Broken trials still count: the adversary keeps what it extracted.
    for (int j = 1; j <= 8; ++j) {
      ++total_positions;
      if (r.success[static_cast<std::size_t>(j)]) ++correct_positions;
    }
  }
  ASSERT_GT(total_positions, 0);
  EXPECT_GT(static_cast<double>(correct_positions) / total_positions, 0.5);
}

TEST(Integration, AttackUsesResetSweep) {
  TrialConfig cfg;
  cfg.seed = 42;
  cfg.attack = full_attack_config();
  const TrialResult r = run_trial(cfg);
  if (r.page_complete) {
    EXPECT_GE(r.reset_sweeps, 1);       // Figure 6 mechanism engaged
    EXPECT_GT(r.adversary_drops, 10u);  // the drop window did real work
  }
}

TEST(Integration, JitterIncreasesRetransmissions) {
  constexpr std::size_t kSeeds = 6;
  TrialConfig quiet;
  quiet.attack.enabled = false;
  TrialConfig noisy;
  noisy.attack = jitter_only_config(sim::Duration::millis(50));
  // One batch, paired by index: configs 0..5 are the quiet runs for seeds
  // 400..405, configs 6..11 the jittered runs for the same seeds.
  std::vector<TrialConfig> cfgs = seeded(quiet, 400, kSeeds);
  for (TrialConfig& cfg : seeded(noisy, 400, kSeeds)) cfgs.push_back(std::move(cfg));
  const auto results = run_trials(cfgs);

  std::uint64_t base = 0, jittered = 0;
  int n = 0;
  for (std::size_t i = 0; i < kSeeds; ++i) {
    const TrialResult& a = results[i];
    const TrialResult& b = results[kSeeds + i];
    if (!a.page_complete || !b.page_complete) continue;
    base += a.wire_retransmissions();
    jittered += b.wire_retransmissions();
    ++n;
  }
  ASSERT_GT(n, 2);
  EXPECT_GT(jittered, base);  // Table I's retransmission increase
}

TEST(Integration, SequentialServerDefeatsNothing) {
  // A server with multiplexing disabled (Section V: most deployments) gives
  // the passive attacker serialized objects even with no adversary.
  TrialConfig cfg;
  cfg.seed = 500;
  cfg.attack.enabled = false;
  cfg.server_h2.scheduler = h2::SchedulerKind::kSequential;
  cfg.server_app.serial_workers = true;
  const TrialResult r = run_trial(cfg);
  EXPECT_TRUE(r.page_complete) << r.failure_reason;
  int serialized = 0;
  for (int j = 0; j <= 8; ++j) {
    if (r.interest[static_cast<std::size_t>(j)].primary_serialized) ++serialized;
  }
  EXPECT_GE(serialized, 7);  // nearly everything is delimitable
}

TEST(Integration, BrokenConnectionReportedAtExtremeDropRate) {
  TrialConfig proto;
  proto.attack = full_attack_config();
  proto.attack.drop_rate = 0.97;
  int broken = 0;
  for (const TrialResult& r : run_trials(seeded(proto, 600, 6))) {
    if (!r.page_complete) ++broken;
  }
  EXPECT_GE(broken, 2);  // the paper's "broken connection" regime
}

TEST(Integration, SingleTargetModeServializesTarget) {
  TrialConfig proto;
  proto.attack = single_target_attack_config(html_get_index(proto.site));
  int success = 0, completed = 0;
  for (const TrialResult& r : run_trials(seeded(proto, 700, 6))) {
    if (!r.page_complete) continue;
    ++completed;
    if (r.interest[0].any_copy_serialized) ++success;
  }
  ASSERT_GT(completed, 2);
  EXPECT_GE(static_cast<double>(success) / completed, 0.75);
}

}  // namespace
}  // namespace h2sim::experiment
