#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "sim/event_loop.hpp"
#include "tcp/tcp_connection.hpp"
#include "tcp/tcp_stack.hpp"

namespace h2sim::tcp {
namespace {

/// Two TCP endpoints joined by a controllable wire: fixed one-way delay plus
/// per-packet drop/hold hooks for loss and reordering experiments.
class TcpPair : public ::testing::Test {
 protected:
  void SetUp() override {
    client_ = std::make_unique<TcpConnection>(
        loop_, cfg_, 1, 1000, 2, 443,
        [this](net::Packet&& p) { transmit(std::move(p), /*to_server=*/true); },
        1000);
    server_ = std::make_unique<TcpConnection>(
        loop_, cfg_, 2, 443, 1, 1000,
        [this](net::Packet&& p) { transmit(std::move(p), /*to_server=*/false); },
        5000);
  }

  void transmit(net::Packet&& p, bool to_server) {
    if (filter_ && !filter_(p, to_server)) return;  // dropped by the test
    loop_.schedule_after(delay_, [this, p = std::move(p), to_server]() mutable {
      (to_server ? *server_ : *client_).handle_segment(p);
    });
  }

  void run_for(double seconds) {
    loop_.run(loop_.now() + sim::Duration::seconds_f(seconds));
  }

  void establish() {
    client_->connect();
    run_for(5);
    ASSERT_TRUE(client_->established());
    ASSERT_TRUE(server_->established());
  }

  std::vector<std::uint8_t> bytes(std::size_t n, std::uint8_t seed = 7) {
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed + i);
    return v;
  }

  sim::EventLoop loop_;
  TcpConfig cfg_;
  sim::Duration delay_ = sim::Duration::millis(5);
  std::function<bool(const net::Packet&, bool to_server)> filter_;
  std::unique_ptr<TcpConnection> client_;
  std::unique_ptr<TcpConnection> server_;
};

TEST_F(TcpPair, ThreeWayHandshake) {
  establish();
  EXPECT_EQ(client_->state(), TcpConnection::State::kEstablished);
  EXPECT_EQ(server_->state(), TcpConnection::State::kEstablished);
}

TEST_F(TcpPair, ConnectedCallbacksFire) {
  bool client_cb = false, server_cb = false;
  TcpConnection::Callbacks ccb;
  ccb.on_connected = [&] { client_cb = true; };
  client_->set_callbacks(std::move(ccb));
  TcpConnection::Callbacks scb;
  scb.on_connected = [&] { server_cb = true; };
  server_->set_callbacks(std::move(scb));
  establish();
  EXPECT_TRUE(client_cb);
  EXPECT_TRUE(server_cb);
}

TEST_F(TcpPair, DeliversBytesInOrder) {
  std::vector<std::uint8_t> received;
  TcpConnection::Callbacks scb;
  scb.on_data = [&](std::span<const std::uint8_t> b) {
    received.insert(received.end(), b.begin(), b.end());
  };
  server_->set_callbacks(std::move(scb));
  establish();

  const auto payload = bytes(10000);
  client_->send(payload);
  run_for(5);
  EXPECT_EQ(received, payload);
}

TEST_F(TcpPair, SegmentsRespectMss) {
  establish();
  client_->send(bytes(5000));
  // 5000 bytes -> 4 segments (3x1460 + 620); check via stats.
  run_for(5);
  EXPECT_EQ(client_->stats().bytes_sent, 5000u);
  EXPECT_GE(client_->stats().segments_sent, 4u);
}

TEST_F(TcpPair, LostDataSegmentRecoversViaFastRetransmit) {
  std::vector<std::uint8_t> received;
  TcpConnection::Callbacks scb;
  scb.on_data = [&](std::span<const std::uint8_t> b) {
    received.insert(received.end(), b.begin(), b.end());
  };
  server_->set_callbacks(std::move(scb));
  establish();

  int data_packets = 0;
  filter_ = [&](const net::Packet& p, bool to_server) {
    if (to_server && !p.payload.empty()) {
      ++data_packets;
      if (data_packets == 2) return false;  // drop the 2nd data segment once
    }
    return true;
  };
  const auto payload = bytes(20000);
  client_->send(payload);
  run_for(10);
  EXPECT_EQ(received, payload);
  EXPECT_GE(client_->stats().retransmits_fast, 1u);
  EXPECT_EQ(client_->stats().retransmits_rto, 0u);  // no timeout needed
  EXPECT_GE(server_->stats().out_of_order_segments, 1u);
}

TEST_F(TcpPair, LoneLossRecoversViaRto) {
  std::vector<std::uint8_t> received;
  TcpConnection::Callbacks scb;
  scb.on_data = [&](std::span<const std::uint8_t> b) {
    received.insert(received.end(), b.begin(), b.end());
  };
  server_->set_callbacks(std::move(scb));
  establish();

  bool dropped = false;
  filter_ = [&](const net::Packet& p, bool to_server) {
    if (to_server && !p.payload.empty() && !dropped) {
      dropped = true;  // drop the only data segment: no dupacks possible
      return false;
    }
    return true;
  };
  client_->send(bytes(500));
  run_for(10);
  EXPECT_EQ(received.size(), 500u);
  EXPECT_GE(client_->stats().retransmits_rto, 1u);
}

TEST_F(TcpPair, CwndGrowsInSlowStart) {
  establish();
  const std::size_t initial = client_->cwnd();
  TcpConnection::Callbacks scb;
  server_->set_callbacks(std::move(scb));
  client_->send(bytes(200000));
  run_for(10);
  EXPECT_GT(client_->cwnd(), initial);
}

TEST_F(TcpPair, GracefulCloseBothDirections) {
  bool server_saw_eof = false, client_saw_eof = false;
  TcpConnection::Callbacks scb;
  scb.on_remote_close = [&] {
    server_saw_eof = true;
    server_->close();
  };
  server_->set_callbacks(std::move(scb));
  TcpConnection::Callbacks ccb;
  ccb.on_remote_close = [&] { client_saw_eof = true; };
  client_->set_callbacks(std::move(ccb));
  establish();

  client_->send(bytes(1000));
  client_->close();
  run_for(10);
  EXPECT_TRUE(server_saw_eof);
  EXPECT_TRUE(client_saw_eof);
  EXPECT_TRUE(client_->fully_closed());
  EXPECT_TRUE(server_->fully_closed());
}

TEST_F(TcpPair, FinRetransmittedWhenLost) {
  bool fin_dropped = false;
  filter_ = [&](const net::Packet& p, bool to_server) {
    if (to_server && p.tcp.fin() && !fin_dropped) {
      fin_dropped = true;
      return false;
    }
    return true;
  };
  bool server_saw_eof = false;
  TcpConnection::Callbacks scb;
  scb.on_remote_close = [&] { server_saw_eof = true; };
  server_->set_callbacks(std::move(scb));
  establish();
  client_->close();
  run_for(20);
  EXPECT_TRUE(fin_dropped);
  EXPECT_TRUE(server_saw_eof);
}

TEST_F(TcpPair, RstAbortsPeer) {
  bool aborted = false;
  std::string reason;
  TcpConnection::Callbacks scb;
  scb.on_aborted = [&](std::string_view r) {
    aborted = true;
    reason = std::string(r);
  };
  server_->set_callbacks(std::move(scb));
  establish();
  client_->abort("test");
  run_for(2);
  EXPECT_TRUE(aborted);
  EXPECT_EQ(reason, "rst-received");
  EXPECT_TRUE(client_->aborted());
  EXPECT_TRUE(server_->aborted());
}

TEST_F(TcpPair, TotalBlackoutBreaksConnection) {
  bool aborted = false;
  TcpConnection::Callbacks ccb;
  ccb.on_aborted = [&](std::string_view) { aborted = true; };
  client_->set_callbacks(std::move(ccb));
  establish();
  filter_ = [](const net::Packet&, bool) { return false; };  // cut the wire
  client_->send(bytes(1000));
  run_for(120);
  EXPECT_TRUE(aborted);  // stuck-timeout or retry budget, either way broken
}

TEST_F(TcpPair, SynRetransmittedWhenLost) {
  int syns = 0;
  filter_ = [&](const net::Packet& p, bool to_server) {
    if (to_server && p.tcp.syn()) {
      ++syns;
      if (syns == 1) return false;  // drop the first SYN
    }
    return true;
  };
  establish();
  EXPECT_GE(syns, 2);
}

TEST_F(TcpPair, ReorderedSegmentsDeliverInOrder) {
  // Hold the first data segment longer than the second (reordering).
  std::vector<std::uint8_t> received;
  TcpConnection::Callbacks scb;
  scb.on_data = [&](std::span<const std::uint8_t> b) {
    received.insert(received.end(), b.begin(), b.end());
  };
  server_->set_callbacks(std::move(scb));
  establish();

  int n = 0;
  filter_ = [&](const net::Packet& p, bool to_server) {
    if (to_server && !p.payload.empty() && ++n == 1) {
      // Re-inject the first data segment with extra delay.
      net::Packet copy = p;
      loop_.schedule_after(sim::Duration::millis(30), [this, copy]() mutable {
        loop_.schedule_after(delay_, [this, copy]() mutable {
          server_->handle_segment(copy);
        });
      });
      return false;
    }
    return true;
  };
  const auto payload = bytes(4000);
  client_->send(payload);
  run_for(10);
  EXPECT_EQ(received, payload);
}

TEST_F(TcpPair, DupAcksCountedAtSender) {
  establish();
  int data_packets = 0;
  filter_ = [&](const net::Packet& p, bool to_server) {
    if (to_server && !p.payload.empty()) {
      ++data_packets;
      if (data_packets == 1) return false;  // hole at the front
    }
    return true;
  };
  client_->send(bytes(30000));
  run_for(10);
  EXPECT_GE(client_->stats().dup_acks_received, 3u);
}

// --- Stack-level tests ---

TEST(TcpStack, ConnectAndAcceptThroughPath) {
  sim::EventLoop loop;
  sim::Rng rng(3);
  net::Path path(loop, net::Path::Config{});
  TcpConfig cfg;
  TcpStack server(loop, rng.split(), net::Path::kServerNode, cfg,
                  [&](net::Packet&& p) { path.send_from_server(std::move(p)); });
  TcpStack client(loop, rng.split(), net::Path::kClientNode, cfg,
                  [&](net::Packet&& p) { path.send_from_client(std::move(p)); });
  path.set_server_sink([&](net::Packet&& p) { server.deliver(std::move(p)); });
  path.set_client_sink([&](net::Packet&& p) { client.deliver(std::move(p)); });

  std::vector<std::uint8_t> got;
  server.listen(443, [&](TcpConnection& c) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&](std::span<const std::uint8_t> b) {
      got.insert(got.end(), b.begin(), b.end());
    };
    c.set_callbacks(std::move(cbs));
  });

  TcpConnection& conn = client.connect(net::Path::kServerNode, 443);
  TcpConnection::Callbacks ccb;
  ccb.on_connected = [&] {
    const std::uint8_t hello[5] = {1, 2, 3, 4, 5};
    conn.send(hello);
  };
  conn.set_callbacks(std::move(ccb));
  loop.run(sim::TimePoint::origin() + sim::Duration::seconds(5));
  EXPECT_EQ(got.size(), 5u);
}

TEST(TcpStack, SynToClosedPortIgnored) {
  sim::EventLoop loop;
  sim::Rng rng(3);
  net::Path path(loop, net::Path::Config{});
  TcpConfig cfg;
  TcpStack server(loop, rng.split(), net::Path::kServerNode, cfg,
                  [&](net::Packet&& p) { path.send_from_server(std::move(p)); });
  TcpStack client(loop, rng.split(), net::Path::kClientNode, cfg,
                  [&](net::Packet&& p) { path.send_from_client(std::move(p)); });
  path.set_server_sink([&](net::Packet&& p) { server.deliver(std::move(p)); });
  path.set_client_sink([&](net::Packet&& p) { client.deliver(std::move(p)); });

  TcpConnection& conn = client.connect(net::Path::kServerNode, 999);
  loop.run(sim::TimePoint::origin() + sim::Duration::seconds(3));
  EXPECT_FALSE(conn.established());
}

TEST(SeqArith, WrapSafety) {
  EXPECT_TRUE(seq_lt(0xfffffff0u, 0x10u));
  EXPECT_TRUE(seq_gt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(seq_le(5u, 5u));
  EXPECT_FALSE(seq_lt(5u, 5u));
}

}  // namespace
}  // namespace h2sim::tcp
