#include <gtest/gtest.h>

#include <set>

#include "experiment/harness.hpp"
#include "web/website.hpp"

namespace h2sim::web {
namespace {

TEST(Website, IsidewithInventory) {
  const Website site = make_isidewith_site();
  // 5 pre + 1 html + 39 fillers + 8 emblems = 53 objects.
  EXPECT_EQ(site.objects().size(), 53u);
  EXPECT_EQ(site.schedule.size(), 53u);
  ASSERT_EQ(site.emblem_paths.size(), 8u);
  ASSERT_FALSE(site.html_path.empty());
  const WebObject* html = site.find(site.html_path);
  ASSERT_NE(html, nullptr);
  EXPECT_EQ(html->size, 9500u);
  EXPECT_TRUE(html->dynamic);
  EXPECT_EQ(html->label, "html");
}

TEST(Website, HtmlIsSixthRequest) {
  const Website site = make_isidewith_site();
  EXPECT_EQ(site.schedule[5].path, site.html_path);
  IsidewithConfig cfg;
  EXPECT_EQ(experiment::html_get_index(cfg), 6);
}

TEST(Website, EmblemSizesUniqueAndInPaperRange) {
  const IsidewithConfig cfg;
  std::set<std::size_t> sizes(cfg.emblem_sizes.begin(), cfg.emblem_sizes.end());
  EXPECT_EQ(sizes.size(), 8u);
  for (const std::size_t s : cfg.emblem_sizes) {
    EXPECT_GE(s, 5000u);   // "between 5KB to 16KB"
    EXPECT_LE(s, 16384u);
  }
}

TEST(Website, SizesSeparatedBeyondPredictorTolerance) {
  const Website site = make_isidewith_site();
  const IsidewithConfig cfg;
  // No filler or html size within 2% of any emblem size: the attacker's
  // size database must be unambiguous (the paper's premise).
  for (const auto& [path, obj] : site.objects()) {
    if (obj.label.rfind("party", 0) == 0) continue;
    for (const std::size_t e : cfg.emblem_sizes) {
      const double rel = std::abs(static_cast<double>(obj.size) -
                                  static_cast<double>(e)) /
                         static_cast<double>(e);
      EXPECT_GT(rel, 0.02) << obj.path << " collides with emblem size " << e;
    }
  }
}

TEST(Website, TailRecordsSurviveBoundaryFilter) {
  // Every object's final 1024-byte-chunked record must stay above the
  // boundary detector's control-record threshold (body = tail + 25 >= 64),
  // i.e. tail >= 39 bytes, or the delimiter would vanish.
  const Website site = make_isidewith_site();
  for (const auto& [path, obj] : site.objects()) {
    const std::size_t tail = obj.size % 1024;
    if (tail != 0) {
      EXPECT_GE(tail + 25, 64u) << path << " size " << obj.size;
    }
  }
}

TEST(Website, EmblemBurstUsesTableIIGaps) {
  const Website site = make_isidewith_site();
  std::vector<double> gaps;
  for (const auto& step : site.schedule) {
    if (step.path.rfind("EMBLEM_", 0) == 0) {
      gaps.push_back(step.gap_from_prev.to_millis());
    }
  }
  ASSERT_EQ(gaps.size(), 8u);
  // Sub-millisecond gaps of Table II for I2..I8.
  EXPECT_NEAR(gaps[1], 0.4, 1e-9);
  EXPECT_NEAR(gaps[4], 0.1, 1e-9);
  EXPECT_NEAR(gaps[7], 0.5, 1e-9);
}

TEST(Website, GatesOrdered) {
  const Website site = make_isidewith_site();
  // Pre-objects and html: no gate; head fillers gate on first byte; emblems
  // and trailing fillers on completion.
  for (int i = 0; i < 6; ++i) EXPECT_EQ(site.schedule[static_cast<std::size_t>(i)].gate, Gate::kNone);
  bool saw_first_byte_gate = false, saw_complete_gate = false;
  for (const auto& s : site.schedule) {
    if (s.gate == Gate::kHtmlFirstByte) saw_first_byte_gate = true;
    if (s.gate == Gate::kHtmlComplete) saw_complete_gate = true;
  }
  EXPECT_TRUE(saw_first_byte_gate);
  EXPECT_TRUE(saw_complete_gate);
}

TEST(Website, TwoObjectSite) {
  const Website site = make_two_object_site(1000, 2000);
  EXPECT_EQ(site.objects().size(), 2u);
  EXPECT_EQ(site.find("/o1")->size, 1000u);
  EXPECT_EQ(site.find_by_label("O2")->size, 2000u);
}

TEST(Website, EmblemGetIndices) {
  IsidewithConfig cfg;
  // GETs: 5 pre, html (6), 12 head fillers (7..18), emblems (19..26).
  EXPECT_EQ(experiment::emblem_get_index(cfg, 0), 19);
  EXPECT_EQ(experiment::emblem_get_index(cfg, 7), 26);
}

}  // namespace
}  // namespace h2sim::web
