#pragma once

// Shared test fixture: a full HTTP/2 client/server pair over simulated
// TLS/TCP/links, with hooks for handlers and scheduler configuration.

#include <memory>
#include <vector>

#include "h2/client.hpp"
#include "h2/server.hpp"
#include "net/topology.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"
#include "tcp/tcp_stack.hpp"
#include "tls/session.hpp"

namespace h2sim::testing {

class H2Pair {
 public:
  explicit H2Pair(h2::ConnectionConfig server_cfg = {},
                  h2::ConnectionConfig client_cfg = {}) {
    path = std::make_unique<net::Path>(loop, net::Path::Config{});
    server_stack = std::make_unique<tcp::TcpStack>(
        loop, sim::Rng(11), net::Path::kServerNode, tcp::TcpConfig{},
        [this](net::Packet&& p) { path->send_from_server(std::move(p)); });
    client_stack = std::make_unique<tcp::TcpStack>(
        loop, sim::Rng(12), net::Path::kClientNode, tcp::TcpConfig{},
        [this](net::Packet&& p) { path->send_from_client(std::move(p)); });
    path->set_server_sink(
        [this](net::Packet&& p) { server_stack->deliver(std::move(p)); });
    path->set_client_sink(
        [this](net::Packet&& p) { client_stack->deliver(std::move(p)); });

    server_stack->listen(443, [this, server_cfg](tcp::TcpConnection& c) {
      server_tls = std::make_unique<tls::TlsSession>(c, tls::TlsSession::Role::kServer);
      server = std::make_unique<h2::ServerConnection>(loop, *server_tls, server_cfg,
                                                      sim::Rng(21));
    });

    tcp::TcpConnection& c = client_stack->connect(net::Path::kServerNode, 443);
    client_tls = std::make_unique<tls::TlsSession>(c, tls::TlsSession::Role::kClient);
    client = std::make_unique<h2::ClientConnection>(loop, *client_tls, client_cfg,
                                                    sim::Rng(22));
  }

  /// Runs the loop for `seconds` of additional simulated time.
  void run(double seconds = 5) {
    loop.run(loop.now() + sim::Duration::seconds_f(seconds));
  }

  sim::EventLoop loop;
  std::unique_ptr<net::Path> path;
  std::unique_ptr<tcp::TcpStack> server_stack;
  std::unique_ptr<tcp::TcpStack> client_stack;
  std::unique_ptr<tls::TlsSession> server_tls;
  std::unique_ptr<tls::TlsSession> client_tls;
  std::unique_ptr<h2::ServerConnection> server;
  std::unique_ptr<h2::ClientConnection> client;
};

}  // namespace h2sim::testing
