// Failure-injection tests: protocol violations and corruption must surface
// as clean, local errors — never as silent corruption or hangs.

#include <gtest/gtest.h>

#include "h2_fixture.hpp"
#include "http/message.hpp"
#include "tls/record.hpp"

namespace h2sim {
namespace {

using h2sim::testing::H2Pair;

TEST(ErrorPaths, TlsDetectsCorruptedCiphertext) {
  // Flip one payload byte in flight: the record MAC must fail and the
  // session must abort rather than deliver garbage.
  sim::EventLoop loop;
  net::Path path(loop, net::Path::Config{});
  tcp::TcpConfig cfg;
  tcp::TcpStack server_stack(loop, sim::Rng(1), net::Path::kServerNode, cfg,
                             [&](net::Packet&& p) { path.send_from_server(std::move(p)); });
  tcp::TcpStack client_stack(loop, sim::Rng(2), net::Path::kClientNode, cfg,
                             [&](net::Packet&& p) { path.send_from_client(std::move(p)); });
  path.set_server_sink([&](net::Packet&& p) { server_stack.deliver(std::move(p)); });
  path.set_client_sink([&](net::Packet&& p) { client_stack.deliver(std::move(p)); });

  std::unique_ptr<tls::TlsSession> server_tls;
  bool server_aborted = false;
  bool got_plaintext = false;
  server_stack.listen(443, [&](tcp::TcpConnection& c) {
    server_tls = std::make_unique<tls::TlsSession>(c, tls::TlsSession::Role::kServer);
    tls::TlsSession::Callbacks cbs;
    cbs.on_plaintext = [&](std::span<const std::uint8_t>) { got_plaintext = true; };
    cbs.on_aborted = [&](std::string_view) { server_aborted = true; };
    server_tls->set_callbacks(std::move(cbs));
  });

  tcp::TcpConnection& conn = client_stack.connect(net::Path::kServerNode, 443);
  tls::TlsSession client_tls(conn, tls::TlsSession::Role::kClient);

  // Corrupt the 4th client->server payload packet (application data; the
  // first three carry the handshake).
  int payload_count = 0;
  class Corruptor : public net::PacketPolicy {
   public:
    int* counter;
    net::Decision on_packet(const net::Packet& p, net::Direction dir,
                            sim::TimePoint) override {
      if (dir == net::Direction::kClientToServer && !p.payload.empty()) {
        ++*counter;
        if (*counter == 4) {
          // The middlebox API is non-mutating; corrupt via const_cast to
          // simulate in-flight bit rot (test-only).
          auto& mutable_packet = const_cast<net::Packet&>(p);
          mutable_packet.payload[mutable_packet.payload.size() / 2] ^= 0xff;
        }
      }
      return net::Decision::forward();
    }
  } corruptor;
  corruptor.counter = &payload_count;
  path.middlebox().set_policy(&corruptor);

  tls::TlsSession::Callbacks ccbs;
  ccbs.on_established = [&] {
    std::vector<std::uint8_t> msg(5000, 0x61);
    client_tls.write(msg);
  };
  client_tls.set_callbacks(std::move(ccbs));

  loop.run(sim::TimePoint::origin() + sim::Duration::seconds(10));
  EXPECT_TRUE(server_aborted);  // bad_record_mac semantics
}

TEST(ErrorPaths, BadConnectionPrefaceKillsConnection) {
  // A client that speaks garbage instead of "PRI * HTTP/2.0..." must get the
  // connection torn down.
  sim::EventLoop loop;
  net::Path path(loop, net::Path::Config{});
  tcp::TcpConfig cfg;
  tcp::TcpStack server_stack(loop, sim::Rng(1), net::Path::kServerNode, cfg,
                             [&](net::Packet&& p) { path.send_from_server(std::move(p)); });
  tcp::TcpStack client_stack(loop, sim::Rng(2), net::Path::kClientNode, cfg,
                             [&](net::Packet&& p) { path.send_from_client(std::move(p)); });
  path.set_server_sink([&](net::Packet&& p) { server_stack.deliver(std::move(p)); });
  path.set_client_sink([&](net::Packet&& p) { client_stack.deliver(std::move(p)); });

  std::unique_ptr<tls::TlsSession> server_tls;
  std::unique_ptr<h2::ServerConnection> server;
  bool dead = false;
  server_stack.listen(443, [&](tcp::TcpConnection& c) {
    server_tls = std::make_unique<tls::TlsSession>(c, tls::TlsSession::Role::kServer);
    server = std::make_unique<h2::ServerConnection>(loop, *server_tls,
                                                    h2::ConnectionConfig{}, sim::Rng(3));
    h2::ServerConnection::Handlers h;
    h.on_connection_dead = [&](std::string_view) { dead = true; };
    server->set_handlers(std::move(h));
  });

  tcp::TcpConnection& conn = client_stack.connect(net::Path::kServerNode, 443);
  tls::TlsSession client_tls(conn, tls::TlsSession::Role::kClient);
  tls::TlsSession::Callbacks cbs;
  cbs.on_established = [&] {
    const char* junk = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
    client_tls.write(std::span(reinterpret_cast<const std::uint8_t*>(junk), 28));
  };
  client_tls.set_callbacks(std::move(cbs));
  loop.run(sim::TimePoint::origin() + sim::Duration::seconds(5));
  EXPECT_TRUE(dead);
  EXPECT_TRUE(server->dead());
}

TEST(ErrorPaths, FrameSizeViolationIsConnectionError) {
  H2Pair pair;
  pair.run(1);
  // Bypass the connection API: write an oversized frame straight to TLS.
  h2::Frame f;
  f.type = h2::FrameType::kData;
  f.stream_id = 1;
  f.payload.assign(100000, 0x0);  // 100 KB > the server's 16 KB max
  pair.client_tls->write(h2::serialize_frame(f));
  pair.run(2);
  EXPECT_TRUE(pair.server->dead());
}

TEST(ErrorPaths, GarbageHeaderBlockIsCompressionError) {
  H2Pair pair;
  pair.run(1);
  h2::Frame f;
  f.type = h2::FrameType::kHeaders;
  f.flags = h2::flags::kEndHeaders | h2::flags::kEndStream;
  f.stream_id = 1;
  f.payload = {0xff, 0xff, 0xff, 0xff, 0xff};  // invalid HPACK index ladder
  pair.client_tls->write(h2::serialize_frame(f));
  pair.run(2);
  EXPECT_TRUE(pair.server->dead());  // COMPRESSION_ERROR closes the connection
}

TEST(ErrorPaths, DataOnStreamZeroIsProtocolError) {
  H2Pair pair;
  pair.run(1);
  h2::Frame f;
  f.type = h2::FrameType::kData;
  f.stream_id = 0;
  f.payload = {1, 2, 3};
  pair.client_tls->write(h2::serialize_frame(f));
  pair.run(2);
  EXPECT_TRUE(pair.server->dead());
}

TEST(ErrorPaths, ZeroWindowUpdateIsProtocolError) {
  H2Pair pair;
  pair.run(1);
  h2::Frame f;
  f.type = h2::FrameType::kWindowUpdate;
  f.stream_id = 0;
  f.payload = h2::encode_window_update(0);
  pair.client_tls->write(h2::serialize_frame(f));
  pair.run(2);
  EXPECT_TRUE(pair.server->dead());
}

TEST(ErrorPaths, UnknownFrameTypesAreIgnored) {
  H2Pair pair;
  pair.run(1);
  h2::Frame f;
  f.type = static_cast<h2::FrameType>(0xEE);  // greased/unknown
  f.stream_id = 0;
  f.payload = {9, 9, 9};
  pair.client_tls->write(h2::serialize_frame(f));
  pair.run(2);
  EXPECT_FALSE(pair.server->dead());  // §4.1: ignore and discard
}

TEST(ErrorPaths, PushPromiseFromClientIsProtocolError) {
  H2Pair pair;
  pair.run(1);
  h2::Frame f;
  f.type = h2::FrameType::kPushPromise;
  f.flags = h2::flags::kEndHeaders;
  f.stream_id = 1;
  f.payload = h2::encode_push_promise(2, {});
  pair.client_tls->write(h2::serialize_frame(f));
  pair.run(2);
  EXPECT_TRUE(pair.server->dead());
}

TEST(ErrorPaths, InterleavedHeaderBlockIsProtocolError) {
  H2Pair pair;
  pair.run(1);
  // HEADERS without END_HEADERS, then a DATA frame instead of CONTINUATION.
  h2::Frame h;
  h.type = h2::FrameType::kHeaders;
  h.stream_id = 1;
  h.payload = {0x82};
  pair.client_tls->write(h2::serialize_frame(h));
  h2::Frame d;
  d.type = h2::FrameType::kData;
  d.stream_id = 1;
  d.payload = {1};
  pair.client_tls->write(h2::serialize_frame(d));
  pair.run(2);
  EXPECT_TRUE(pair.server->dead());
}

TEST(ErrorPaths, RstStreamOnUnknownStreamIsHarmless) {
  H2Pair pair;
  pair.run(1);
  pair.client->cancel(9999);
  pair.run(2);
  EXPECT_FALSE(pair.server->dead());
  EXPECT_FALSE(pair.client->dead());
}

TEST(ErrorPaths, RequestWithoutPseudoHeadersGets404Path) {
  H2Pair pair;
  pair.run(1);
  bool got_reset = false;
  h2::ClientConnection::Handlers ch;
  ch.on_reset = [&](std::uint32_t, h2::ErrorCode code) {
    got_reset = code == h2::ErrorCode::kProtocolError;
  };
  pair.client->set_handlers(std::move(ch));

  // ServerApp-less server: install a handler that mimics the app's
  // validation path.
  h2::ServerConnection::Handlers sh;
  sh.on_request = [&](std::uint32_t sid, const hpack::HeaderList& headers) {
    if (!http::Request::from_h2_headers(headers)) {
      pair.server->send_rst_stream(sid, h2::ErrorCode::kProtocolError);
    }
  };
  pair.server->set_handlers(std::move(sh));

  pair.client->send_request({{"x-not-a-request", "1"}});
  pair.run(2);
  EXPECT_TRUE(got_reset);
  EXPECT_FALSE(pair.client->dead());
}

}  // namespace
}  // namespace h2sim
