// Timing-wheel scheduler correctness: dual-execution fuzzing against a
// plain ordered-map reference model, FIFO (at, seq) ordering over mixed
// horizons with cancellation churn, and directed regressions for the two
// subtle wheel behaviours — far-future events cascading down through the
// levels, and the own-index catch-up pass that must run when a drain
// advance carries the cursor across a 64-slot boundary.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "sim/event_loop.hpp"

namespace h2sim::sim {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Shared callback logic for the dual-execution fuzz below: every fired event
// appends its id, then deterministically (from the salt) schedules up to
// three children across six decades of horizon and sometimes cancels an
// arbitrary earlier event. Both worlds run the identical program, so any
// divergence in the fired-id sequence is a wheel ordering or loss bug.
template <class World>
void fuzz_act(World& w, int id) {
  w.order.push_back(id);
  const std::uint64_t h = mix(static_cast<std::uint64_t>(id) * 7919 + w.salt);
  const int children = static_cast<int>(h % 4);
  for (int c = 0; c < children && w.next_id <= w.budget; ++c) {
    const std::uint64_t hh = mix(h + static_cast<std::uint64_t>(c) + 1);
    std::int64_t delta = 0;
    switch (hh % 6) {
      case 0: delta = 0; break;                                        // now
      case 1: delta = static_cast<std::int64_t>(hh % 700); break;      // sub-granule
      case 2: delta = static_cast<std::int64_t>(hh % 3000); break;     // granule edge
      case 3: delta = static_cast<std::int64_t>(hh % 2000000); break;  // ms
      case 4: delta = static_cast<std::int64_t>(hh % 400000000LL); break;    // RTO
      default: delta = static_cast<std::int64_t>(hh % 30000000000LL); break; // idle
    }
    const int cid = w.next_id++;
    w.schedule(cid, w.now_ns() + delta);
  }
  if ((h >> 8) % 3 == 0) {
    w.cancel_id(static_cast<int>((h >> 16) % static_cast<std::uint64_t>(w.next_id)));
  }
}

// The system under test: ids scheduled on the real EventLoop.
struct WheelWorld {
  EventLoop loop;
  std::map<int, TimerHandle> handles;
  std::vector<int> order;
  int next_id = 0;
  std::uint64_t salt = 0;
  int budget = 0;
  void schedule(int id, std::int64_t at) {
    handles[id] = loop.schedule_at(TimePoint::from_nanos(at),
                                   [this, id] { fuzz_act(*this, id); });
  }
  void cancel_id(int id) {
    auto it = handles.find(id);
    if (it != handles.end()) it->second.cancel();
  }
  std::int64_t now_ns() { return loop.now().count_nanos(); }
};

// The reference model: an ordered map keyed by (at, seq) — the scheduler's
// documented dispatch order — with no wheel, no cascades, no buckets.
struct RefWorld {
  std::map<std::pair<std::int64_t, std::uint64_t>, std::function<void()>> q;
  std::map<int, std::pair<std::int64_t, std::uint64_t>> keys;
  std::int64_t now = 0;
  std::uint64_t seq = 0;
  std::vector<int> order;
  int next_id = 0;
  std::uint64_t salt = 0;
  int budget = 0;
  void schedule(int id, std::int64_t at) {
    if (at < now) at = now;
    const auto key = std::make_pair(at, seq++);
    q.emplace(key, [this, id] { fuzz_act(*this, id); });
    keys[id] = key;
  }
  void cancel_id(int id) {
    auto it = keys.find(id);
    if (it != keys.end()) q.erase(it->second);
  }
  std::int64_t now_ns() { return now; }
  void run(std::int64_t until) {
    while (!q.empty()) {
      auto it = q.begin();
      if (it->first.first > until) break;
      now = it->first.first;
      auto cb = std::move(it->second);
      q.erase(it);
      cb();
    }
  }
};

// Dual execution: the same self-rescheduling, self-cancelling program runs
// on the wheel and on the reference model; the fired-id sequences must be
// identical for every salt. This is the harness that originally caught the
// boundary-carry bug, kept as a standing fuzz.
TEST(SimWheel, MatchesReferenceModelAcrossSalts) {
  for (std::uint64_t salt = 0; salt < 200; ++salt) {
    const int budget = 400;
    WheelWorld w;
    w.salt = salt;
    w.budget = budget;
    RefWorld r;
    r.salt = salt;
    r.budget = budget;
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t hh = mix(salt * 1315423911ULL + static_cast<std::uint64_t>(i));
      const auto at = static_cast<std::int64_t>(hh % 50000000000LL);
      const int wid = w.next_id++;
      w.schedule(wid, at);
      const int rid = r.next_id++;
      r.schedule(rid, at);
    }
    w.loop.run(TimePoint::from_nanos(120000000000LL));
    r.run(120000000000LL);
    ASSERT_EQ(w.order, r.order) << "salt " << salt;
  }
}

// Property: over a random mix of horizons (sub-granule to minutes) with a
// random quarter of the events cancelled, the surviving events fire in
// exact (at, seq) order — FIFO among same-instant events, regardless of
// which wheel level each event originally landed on.
TEST(SimWheel, RandomMixFiresInAtSeqOrder) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    EventLoop loop;
    struct Ev {
      std::int64_t at;
      std::uint64_t seq;
    };
    std::vector<Ev> expected;
    std::vector<Ev> fired;
    std::uint64_t seq = 0;
    const int n = 200;
    std::vector<TimerHandle> handles;
    for (int i = 0; i < n; ++i) {
      std::int64_t at = 0;
      switch (rng() % 5) {
        case 0: at = static_cast<std::int64_t>(rng() % 2000); break;
        case 1: at = static_cast<std::int64_t>(rng() % 100000); break;
        case 2: at = static_cast<std::int64_t>(rng() % 10000000); break;
        case 3: at = static_cast<std::int64_t>(rng() % 4000000000LL); break;
        default: at = static_cast<std::int64_t>(rng() % 120000000000LL); break;
      }
      const std::uint64_t s = seq++;
      handles.push_back(loop.schedule_at(TimePoint::from_nanos(at),
                                         [&fired, at, s] { fired.push_back({at, s}); }));
      expected.push_back({at, s});
    }
    std::vector<char> cancelled(n, 0);
    for (int i = 0; i < n / 4; ++i) {
      const auto k = static_cast<int>(rng() % n);
      if (!cancelled[static_cast<std::size_t>(k)]) {
        handles[static_cast<std::size_t>(k)].cancel();
        cancelled[static_cast<std::size_t>(k)] = 1;
      }
    }
    std::vector<Ev> live;
    for (int i = 0; i < n; ++i) {
      if (!cancelled[static_cast<std::size_t>(i)]) {
        live.push_back(expected[static_cast<std::size_t>(i)]);
      }
    }
    std::sort(live.begin(), live.end(), [](const Ev& a, const Ev& b) {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    });
    loop.run();
    ASSERT_EQ(fired.size(), live.size()) << "trial " << trial;
    for (std::size_t i = 0; i < live.size(); ++i) {
      ASSERT_EQ(fired[i].at, live[i].at) << "trial " << trial << " idx " << i;
      ASSERT_EQ(fired[i].seq, live[i].seq) << "trial " << trial << " idx " << i;
    }
  }
}

// A far-future event lands in a high wheel level and must cascade down
// through intermediate levels as the cursor approaches, firing at exactly
// its scheduled instant — even with nothing else on the loop to pace the
// drain.
TEST(SimWheel, FarFutureEventCascadesToExactInstant) {
  EventLoop loop;
  // Three horizons spanning three different wheel levels, plus one at the
  // 54-bit scale the 1024 ns granule can still represent comfortably.
  const std::int64_t horizons[] = {
      30'000'000'000LL,        // 30 s
      3'600'000'000'000LL,     // 1 h
      86'400'000'000'000LL,    // 24 h
  };
  std::vector<std::int64_t> fired_at;
  for (const std::int64_t at : horizons) {
    loop.schedule_at(TimePoint::from_nanos(at),
                     [&fired_at, &loop] { fired_at.push_back(loop.now().count_nanos()); });
  }
  loop.run();
  ASSERT_EQ(fired_at.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(fired_at[i], horizons[i]);
}

// Regression for the boundary-carry bug: an event scheduled from inside the
// last granule of a 64-slot level-0 window, targeting the first granule of
// the next window, lands in a level-1 bucket whose index equals the
// cursor's level-1 digit right after the drain advance carries. The
// own-index catch-up pass must cascade that bucket or the event is lost.
TEST(SimWheel, CarryAcrossLevel0BoundaryDeliversNextWindowEvent) {
  constexpr std::int64_t kGranule = 1024;  // 2^kScaleShift ns
  EventLoop loop;
  std::vector<int> fired;
  // Runs in granule 63 (the last slot of the first level-0 window) and
  // schedules a follow-up into granule 64 — reachable only via the carry
  // catch-up, because at insert time the target differs from the cursor in
  // the level-1 digit.
  loop.schedule_at(TimePoint::from_nanos(63 * kGranule + 7), [&] {
    fired.push_back(1);
    loop.schedule_at(TimePoint::from_nanos(64 * kGranule + 5),
                     [&] { fired.push_back(2); });
  });
  loop.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now().count_nanos(), 64 * kGranule + 5);
}

// Same carry shape one level up: cross the 64^2-granule boundary (the
// level-2 digit increments) while a follow-up waits in the first window of
// the new level-1 rotation. Also drives the cursor through two full
// level-1 rotations with a periodic timer to exercise level-0 slot reuse
// after wraparound.
TEST(SimWheel, WraparoundAndHigherLevelCarry) {
  constexpr std::int64_t kGranule = 1024;
  constexpr std::int64_t kL1Span = 64 * 64 * kGranule;  // one level-2 slot
  {
    EventLoop loop;
    std::vector<int> fired;
    loop.schedule_at(TimePoint::from_nanos(kL1Span - kGranule + 3), [&] {
      fired.push_back(1);
      loop.schedule_at(TimePoint::from_nanos(kL1Span + 9),
                       [&] { fired.push_back(2); });
    });
    loop.run();
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  }
  {
    EventLoop loop;
    int ticks = 0;
    // One tick per 16 granules across two full level-1 rotations: every
    // level-0 slot is filled, drained, and refilled after wrapping.
    constexpr int kTicks = 2 * 64 * 4;
    std::function<void()> tick = [&] {
      if (++ticks < kTicks) loop.schedule_after(Duration::nanos(16 * kGranule), tick);
    };
    loop.schedule_after(Duration::nanos(16 * kGranule), tick);
    loop.run();
    EXPECT_EQ(ticks, kTicks);
    EXPECT_EQ(loop.now().count_nanos(), static_cast<std::int64_t>(kTicks) * 16 * kGranule);
  }
}

// Cancelling the only occupant of a far-level bucket must not leave stale
// occupancy that later misroutes the cursor, and rescheduling across levels
// (near -> far -> near) must keep the handle live and fire exactly once.
TEST(SimWheel, CancelAndRescheduleAcrossLevels) {
  EventLoop loop;
  int fired = 0;
  TimerHandle far = loop.schedule_after(Duration::seconds(40), [&] { fired += 100; });
  TimerHandle moved = loop.schedule_after(Duration::micros(50), [&] { ++fired; });
  ASSERT_TRUE(loop.reschedule_after(moved, Duration::seconds(2)));
  ASSERT_TRUE(loop.reschedule_after(moved, Duration::millis(3)));
  far.cancel();
  loop.schedule_after(Duration::seconds(41), [&] { fired += 10; });
  loop.run();
  // The cancelled far timer never fires; the twice-rescheduled timer fires
  // once at its final slot; the post-cancel far timer still fires.
  EXPECT_EQ(fired, 11);
}

}  // namespace
}  // namespace h2sim::sim
