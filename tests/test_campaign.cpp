// Streaming campaign telemetry: Welford accumulators vs naive statistics,
// mergeable histograms, the TrialRecord NDJSON schema's exact round-trip,
// streamed-vs-reference aggregate equality over a 32-seed grid, the wave
// manifest, kill-and-resume byte-equivalence, shard-corruption detection,
// and the wall-time component profiler.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/campaign.hpp"
#include "experiment/runner.hpp"
#include "experiment/sink.hpp"
#include "obs/aggregate.hpp"
#include "obs/context.hpp"
#include "obs/profiler.hpp"
#include "obs/sha256.hpp"

namespace h2sim::experiment {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

std::string temp_dir(const char* tag) {
  static int counter = 0;
  return testing::TempDir() + "h2sim_campaign_" + tag + "_" +
         std::to_string(++counter);
}

TrialConfig quick_config() {
  TrialConfig cfg;
  cfg.attack.enabled = false;
  cfg.site_builder = [] { return web::make_two_object_site(20000, 40000); };
  return cfg;
}

// ---------------------------------------------------------------- obs core

TEST(StatAccumulator, MatchesNaiveStatistics) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-5.0, 20.0);
  std::vector<double> xs;
  obs::StatAccumulator acc;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(rng);
    xs.push_back(x);
    acc.add(x);
  }
  double mean = 0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_EQ(acc.count, xs.size());
  EXPECT_NEAR(acc.mean, mean, 1e-12);
  EXPECT_NEAR(acc.variance(), var, 1e-9);
  EXPECT_EQ(acc.min, *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(acc.max, *std::max_element(xs.begin(), xs.end()));
  EXPECT_NEAR(acc.ci95_halfwidth(),
              1.96 * std::sqrt(var / static_cast<double>(xs.size())), 1e-9);
}

TEST(StatAccumulator, MergeMatchesSequentialWithinTolerance) {
  obs::StatAccumulator left, right, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i < 40 ? left : right).add(x);
    all.add(x);
  }
  obs::StatAccumulator merged = left;
  merged.merge(right);
  EXPECT_EQ(merged.count, all.count);
  EXPECT_EQ(merged.min, all.min);
  EXPECT_EQ(merged.max, all.max);
  EXPECT_NEAR(merged.mean, all.mean, 1e-12);
  EXPECT_NEAR(merged.m2, all.m2, 1e-9);

  // Merging into an empty accumulator is an exact copy.
  obs::StatAccumulator from_empty;
  from_empty.merge(all);
  EXPECT_EQ(from_empty, all);
  // Merging an empty one is a no-op.
  obs::StatAccumulator copy = all;
  copy.merge(obs::StatAccumulator{});
  EXPECT_EQ(copy, all);
}

TEST(HistogramData, MergeRequiresIdenticalEdges) {
  obs::HistogramData a;
  a.edges = {1.0, 2.0};
  a.counts = {3, 1, 0};
  a.count = 4;
  a.sum = 5.5;
  obs::HistogramData b = a;
  b.counts = {0, 2, 7};
  b.count = 9;
  b.sum = 30.0;

  obs::HistogramData sum = a;
  ASSERT_TRUE(sum.merge(b));
  EXPECT_EQ(sum.counts, (std::vector<std::uint64_t>{3, 3, 7}));
  EXPECT_EQ(sum.count, 13u);
  EXPECT_DOUBLE_EQ(sum.sum, 35.5);

  // Edge mismatch: refused, left untouched.
  obs::HistogramData other;
  other.edges = {1.0, 3.0};
  other.counts = {1, 1, 1};
  obs::HistogramData before = a;
  EXPECT_FALSE(a.merge(other));
  EXPECT_EQ(a, before);

  // An empty accumulator adopts the other side wholesale.
  obs::HistogramData empty;
  ASSERT_TRUE(empty.merge(b));
  EXPECT_EQ(empty, b);

  // operator+= is merge with the mismatch treated as a programming error.
  obs::HistogramData c = a;
  c += b;
  EXPECT_EQ(c.count, 13u);
}

TEST(AggregateTable, NdjsonIsDeterministicAndMergeable) {
  obs::AggregateTable t1, t2;
  t1.cell("b").add("x", 1.0);
  t1.cell("a").add("x", 2.0);
  t2.cell("a").add("x", 2.0);
  t2.cell("b").add("x", 1.0);
  EXPECT_EQ(t1.ndjson(), t2.ndjson());  // label-sorted, insertion-order-free
  EXPECT_EQ(t1.ndjson().substr(0, 12), "{\"cell\": \"a\"");

  obs::AggregateTable merged = t1;
  merged.merge(t2);
  EXPECT_EQ(merged.total_trials(), 0u);  // add() doesn't bump trials
  ASSERT_NE(merged.find("a"), nullptr);
  EXPECT_EQ(merged.find("a")->stats.at("x").count, 2u);
}

// ------------------------------------------------------------ TrialRecord

TEST(TrialRecord, NdjsonRoundTripIsExact) {
  TrialRecord rec;
  rec.index = 12345;
  rec.seed = 0xdeadbeef;
  rec.cell = "attack=full,pad=256,\"quoted\"";
  for (std::size_t i = 0; i < TrialRecord::kFieldCount; ++i) {
    // Awkward doubles: %.17g must carry them through exactly.
    rec.values[i] = std::sqrt(static_cast<double>(i) + 0.1) * 1e-3;
  }
  const std::string line = trial_record_ndjson(rec);
  const auto back = parse_trial_record(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, rec);
  // Re-serialization is byte-identical — the basis of shard checksums.
  EXPECT_EQ(trial_record_ndjson(*back), line);
}

TEST(TrialRecord, ParseRejectsMalformedAndForeignSchema) {
  EXPECT_FALSE(parse_trial_record("not json"));
  EXPECT_FALSE(parse_trial_record("{\"index\": 1}"));
  TrialRecord rec;
  std::string line = trial_record_ndjson(rec);
  // Rename one field: schema-foreign.
  const std::size_t pos = line.find("page_complete");
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, 13, "page_COMPLETE");
  EXPECT_FALSE(parse_trial_record(line));
}

// -------------------------------------------------- streamed == reference

// Acceptance criterion: per-cell aggregates streamed through a sink during a
// parallel run must equal — bit for bit, compared through the serialized
// NDJSON — a reference reduction that materializes every result in memory
// and applies them sequentially in index order.
TEST(AggregatingSink, StreamedMatchesReferenceReductionBitForBit) {
  std::vector<TrialConfig> cfgs;
  for (std::uint64_t s = 1; s <= 32; ++s) {
    TrialConfig cfg = quick_config();
    cfg.seed = s;
    // Two "cells" interleaved by parity to exercise per-cell keying.
    cfgs.push_back(cfg);
  }
  auto labeler = [](std::size_t index, const TrialConfig&) {
    return index % 2 == 0 ? std::string("even") : std::string("odd");
  };

  // Reference: in-memory results, sequential reduction in index order.
  const std::vector<TrialResult> results = run_trials(cfgs);
  obs::AggregateTable reference;
  for (std::size_t i = 0; i < results.size(); ++i) {
    apply_trial_record(
        reference,
        make_trial_record(i, cfgs[i], labeler(i, cfgs[i]), results[i]));
  }

  // Streamed: parallel run, no result vector, sink reduces canonically.
  AggregatingSink sink(labeler);
  RunOptions opts;
  opts.jobs = 4;
  opts.collect_results = false;
  opts.sink = &sink;
  const std::vector<TrialResult> empty = run_trials(cfgs, opts);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(sink.applied(), cfgs.size());
  EXPECT_EQ(sink.table().ndjson(), reference.ndjson());
  EXPECT_EQ(sink.table(), reference);
}

TEST(AggregatingSink, OnRecordSeesCanonicalOrder) {
  std::vector<TrialConfig> cfgs;
  for (std::uint64_t s = 50; s < 58; ++s) {
    TrialConfig cfg = quick_config();
    cfg.seed = s;
    cfgs.push_back(cfg);
  }
  AggregatingSink sink(nullptr, /*base_index=*/100);
  std::vector<std::uint64_t> seen;
  sink.on_record = [&seen](const TrialRecord& rec) { seen.push_back(rec.index); };
  RunOptions opts;
  opts.jobs = 3;
  opts.collect_results = false;
  opts.sink = &sink;
  run_trials(cfgs, opts);
  ASSERT_EQ(seen.size(), cfgs.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 100 + i);  // ascending global index, no holes
  }
}

// ---------------------------------------------------------------- campaign

CampaignOptions small_campaign(const std::string& out_dir) {
  CampaignOptions opts;
  CampaignCell a{"site=a", quick_config()};
  CampaignCell b{"site=b", quick_config()};
  b.base.site_builder = [] { return web::make_two_object_site(25000, 30000); };
  opts.cells = {a, b};
  opts.trials_per_cell = 6;
  opts.wave_seeds = 2;
  opts.jobs = 2;
  opts.out_dir = out_dir;
  return opts;
}

TEST(Campaign, ManifestJsonRoundTrips) {
  CampaignManifest m;
  m.config_digest = "abc";
  m.seed_base = 3;
  m.trials_per_cell = 100;
  m.wave_seeds = 10;
  m.cells = {"x", "y"};
  m.shards.push_back({"shard-00000.ndjson", 20, "feed"});
  m.stopped_cells = {"y"};
  m.complete = true;
  const auto back = CampaignManifest::parse(m.json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->config_digest, m.config_digest);
  EXPECT_EQ(back->seed_base, m.seed_base);
  EXPECT_EQ(back->trials_per_cell, m.trials_per_cell);
  EXPECT_EQ(back->wave_seeds, m.wave_seeds);
  EXPECT_EQ(back->cells, m.cells);
  ASSERT_EQ(back->shards.size(), 1u);
  EXPECT_EQ(back->shards[0].file, "shard-00000.ndjson");
  EXPECT_EQ(back->shards[0].rows, 20u);
  EXPECT_EQ(back->shards[0].sha256, "feed");
  EXPECT_EQ(back->stopped_cells, m.stopped_cells);
  EXPECT_TRUE(back->complete);
}

TEST(Campaign, InterruptedThenResumedEqualsUninterruptedByteForByte) {
  const std::string ref_dir = temp_dir("ref");
  const std::string int_dir = temp_dir("int");

  CampaignOptions ref = small_campaign(ref_dir);
  const CampaignOutcome ref_out = run_campaign(ref);
  ASSERT_TRUE(ref_out.ok) << ref_out.error;
  ASSERT_TRUE(ref_out.complete);
  EXPECT_EQ(ref_out.trials_total, 12u);

  // "Kill" after 4 trials (one wave), then resume with a different worker
  // count — scheduling must not leak into the aggregates.
  CampaignOptions first = small_campaign(int_dir);
  first.max_trials_this_run = 4;
  const CampaignOutcome first_out = run_campaign(first);
  ASSERT_TRUE(first_out.ok) << first_out.error;
  EXPECT_FALSE(first_out.complete);
  EXPECT_EQ(first_out.trials_run, 4u);

  CampaignOptions second = small_campaign(int_dir);
  second.resume = true;
  second.jobs = 1;
  const CampaignOutcome second_out = run_campaign(second);
  ASSERT_TRUE(second_out.ok) << second_out.error;
  EXPECT_TRUE(second_out.complete);
  EXPECT_EQ(second_out.trials_run, 8u);
  EXPECT_EQ(second_out.trials_total, 12u);

  EXPECT_EQ(slurp(ref_dir + "/aggregates.ndjson"),
            slurp(int_dir + "/aggregates.ndjson"));
  EXPECT_FALSE(slurp(ref_dir + "/aggregates.ndjson").empty());
  // Every shard byte-identical too: same records in the same order.
  for (int w = 0; w < 3; ++w) {
    char name[32];
    std::snprintf(name, sizeof(name), "/shard-%05d.ndjson", w);
    EXPECT_EQ(slurp(ref_dir + name), slurp(int_dir + name)) << name;
  }
}

TEST(Campaign, ResumeRefusesCorruptedShard) {
  const std::string dir = temp_dir("corrupt");
  CampaignOptions opts = small_campaign(dir);
  opts.max_trials_this_run = 4;
  ASSERT_TRUE(run_campaign(opts).ok);

  // Flip a digit inside the recorded shard.
  const std::string shard_path = dir + "/shard-00000.ndjson";
  std::string content = slurp(shard_path);
  ASSERT_FALSE(content.empty());
  const std::size_t digit = content.find_first_of("0123456789");
  ASSERT_NE(digit, std::string::npos);
  content[digit] = content[digit] == '9' ? '8' : '9' ;
  spit(shard_path, content);

  CampaignOptions resume = small_campaign(dir);
  resume.resume = true;
  const CampaignOutcome out = run_campaign(resume);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("checksum"), std::string::npos) << out.error;
}

TEST(Campaign, ResumeRefusesDifferentGrid) {
  const std::string dir = temp_dir("digest");
  CampaignOptions opts = small_campaign(dir);
  opts.max_trials_this_run = 4;
  ASSERT_TRUE(run_campaign(opts).ok);

  CampaignOptions other = small_campaign(dir);
  other.resume = true;
  other.trials_per_cell = 99;  // different grid shape
  const CampaignOutcome out = run_campaign(other);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("digest"), std::string::npos) << out.error;
}

TEST(Campaign, CiEarlyStopHaltsCellDeterministically) {
  const std::string d1 = temp_dir("stop1");
  const std::string d2 = temp_dir("stop2");
  // A generous half-width stops every cell at the first eligible boundary.
  for (const std::string* dir : {&d1, &d2}) {
    CampaignOptions opts = small_campaign(*dir);
    opts.trials_per_cell = 6;
    opts.wave_seeds = 2;
    opts.ci_stop_halfwidth = 10.0;
    opts.ci_stop_min_trials = 4;
    if (dir == &d2) {
      opts.max_trials_this_run = 4;  // interrupt before the stop decision
      ASSERT_TRUE(run_campaign(opts).ok);
      opts.max_trials_this_run = 0;
      opts.resume = true;
    }
    const CampaignOutcome out = run_campaign(opts);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_TRUE(out.complete);
    // Stopped after wave 2 (4 trials/cell >= min), not the full 6.
    EXPECT_EQ(out.trials_total, 8u);
  }
  EXPECT_EQ(slurp(d1 + "/aggregates.ndjson"), slurp(d2 + "/aggregates.ndjson"));
}

// ---------------------------------------------------------------- sha256

TEST(Sha256, KnownVectors) {
  EXPECT_EQ(obs::sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(obs::sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // Streaming across chunk boundaries equals one-shot.
  obs::Sha256 h;
  const std::string msg(1000, 'x');
  h.update(msg.substr(0, 63));
  h.update(msg.substr(63, 65));
  h.update(msg.substr(128));
  EXPECT_EQ(h.hex_digest(), obs::sha256_hex(msg));
}

// --------------------------------------------------------------- profiler

TEST(Profiler, AttributesSelfTimeAndNests) {
  obs::Context ctx;
  obs::ScopedContext scope(ctx);
  auto& prof = obs::profiler();
  prof.set_enabled(true);
  {
    obs::ProfileScope outer(obs::Component::kTcp);
    {
      obs::ProfileScope inner(obs::Component::kTls);
    }
    {
      obs::ProfileScope inner(obs::Component::kTls);
    }
  }
  const auto& paths = prof.paths();
  ASSERT_EQ(paths.size(), 2u);
  ASSERT_TRUE(paths.count("tcp"));
  ASSERT_TRUE(paths.count("tcp;tls"));
  EXPECT_EQ(paths.at("tcp").calls, 1u);
  EXPECT_EQ(paths.at("tcp;tls").calls, 2u);
  // Self-time decomposition: component totals are disjoint.
  EXPECT_GT(prof.component_self_ns(obs::Component::kTls), 0u);

  const std::string folded = prof.collapsed();
  EXPECT_NE(folded.find("tcp;tls "), std::string::npos);

  const auto counters = prof.counter_events(sim::TimePoint::from_nanos(42));
  ASSERT_EQ(counters.size(), 2u);
  for (const auto& e : counters) {
    EXPECT_EQ(e.phase, 'C');
    EXPECT_EQ(e.ts_ns, 42);
  }

  prof.reset();
  EXPECT_TRUE(prof.paths().empty());
  EXPECT_TRUE(prof.enabled());  // reset keeps the arming
}

TEST(Profiler, DisabledScopeRecordsNothing) {
  obs::Context ctx;
  obs::ScopedContext scope(ctx);
  auto& prof = obs::profiler();
  ASSERT_FALSE(prof.enabled());  // off by default
  {
    obs::ProfileScope p(obs::Component::kNet);
  }
  EXPECT_TRUE(prof.paths().empty());
  EXPECT_EQ(prof.component_self_ns(obs::Component::kNet), 0u);
}

TEST(Profiler, TrialProbesProduceComponentBreakdown) {
  obs::Context ctx;
  ctx.profiler.set_enabled(true);
  obs::ScopedContext scope(ctx);
  TrialConfig cfg = quick_config();
  cfg.seed = 77;
  const TrialResult r = run_trial(cfg);
  EXPECT_TRUE(r.page_complete);
  // The in-tree probes cover the packet path end to end.
  EXPECT_GT(ctx.profiler.component_self_ns(obs::Component::kNet), 0u);
  EXPECT_GT(ctx.profiler.component_self_ns(obs::Component::kTcp), 0u);
  EXPECT_GT(ctx.profiler.component_self_ns(obs::Component::kTls), 0u);
  EXPECT_GT(ctx.profiler.component_self_ns(obs::Component::kH2), 0u);
}

// Profiling must not perturb behaviour: identical TrialResults with the
// profiler on and off (wall time never feeds results or digests).
TEST(Profiler, DoesNotChangeTrialResults) {
  TrialConfig cfg = quick_config();
  cfg.seed = 99;
  obs::Context plain, profiled;
  profiled.profiler.set_enabled(true);
  TrialResult a, b;
  {
    obs::ScopedContext scope(plain);
    a = run_trial(cfg);
  }
  {
    obs::ScopedContext scope(profiled);
    b = run_trial(cfg);
  }
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace h2sim::experiment
