#include <gtest/gtest.h>

#include "h2/frame.hpp"

namespace h2sim::h2 {
namespace {

TEST(FrameCodec, HeaderRoundTrip) {
  Frame f;
  f.type = FrameType::kData;
  f.flags = flags::kEndStream;
  f.stream_id = 12345;
  f.payload = {9, 8, 7};
  const auto wire = serialize_frame(f);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + 3);

  FrameDecoder dec;
  dec.feed(wire);
  auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, FrameType::kData);
  EXPECT_EQ(out->flags, flags::kEndStream);
  EXPECT_EQ(out->stream_id, 12345u);
  EXPECT_EQ(out->payload, f.payload);
}

TEST(FrameCodec, ReservedBitMaskedOff) {
  Frame f;
  f.stream_id = 0x80000001u;  // high bit set
  const auto wire = serialize_frame(f);
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_EQ(dec.next()->stream_id, 1u);
}

TEST(FrameCodec, IncrementalFeed) {
  Frame f;
  f.type = FrameType::kHeaders;
  f.payload.assign(300, 0x11);
  const auto wire = serialize_frame(f);
  FrameDecoder dec;
  for (std::size_t i = 0; i < wire.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, wire.size() - i);
    dec.feed(std::span(wire.data() + i, n));
  }
  auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload.size(), 300u);
}

TEST(FrameCodec, OversizedFrameSetsError) {
  Frame f;
  f.payload.assign(20000, 1);  // > default 16384
  const auto wire = serialize_frame(f);
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.error());
}

TEST(FrameCodec, MaxFrameSizeAdjustable) {
  Frame f;
  f.payload.assign(20000, 1);
  const auto wire = serialize_frame(f);
  FrameDecoder dec;
  dec.set_max_frame_size(1 << 20);
  dec.feed(wire);
  EXPECT_TRUE(dec.next().has_value());
  EXPECT_FALSE(dec.error());
}

TEST(SettingsCodec, RoundTrip) {
  const SettingsEntry entries[] = {
      {SettingId::kInitialWindowSize, 131072},
      {SettingId::kMaxFrameSize, 16384},
      {SettingId::kEnablePush, 0},
  };
  const auto payload = encode_settings(entries);
  EXPECT_EQ(payload.size(), 18u);
  auto out = parse_settings(payload);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ((*out)[0].id, SettingId::kInitialWindowSize);
  EXPECT_EQ((*out)[0].value, 131072u);
}

TEST(SettingsCodec, RejectsBadLength) {
  std::vector<std::uint8_t> bad(7, 0);
  EXPECT_FALSE(parse_settings(bad).has_value());
}

TEST(RstCodec, RoundTrip) {
  const auto payload = encode_rst_stream(ErrorCode::kCancel);
  auto out = parse_rst_stream(payload);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, ErrorCode::kCancel);
  EXPECT_FALSE(parse_rst_stream({}).has_value());
}

TEST(WindowUpdateCodec, RoundTrip) {
  const auto payload = encode_window_update(65535);
  auto out = parse_window_update(payload);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, 65535u);
}

TEST(GoawayCodec, RoundTrip) {
  GoawayPayload g;
  g.last_stream_id = 41;
  g.error = ErrorCode::kEnhanceYourCalm;
  g.debug = "slow down";
  auto out = parse_goaway(encode_goaway(g));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->last_stream_id, 41u);
  EXPECT_EQ(out->error, ErrorCode::kEnhanceYourCalm);
  EXPECT_EQ(out->debug, "slow down");
}

TEST(PriorityCodec, RoundTrip) {
  PriorityPayload p;
  p.dependency = 3;
  p.exclusive = true;
  p.weight = 200;
  auto out = parse_priority(encode_priority(p));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->dependency, 3u);
  EXPECT_TRUE(out->exclusive);
  EXPECT_EQ(out->weight, 200);
}

TEST(PushPromiseCodec, RoundTrip) {
  const std::vector<std::uint8_t> block = {0x82, 0x86};
  auto out = parse_push_promise(encode_push_promise(2, block));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->promised_id, 2u);
  EXPECT_EQ(out->block, block);
}

TEST(Preface, MatchesRfc) {
  const auto p = client_preface();
  ASSERT_EQ(p.size(), 24u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(p.data()), 3), "PRI");
}

TEST(FrameNames, AllNamed) {
  EXPECT_STREQ(to_string(FrameType::kData), "DATA");
  EXPECT_STREQ(to_string(FrameType::kRstStream), "RST_STREAM");
  EXPECT_STREQ(to_string(ErrorCode::kFlowControlError), "FLOW_CONTROL_ERROR");
}

}  // namespace
}  // namespace h2sim::h2
