// Property-style parameterized sweeps over the protocol substrates:
// randomized inputs, invariant checks.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/dom.hpp"
#include "hpack/decoder.hpp"
#include "hpack/encoder.hpp"
#include "hpack/huffman.hpp"
#include "hpack/integer.hpp"
#include "net/topology.hpp"
#include "attack/monitor.hpp"
#include "h2/frame.hpp"
#include "sim/random.hpp"
#include "tcp/tcp_stack.hpp"
#include "tls/session.hpp"

namespace h2sim {
namespace {

// --- HPACK round-trip holds for random header lists ---

class HpackProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HpackProperty, RandomHeaderListsRoundTrip) {
  sim::Rng rng(GetParam());
  hpack::Encoder enc;
  hpack::Decoder dec;
  for (int block = 0; block < 20; ++block) {
    hpack::HeaderList headers;
    const int n = static_cast<int>(rng.uniform(12)) + 1;
    for (int i = 0; i < n; ++i) {
      std::string name, value;
      const std::size_t name_len = rng.uniform(20) + 1;
      for (std::size_t k = 0; k < name_len; ++k) {
        name.push_back(static_cast<char>('a' + rng.uniform(26)));
      }
      const std::size_t value_len = rng.uniform(60);
      for (std::size_t k = 0; k < value_len; ++k) {
        value.push_back(static_cast<char>(rng.uniform(256)));
      }
      headers.push_back({std::move(name), std::move(value)});
    }
    const auto block_bytes = enc.encode(headers);
    const auto out = dec.decode(block_bytes);
    ASSERT_TRUE(out.has_value()) << "seed " << GetParam() << " block " << block;
    EXPECT_EQ(*out, headers);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HpackProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Huffman round-trip for random byte strings ---

class HuffmanProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HuffmanProperty, RandomStringsRoundTrip) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    std::string s;
    const std::size_t len = rng.uniform(200);
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.uniform(256)));
    }
    std::string enc;
    hpack::huffman::encode(s, enc);
    EXPECT_EQ(enc.size(), hpack::huffman::encoded_size(s));
    const auto dec = hpack::huffman::decode(std::span(
        reinterpret_cast<const std::uint8_t*>(enc.data()), enc.size()));
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(*dec, s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanProperty, ::testing::Values(101, 202, 303, 404));

// --- HPACK integers round-trip across all prefixes ---

class IntegerProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntegerProperty, RandomValuesRoundTrip) {
  const int prefix = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(prefix));
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.next_u64() >> (rng.uniform(50) + 8);
    std::vector<std::uint8_t> out;
    hpack::encode_integer(v, prefix, 0, out);
    std::size_t pos = 0;
    const auto back = hpack::decode_integer(out, pos, prefix);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, out.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Prefixes, IntegerProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- DoM invariants on random wire logs ---

class DomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DomProperty, AlwaysInUnitIntervalAndZeroIffSingleRun) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    analysis::WireLog log;
    const int events = static_cast<int>(rng.uniform(60)) + 1;
    for (int i = 0; i < events; ++i) {
      analysis::ServerWireEvent ev;
      ev.stream_id = static_cast<std::uint32_t>(1 + 2 * rng.uniform(4));
      ev.is_data = true;
      ev.data_bytes = rng.uniform(3000) + 1;
      ev.object = "o" + std::to_string(ev.stream_id);
      log.add(ev);
    }
    const auto all = analysis::degree_of_multiplexing_all(log);
    for (const auto& [sid, r] : all) {
      EXPECT_GE(r.dom, 0.0);
      EXPECT_LE(r.dom, 1.0);
      EXPECT_EQ(r.dom == 0.0, r.runs <= 1) << "stream " << sid;
      EXPECT_LE(r.largest_run_bytes, r.total_bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomProperty, ::testing::Values(7, 77, 777));

// --- TCP delivers a random byte stream intact under random loss ---

struct TcpLossCase {
  std::uint64_t seed;
  double loss;
};

class TcpLossProperty : public ::testing::TestWithParam<TcpLossCase> {};

TEST_P(TcpLossProperty, StreamIntegrityUnderLoss) {
  const auto param = GetParam();
  sim::EventLoop loop;
  sim::Rng rng(param.seed);

  net::Path::Config pc;
  pc.server_side.loss_rate = param.loss;
  pc.server_side.loss_seed = param.seed;
  pc.client_side.loss_rate = param.loss / 2;
  pc.client_side.loss_seed = param.seed ^ 0xabcdef;
  net::Path path(loop, pc);

  tcp::TcpConfig cfg;
  tcp::TcpStack server(loop, rng.split(), net::Path::kServerNode, cfg,
                       [&](net::Packet&& p) { path.send_from_server(std::move(p)); });
  tcp::TcpStack client(loop, rng.split(), net::Path::kClientNode, cfg,
                       [&](net::Packet&& p) { path.send_from_client(std::move(p)); });
  path.set_server_sink([&](net::Packet&& p) { server.deliver(std::move(p)); });
  path.set_client_sink([&](net::Packet&& p) { client.deliver(std::move(p)); });

  std::vector<std::uint8_t> sent(60000);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<std::uint8_t>(rng.next_u64());
  }

  std::vector<std::uint8_t> received;
  server.listen(443, [&](tcp::TcpConnection& c) {
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_data = [&](std::span<const std::uint8_t> b) {
      received.insert(received.end(), b.begin(), b.end());
    };
    c.set_callbacks(std::move(cbs));
  });

  tcp::TcpConnection& conn = client.connect(net::Path::kServerNode, 443);
  tcp::TcpConnection::Callbacks ccb;
  ccb.on_connected = [&] { conn.send(sent); };
  conn.set_callbacks(std::move(ccb));

  loop.run(sim::TimePoint::origin() + sim::Duration::seconds(60));
  ASSERT_EQ(received.size(), sent.size());
  EXPECT_EQ(received, sent);  // exact in-order delivery despite loss
  // Retransmissions must have happened if the links actually lost several
  // packets (a couple of losses may all hit pure ACKs, which need none).
  const std::uint64_t losses = path.client_to_mb().stats().random_losses +
                               path.mb_to_server().stats().random_losses +
                               path.server_to_mb().stats().random_losses +
                               path.mb_to_client().stats().random_losses;
  if (losses > 4) {
    EXPECT_GT(conn.stats().total_retransmits() +
                  server.aggregate_stats().total_retransmits(),
              0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossGrid, TcpLossProperty,
    ::testing::Values(TcpLossCase{1, 0.0}, TcpLossCase{2, 0.005},
                      TcpLossCase{3, 0.02}, TcpLossCase{4, 0.05},
                      TcpLossCase{5, 0.02}, TcpLossCase{6, 0.05}));

// --- TLS protection round-trips arbitrary payload sizes ---

class TlsSizeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TlsSizeProperty, WriteOfAnySizeDeliversExactly) {
  sim::EventLoop loop;
  net::Path path(loop, net::Path::Config{});
  tcp::TcpConfig cfg;
  tcp::TcpStack server(loop, sim::Rng(1), net::Path::kServerNode, cfg,
                       [&](net::Packet&& p) { path.send_from_server(std::move(p)); });
  tcp::TcpStack client(loop, sim::Rng(2), net::Path::kClientNode, cfg,
                       [&](net::Packet&& p) { path.send_from_client(std::move(p)); });
  path.set_server_sink([&](net::Packet&& p) { server.deliver(std::move(p)); });
  path.set_client_sink([&](net::Packet&& p) { client.deliver(std::move(p)); });

  std::unique_ptr<tls::TlsSession> server_tls;
  std::vector<std::uint8_t> got;
  server.listen(443, [&](tcp::TcpConnection& c) {
    server_tls = std::make_unique<tls::TlsSession>(c, tls::TlsSession::Role::kServer);
    tls::TlsSession::Callbacks cbs;
    cbs.on_plaintext = [&](std::span<const std::uint8_t> b) {
      got.insert(got.end(), b.begin(), b.end());
    };
    server_tls->set_callbacks(std::move(cbs));
  });

  tcp::TcpConnection& c = client.connect(net::Path::kServerNode, 443);
  tls::TlsSession ctls(c, tls::TlsSession::Role::kClient);
  const std::size_t size = GetParam();
  std::vector<std::uint8_t> msg(size);
  for (std::size_t i = 0; i < size; ++i) msg[i] = static_cast<std::uint8_t>(i * 31);
  tls::TlsSession::Callbacks cbs;
  cbs.on_established = [&] { ctls.write(msg); };
  ctls.set_callbacks(std::move(cbs));

  loop.run(sim::TimePoint::origin() + sim::Duration::seconds(30));
  EXPECT_EQ(got, msg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlsSizeProperty,
                         ::testing::Values(1, 2, 100, 1024, 16384, 16385, 40000,
                                           100000));

// --- Frame decoder never crashes or loops on random garbage ---

class FrameFuzzProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrameFuzzProperty, RandomBytesNeverCrash) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    h2::FrameDecoder dec;
    dec.set_max_frame_size(1 << 14);
    const std::size_t len = rng.uniform(4000);
    std::vector<std::uint8_t> junk(len);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    dec.feed(junk);
    int guard = 0;
    while (dec.next().has_value()) {
      ASSERT_LT(++guard, 10000);  // must terminate
    }
  }
}

TEST_P(FrameFuzzProperty, HpackDecoderRejectsOrParsesGarbage) {
  sim::Rng rng(GetParam());
  hpack::Decoder dec;
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::uint8_t> junk(rng.uniform(120));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    // Must not crash; result is either a header list or a clean failure.
    (void)dec.decode(junk);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzzProperty, ::testing::Values(11, 22, 33));

// --- Monitor reconstructs identical records under any packetization ---

class MonitorSegmentationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonitorSegmentationProperty, RecordStreamInvariantUnderPacketization) {
  sim::Rng rng(GetParam());

  // Build a reference byte stream of records with known sizes.
  std::vector<std::size_t> sizes;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 25; ++i) {
    const std::size_t body = 20 + rng.uniform(1500);
    sizes.push_back(body);
    tls::RecordHeader h;
    h.type = tls::ContentType::kApplicationData;
    h.length = static_cast<std::uint16_t>(body);
    std::vector<std::uint8_t> bytes(body, static_cast<std::uint8_t>(i));
    const auto wire = tls::serialize_record(h, bytes);
    stream.insert(stream.end(), wire.begin(), wire.end());
  }

  // Deliver the stream to the monitor in random-sized TCP segments.
  attack::TrafficMonitor monitor;
  net::Packet syn;
  syn.src = 1;
  syn.dst = 2;
  syn.tcp.src_port = 50000;
  syn.tcp.dst_port = 443;
  syn.tcp.seq = 1000;
  syn.tcp.flags = net::tcpflag::kSyn;
  monitor.observe(syn, net::Direction::kClientToServer, sim::TimePoint::origin());

  std::size_t pos = 0;
  std::uint32_t seq = 1001;
  while (pos < stream.size()) {
    const std::size_t n = std::min<std::size_t>(1 + rng.uniform(1460),
                                                stream.size() - pos);
    net::Packet p;
    p.id = 100 + pos;
    p.src = 1;
    p.dst = 2;
    p.tcp.src_port = 50000;
    p.tcp.dst_port = 443;
    p.tcp.seq = seq;
    p.tcp.flags = net::tcpflag::kAck;
    p.payload.assign(stream.begin() + static_cast<std::ptrdiff_t>(pos),
                     stream.begin() + static_cast<std::ptrdiff_t>(pos + n));
    monitor.observe(p, net::Direction::kClientToServer, sim::TimePoint::origin());
    pos += n;
    seq += static_cast<std::uint32_t>(n);
  }

  const auto& records = monitor.trace().records();
  ASSERT_EQ(records.size(), sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(records[i].body_len, sizes[i]) << "record " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorSegmentationProperty,
                         ::testing::Values(41, 42, 43, 44));

}  // namespace
}  // namespace h2sim
