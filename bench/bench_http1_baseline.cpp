// The motivating contrast from the paper's introduction: HTTP/1.x object
// transmissions are strictly sequential, so a purely passive eavesdropper
// recovers every object size — this is the attack surface the HTTP/2
// multiplexing privacy schemes (and then this paper's adversary) respond to.
//
// Loads the isidewith object set over our HTTP/1.1 substrate and runs the
// boundary detector on the observed records.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "analysis/boundary.hpp"
#include "analysis/predictor.hpp"
#include "attack/monitor.hpp"
#include "experiment/table_printer.hpp"
#include "http/http1.hpp"
#include "net/topology.hpp"
#include "tcp/tcp_stack.hpp"
#include "tls/session.hpp"
#include "web/website.hpp"

using namespace h2sim;

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 20;
  const web::Website site = web::make_isidewith_site();

  int emblem_hits = 0, emblem_total = 0, order_hits = 0;
  for (int t = 0; t < trials; ++t) {
    sim::EventLoop loop;
    sim::Rng rng(5000 + static_cast<std::uint64_t>(t));

    net::Path path(loop, net::Path::Config{});
    tcp::TcpConfig tcfg;
    tcp::TcpStack server_stack(loop, rng.split(), net::Path::kServerNode, tcfg,
                               [&](net::Packet&& p) { path.send_from_server(std::move(p)); });
    tcp::TcpStack client_stack(loop, rng.split(), net::Path::kClientNode, tcfg,
                               [&](net::Packet&& p) { path.send_from_client(std::move(p)); });
    path.set_server_sink([&](net::Packet&& p) { server_stack.deliver(std::move(p)); });
    path.set_client_sink([&](net::Packet&& p) { client_stack.deliver(std::move(p)); });

    attack::TrafficMonitor monitor;
    path.middlebox().set_tap(
        [&](const net::Packet& p, net::Direction d, sim::TimePoint now) {
          monitor.observe(p, d, now);
        });

    std::unique_ptr<tls::TlsSession> server_tls;
    std::unique_ptr<http::Http1ServerConnection> server;
    server_stack.listen(443, [&](tcp::TcpConnection& c) {
      server_tls = std::make_unique<tls::TlsSession>(c, tls::TlsSession::Role::kServer);
      server = std::make_unique<http::Http1ServerConnection>(
          *server_tls, [&](const http::Request& req) {
            http::Response resp;
            const web::WebObject* obj = site.find(req.path);
            std::vector<std::uint8_t> body(obj ? obj->size : 0, 0x42);
            resp.status = obj ? 200 : 404;
            resp.content_type = obj ? obj->content_type : "text/plain";
            return std::make_pair(resp, std::move(body));
          });
    });

    tcp::TcpConnection& conn = client_stack.connect(net::Path::kServerNode, 443);
    tls::TlsSession client_tls(conn, tls::TlsSession::Role::kClient);
    http::Http1ClientConnection client(client_tls);

    // The user's survey result: the image request order is the ranking.
    std::vector<int> perm = {0, 1, 2, 3, 4, 5, 6, 7};
    sim::Rng perm_rng(9000 + static_cast<std::uint64_t>(t));
    perm_rng.shuffle(perm);

    int completed = 0;
    for (const int party : perm) {
      http::Request req;
      req.authority = "www.isidewith.com";
      req.path = site.emblem_paths[static_cast<std::size_t>(party)];
      client.send_request(req, [&](const http::Response&, std::vector<std::uint8_t>) {
        ++completed;
      });
    }
    loop.run(sim::TimePoint::origin() + sim::Duration::seconds(30));
    if (completed != 8) continue;

    analysis::SizeIdentityDb db;
    for (int k = 0; k < 8; ++k) {
      db.add("party" + std::to_string(k),
             site.find(site.emblem_paths[static_cast<std::size_t>(k)])->size);
    }
    const auto detections = analysis::detect_objects(monitor.trace());
    const auto pred = analysis::predict_sequence(detections, db);

    for (int j = 0; j < 8; ++j) {
      ++emblem_total;
      const std::string want = "party" + std::to_string(perm[static_cast<std::size_t>(j)]);
      bool found = false;
      for (const auto& l : pred.ranking) {
        if (l == want) found = true;
      }
      if (found) ++emblem_hits;
      if (static_cast<std::size_t>(j) < pred.ranking.size() &&
          pred.ranking[static_cast<std::size_t>(j)] == want) {
        ++order_hits;
      }
    }
  }

  experiment::TablePrinter table({"metric", "measured"});
  table.add_row({"emblem sizes recovered",
                 experiment::TablePrinter::pct(100.0 * emblem_hits / emblem_total, 0)});
  table.add_row({"ranking positions correct",
                 experiment::TablePrinter::pct(100.0 * order_hits / emblem_total, 0)});
  table.print("HTTP/1.1 baseline: passive eavesdropper, no manipulation (" +
              std::to_string(trials) + " downloads)");
  std::printf("\npaper's premise: on HTTP/1.x the size side-channel needs no\n"
              "active adversary at all — sequential transmission exposes every\n"
              "object to the delimiter heuristic.\n");
  return 0;
}
