// Reproduces Table I: effect of per-request jitter (spacing 0/25/50/100 ms)
// on (a) the share of downloads where the object of interest (the result
// HTML, the 6th GET) is not multiplexed and (b) the increase in wire
// retransmissions relative to the no-jitter baseline.
//
// Two adversary variants are reported:
//  - "faithful": the paper's controller. Client TCP fast-retransmits of held
//    requests race past the holds, bundling several GETs into one packet and
//    re-multiplexing the objects — the storm behind the paper's plateau at
//    54 %.
//  - "refined": additionally drops TCP retransmissions of requests still
//    being held (the paper's §VII "trigger the packet drops accurately"
//    improvement), which keeps serialization effective at high jitter.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"
#include "sweep_util.hpp"

namespace {

struct Series {
  std::vector<double> nomux_pct;
  std::vector<double> retrans_mean;
  std::vector<int> broken;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace h2sim;
  using experiment::TablePrinter;
  const int trials = bench::trials_arg(argc, argv, 100);
  bench::SweepSession sweep("bench_table1_jitter");

  const int jitters_ms[] = {0, 25, 50, 100};
  const char* paper_nomux[] = {"32%", "46%", "54%", "54%"};
  const char* paper_retrans[] = {"baseline", "+33%", "+130%", "+194%"};

  Series faithful, refined;
  for (const bool suppress : {false, true}) {
    Series& out = suppress ? refined : faithful;
    for (const int jitter : jitters_ms) {
      experiment::TrialConfig proto;
      if (jitter == 0) {
        proto.attack = experiment::TrialConfig::default_attack_off();
      } else {
        proto.attack = experiment::jitter_only_config(sim::Duration::millis(jitter));
        proto.attack.suppress_request_retransmissions = suppress;
      }
      const auto cfgs = bench::seed_sweep(proto, 42000, trials);
      const auto results = sweep.run(
          (suppress ? "refined jitter=" : "faithful jitter=") +
              std::to_string(jitter) + "ms",
          cfgs);

      std::vector<bool> nomux;
      std::vector<double> retrans;
      int broken = 0;
      for (const auto& r : results) {
        if (r.connection_broken || !r.page_complete) {
          ++broken;
          continue;  // the paper counts completed downloads
        }
        nomux.push_back(r.interest[0].any_copy_serialized);
        retrans.push_back(static_cast<double>(r.wire_retransmissions()));
      }
      out.nomux_pct.push_back(analysis::percent_true(nomux));
      out.retrans_mean.push_back(analysis::mean(retrans));
      out.broken.push_back(broken);
    }
  }

  TablePrinter table({"jitter", "not muxed (paper)", "not muxed (faithful)",
                      "not muxed (refined)", "retrans (paper)",
                      "retrans incr (faithful)", "retrans incr (refined)",
                      "broken f/r"});
  for (std::size_t i = 0; i < 4; ++i) {
    auto incr = [&](const Series& s) {
      if (i == 0 || s.retrans_mean[0] <= 0) return std::string("baseline");
      return "+" + TablePrinter::pct(100.0 * (s.retrans_mean[i] - s.retrans_mean[0]) /
                                         s.retrans_mean[0],
                                     0);
    };
    table.add_row({std::to_string(jitters_ms[i]) + " ms", paper_nomux[i],
                   TablePrinter::pct(faithful.nomux_pct[i], 0),
                   TablePrinter::pct(refined.nomux_pct[i], 0), paper_retrans[i],
                   incr(faithful), incr(refined),
                   std::to_string(faithful.broken[i]) + "/" +
                       std::to_string(refined.broken[i])});
  }
  table.print("Table I: effect of jitter on HTTP/2 multiplexing (" +
              std::to_string(trials) + " downloads per cell)");

  std::printf("\nabsolute mean wire retransmissions per download:\n");
  for (std::size_t i = 0; i < 4; ++i) {
    std::printf("  %3d ms: faithful %.1f, refined %.1f\n", jitters_ms[i],
                faithful.retrans_mean[i], refined.retrans_mean[i]);
  }
  return 0;
}
