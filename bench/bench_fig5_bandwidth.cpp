// Reproduces Figure 5: with 50 ms request spacing active, sweep the
// gateway's bandwidth limit over 1000/800/500/100/1 Mbps and measure
//  (a) wire retransmissions (paper: monotonically decreasing — solid line),
//  (b) share of downloads with the object of interest non-multiplexed
//      (paper: rises until 800 Mbps, then declines — dashed line), split
//      into successes via the actual object vs a retransmitted copy (the
//      paper's §IV-C observation).

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"
#include "sweep_util.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;
  using experiment::TablePrinter;
  const int trials = bench::trials_arg(argc, argv, 100);
  bench::SweepSession sweep("bench_fig5_bandwidth");

  // The paper's sweep plus one point past its 1 Mbps floor ("it was not
  // possible to reduce the bandwidth beyond 1 Mbps — broken connection").
  const double mbps[] = {1000, 800, 500, 100, 1, 0.5};

  TablePrinter table({"bandwidth", "retransmissions (mean)", "not muxed (any copy)",
                      "via actual object", "via retransmitted copy", "broken"});
  for (const double bw : mbps) {
    experiment::TrialConfig proto;
    proto.attack = experiment::jitter_throttle_config(sim::Duration::millis(50),
                                                      bw * 1e6);
    // The paper's storm-prone controller: retransmitted copies are part of
    // the Figure 5 story.
    proto.attack.suppress_request_retransmissions = false;
    char label[48];
    std::snprintf(label, sizeof(label), "bandwidth=%gMbps", bw);
    const auto results =
        sweep.run(label, bench::seed_sweep(proto, 50000, trials));

    std::vector<double> retrans;
    std::vector<bool> nomux_any, nomux_primary, nomux_copy_only;
    int broken = 0;
    for (const auto& r : results) {
      if (!r.page_complete) {
        ++broken;
        continue;
      }
      retrans.push_back(static_cast<double>(r.wire_retransmissions()));
      const auto& html = r.interest[0];
      nomux_any.push_back(html.any_copy_serialized);
      nomux_primary.push_back(html.primary_serialized);
      nomux_copy_only.push_back(html.any_copy_serialized && !html.primary_serialized);
    }
    char row[32];
    std::snprintf(row, sizeof(row), "%g Mbps", bw);
    table.add_row({row, TablePrinter::fmt(analysis::mean(retrans), 1),
                   TablePrinter::pct(analysis::percent_true(nomux_any), 0),
                   TablePrinter::pct(analysis::percent_true(nomux_primary), 0),
                   TablePrinter::pct(analysis::percent_true(nomux_copy_only), 0),
                   std::to_string(broken)});
  }
  table.print("Figure 5: effect of bandwidth limitation (jitter 50 ms, " +
              std::to_string(trials) + " downloads per point)");
  std::printf("\npaper shape: retransmissions fall monotonically as bandwidth\n"
              "drops; success peaks at 800 Mbps and declines at lower rates,\n"
              "with the high-bandwidth successes partly due to retransmitted\n"
              "copies rather than the actual object.\n");
  return 0;
}
