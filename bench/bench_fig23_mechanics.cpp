// Reproduces the mechanics of Figures 2 and 3: two back-to-back GETs cause
// the server's worker threads to enqueue object segments concurrently and
// the scheduler to interleave them on the wire (Figure 3); spacing the
// second request by d eliminates the interleaving (Figure 2b). We sweep the
// request spacing and report the degree of multiplexing of O1.

#include <cstdio>
#include <cstdlib>

#include "analysis/dom.hpp"
#include "experiment/table_printer.hpp"
#include "h2/client.hpp"
#include "h2/server.hpp"
#include "net/topology.hpp"
#include "tcp/tcp_stack.hpp"
#include "tls/session.hpp"
#include "web/browser.hpp"
#include "web/server_app.hpp"
#include "web/website.hpp"

using namespace h2sim;

namespace {

struct CaseResult {
  double dom_o1 = 0, dom_o2 = 0;
  std::size_t o1_runs = 0;
};

CaseResult run_case(double gap_ms, h2::SchedulerKind scheduler) {
  sim::EventLoop loop;
  sim::Rng rng(11);
  net::Path::Config pc;
  net::Path path(loop, pc);

  tcp::TcpConfig tcfg;
  tcp::TcpStack server_stack(loop, rng.split(), net::Path::kServerNode, tcfg,
                             [&](net::Packet&& p) { path.send_from_server(std::move(p)); });
  tcp::TcpStack client_stack(loop, rng.split(), net::Path::kClientNode, tcfg,
                             [&](net::Packet&& p) { path.send_from_client(std::move(p)); });
  path.set_server_sink([&](net::Packet&& p) { server_stack.deliver(std::move(p)); });
  path.set_client_sink([&](net::Packet&& p) { client_stack.deliver(std::move(p)); });

  web::Website site = web::make_two_object_site(40000, 40000);
  site.schedule[1].gap_from_prev = sim::Duration::millis_f(gap_ms);
  for (auto& s : site.schedule) s.noise_lo = s.noise_hi = 1.0;

  analysis::WireLog wire_log;
  struct Srv {
    std::unique_ptr<tls::TlsSession> tls;
    std::unique_ptr<h2::ServerConnection> conn;
    std::unique_ptr<web::ServerApp> app;
  };
  std::vector<std::unique_ptr<Srv>> srv;
  h2::ConnectionConfig scfg;
  scfg.scheduler = scheduler;
  scfg.data_chunk_size = 1024;
  web::ServerAppConfig app_cfg;
  app_cfg.speed_factor_lo = app_cfg.speed_factor_hi = 1.0;
  app_cfg.serial_workers = scheduler == h2::SchedulerKind::kSequential;

  server_stack.listen(443, [&](tcp::TcpConnection& c) {
    auto s = std::make_unique<Srv>();
    s->tls = std::make_unique<tls::TlsSession>(c, tls::TlsSession::Role::kServer);
    s->conn = std::make_unique<h2::ServerConnection>(loop, *s->tls, scfg, rng.split());
    s->app = std::make_unique<web::ServerApp>(loop, site, *s->conn, rng.split(), app_cfg);
    auto* app = s->app.get();
    s->conn->set_frame_tap([app, &wire_log](const h2::Frame& f, sim::TimePoint t) {
      analysis::ServerWireEvent ev;
      ev.time = t;
      ev.stream_id = f.stream_id;
      ev.is_data = f.type == h2::FrameType::kData;
      ev.data_bytes = ev.is_data ? f.payload.size() : 0;
      ev.end_stream = ev.is_data && f.has_flag(h2::flags::kEndStream);
      auto it = app->stream_objects().find(f.stream_id);
      ev.object = it != app->stream_objects().end() ? it->second : "";
      wire_log.add(std::move(ev));
    });
    srv.push_back(std::move(s));
  });

  tcp::TcpConnection& ct = client_stack.connect(net::Path::kServerNode, 443);
  tls::TlsSession ctls(ct, tls::TlsSession::Role::kClient);
  h2::ClientConnection cc(loop, ctls, h2::ConnectionConfig{}, rng.split());
  web::Browser browser(loop, cc, site, {0, 1, 2, 3, 4, 5, 6, 7}, rng.split(), {});
  browser.start();
  loop.run(sim::TimePoint::origin() + sim::Duration::seconds(30));

  CaseResult r;
  const auto all = analysis::degree_of_multiplexing_all(wire_log);
  const analysis::ObjectDom d1 = analysis::object_dom(wire_log, "O1");
  const analysis::ObjectDom d2 = analysis::object_dom(wire_log, "O2");
  r.dom_o1 = d1.primary_dom;
  r.dom_o2 = d2.primary_dom;
  if (!d1.copies.empty()) {
    r.o1_runs = analysis::degree_of_multiplexing(wire_log, d1.copies[0]).runs;
  }
  return r;
}

}  // namespace

int main() {
  using experiment::TablePrinter;
  TablePrinter table({"request spacing d", "scheduler", "DoM(O1)", "DoM(O2)",
                      "O1 wire runs"});
  const double gaps[] = {0.5, 5, 10, 20, 40, 80};
  for (const double g : gaps) {
    const CaseResult r = run_case(g, h2::SchedulerKind::kRoundRobin);
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f ms", g);
    table.add_row({label, "round-robin", TablePrinter::pct(r.dom_o1 * 100, 1),
                   TablePrinter::pct(r.dom_o2 * 100, 1), std::to_string(r.o1_runs)});
  }
  // The "multiplexing disabled" server configuration the paper mentions in
  // Section V: sequential scheduling serializes regardless of spacing.
  const CaseResult seq = run_case(0.5, h2::SchedulerKind::kSequential);
  table.add_row({"0.5 ms", "sequential", TablePrinter::pct(seq.dom_o1 * 100, 1),
                 TablePrinter::pct(seq.dom_o2 * 100, 1), std::to_string(seq.o1_runs)});
  table.print("Figures 2-3: inter-request spacing vs multiplexing (two 40 KB objects)");
  return 0;
}
