#pragma once

// Shared sweep machinery for the reproduction benches: config-list builders,
// the parallel run_trials front-end, and the BENCH_sweep.json perf record.
// Each bench reduces to (a) building TrialConfig lists, (b) calling
// SweepSession::run per sweep point, and (c) aggregating the returned
// results — the trial loop, threading, timing, and perf bookkeeping live
// here once.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "experiment/harness.hpp"
#include "experiment/runner.hpp"
#include "experiment/sink.hpp"
#include "obs/context.hpp"

namespace h2sim::bench {

/// Common CLI convention: argv[1] overrides the trials-per-point default.
inline int trials_arg(int argc, char** argv, int def) {
  return argc > 1 ? std::atoi(argv[1]) : def;
}

/// `n` copies of `proto` with seed = seed_base + t. Inspector closures on
/// the prototype are copied into every config; only install closures that
/// write per-trial slots (or synchronize) — they run on worker threads.
inline std::vector<experiment::TrialConfig> seed_sweep(
    const experiment::TrialConfig& proto, std::uint64_t seed_base, int n) {
  std::vector<experiment::TrialConfig> cfgs(static_cast<std::size_t>(n), proto);
  for (int t = 0; t < n; ++t) {
    cfgs[static_cast<std::size_t>(t)].seed =
        seed_base + static_cast<std::uint64_t>(t);
  }
  return cfgs;
}

/// One timed sweep point, as recorded into BENCH_sweep.json.
struct SweepEntry {
  std::string label;
  std::size_t trials = 0;
  int jobs = 1;
  double wall_seconds = 0.0;
  double trials_per_sec = 0.0;
  /// > 0 only for run_with_speedup sweeps: wall(1 thread) / wall(N threads).
  double speedup_vs_1thread = 0.0;
  /// Allocation accounting summed over the sweep's TrialResults: simulator
  /// events executed, middlebox-forwarded packets, and hot-path heap
  /// allocations (slab growth + oversized callbacks + heap-array growth +
  /// payload-pool misses). The per-event/per-packet ratios are what
  /// bench/check_regression.py gates against bench/baseline.json.
  std::uint64_t events = 0;
  std::uint64_t packets = 0;
  std::uint64_t hot_path_allocs = 0;
  double allocs_per_event = 0.0;
  double allocs_per_packet = 0.0;
  /// Timing-wheel scheduler work summed over the sweep's TrialResults:
  /// occupancy-bitmap probes, bucket-to-bucket cascade hops, and live-event
  /// cancellations. cascades_per_event is hardware-independent (a pure
  /// function of the workload's timer pattern), so check_regression.py can
  /// gate it the same way as allocs_per_event.
  std::uint64_t sched_slots_scanned = 0;
  std::uint64_t sched_cascades = 0;
  std::uint64_t sched_cancels = 0;
  double cascades_per_event = 0.0;
  /// Mean per-trial world-construction wall time (the residual setup that
  /// sweep-level scenario templates could not amortize). Wall-clock, so
  /// reported for trend-watching but never gated.
  double setup_seconds_mean = 0.0;
  /// > 0 only for run_streamed sweeps: trials/s through the campaign path
  /// (AggregatingSink, collect_results=false — no TrialResult vector).
  /// check_regression.py gates it with the same floor rule as
  /// trials_per_sec; a baseline entry that predates the field leaves it
  /// ungated until the baseline is refreshed (--strict-new refuses that).
  double campaign_trials_per_sec = 0.0;
};

/// Owns a bench run's perf record: every run()/run_with_speedup() appends an
/// entry, and the destructor writes BENCH_sweep.json (cwd) so CI can track
/// trials/sec and parallel speedup across PRs.
class SweepSession {
 public:
  explicit SweepSession(std::string bench_name)
      : name_(std::move(bench_name)), jobs_(experiment::resolve_jobs(0)) {}

  SweepSession(const SweepSession&) = delete;
  SweepSession& operator=(const SweepSession&) = delete;

  ~SweepSession() { write_json(); }

  int jobs() const { return jobs_; }

  /// Runs the configs on the session's worker count and records the timing.
  std::vector<experiment::TrialResult> run(
      const std::string& label, std::span<const experiment::TrialConfig> cfgs,
      experiment::RunOptions opts = {}) {
    opts.jobs = jobs_;
    return timed(label, cfgs, opts, /*speedup=*/0.0);
  }

  /// Runs the configs twice — single-threaded, then on the session's worker
  /// count — and records the measured speedup. The parallel results are
  /// returned; a mismatch against the sequential results (which the
  /// determinism guarantee forbids) is reported on stderr and in the JSON.
  std::vector<experiment::TrialResult> run_with_speedup(
      const std::string& label,
      std::span<const experiment::TrialConfig> cfgs) {
    experiment::RunOptions seq;
    seq.jobs = 1;
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<experiment::TrialResult> sequential =
        experiment::run_trials(cfgs, seq);
    const double wall_1 = seconds_since(t0);
    if (jobs_ <= 1) {
      record(label, sequential, 1, wall_1, 1.0);
      return sequential;
    }
    experiment::RunOptions par;
    par.jobs = jobs_;
    const auto t1 = std::chrono::steady_clock::now();
    std::vector<experiment::TrialResult> parallel =
        experiment::run_trials(cfgs, par);
    const double wall_n = seconds_since(t1);
    deterministic_ = deterministic_ && parallel == sequential;
    if (parallel != sequential) {
      std::fprintf(stderr,
                   "[sweep] %s: DETERMINISM VIOLATION — parallel results "
                   "differ from sequential\n",
                   label.c_str());
    }
    record(label, parallel, jobs_, wall_n, wall_n > 0 ? wall_1 / wall_n : 0.0);
    return parallel;
  }

  /// Runs the configs through an AggregatingSink with collect_results=false —
  /// the bounded-memory streaming path the campaign driver uses (no
  /// TrialResult vector is materialized) — and records the throughput as the
  /// entry's campaign_trials_per_sec. Returns the final aggregate NDJSON so
  /// callers can print it or cross-check against an in-memory reduction.
  /// events/packets/alloc counters stay zero for streamed entries: there is
  /// deliberately no result vector to sum them from, and the collected
  /// sweeps above already gate those ratios on the same workload.
  std::string run_streamed(const std::string& label,
                           std::span<const experiment::TrialConfig> cfgs,
                           experiment::AggregatingSink::Labeler labeler) {
    experiment::AggregatingSink sink(std::move(labeler));
    experiment::RunOptions opts;
    opts.jobs = jobs_;
    opts.sink = &sink;
    opts.collect_results = false;
    const auto t0 = std::chrono::steady_clock::now();
    experiment::run_trials(cfgs, opts);
    const double wall = seconds_since(t0);
    SweepEntry e;
    e.label = label;
    e.trials = cfgs.size();
    e.jobs = jobs_;
    e.wall_seconds = wall;
    e.campaign_trials_per_sec =
        wall > 0 ? static_cast<double>(cfgs.size()) / wall : 0.0;
    e.setup_seconds_mean =
        obs::metrics().gauge_value("experiment.setup_seconds_mean");
    std::fprintf(stderr,
                 "[sweep] %s: %zu trials in %.2fs (%.1f campaign trials/s, "
                 "%d jobs, streamed)\n",
                 label.c_str(), e.trials, wall, e.campaign_trials_per_sec,
                 jobs_);
    entries_.push_back(std::move(e));
    return sink.table().ndjson();
  }

 private:
  static double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }

  std::vector<experiment::TrialResult> timed(
      const std::string& label, std::span<const experiment::TrialConfig> cfgs,
      const experiment::RunOptions& opts, double speedup) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<experiment::TrialResult> results =
        experiment::run_trials(cfgs, opts);
    record(label, results, opts.jobs > 0 ? opts.jobs : jobs_,
           seconds_since(t0), speedup);
    return results;
  }

  void record(const std::string& label,
              const std::vector<experiment::TrialResult>& results, int jobs,
              double wall, double speedup) {
    SweepEntry e;
    e.label = label;
    e.trials = results.size();
    e.jobs = jobs;
    e.wall_seconds = wall;
    e.trials_per_sec =
        wall > 0 ? static_cast<double>(results.size()) / wall : 0.0;
    e.speedup_vs_1thread = speedup;
    for (const experiment::TrialResult& r : results) {
      e.events += r.sim_events_executed;
      e.packets += r.packets_forwarded;
      e.hot_path_allocs += r.sim_hot_path_allocs;
      e.sched_slots_scanned += r.sim_sched_slots_scanned;
      e.sched_cascades += r.sim_sched_cascades;
      e.sched_cancels += r.sim_sched_cancels;
    }
    e.allocs_per_event =
        e.events ? static_cast<double>(e.hot_path_allocs) / static_cast<double>(e.events) : 0.0;
    e.allocs_per_packet =
        e.packets ? static_cast<double>(e.hot_path_allocs) / static_cast<double>(e.packets) : 0.0;
    e.cascades_per_event =
        e.events ? static_cast<double>(e.sched_cascades) / static_cast<double>(e.events) : 0.0;
    // run_trials records the sweep's mean setup time in the caller context.
    e.setup_seconds_mean =
        obs::metrics().gauge_value("experiment.setup_seconds_mean");
    std::fprintf(stderr,
                 "[sweep] %s: %zu trials in %.2fs (%.1f trials/s, %d jobs, "
                 "%.4f allocs/event, %.4f cascades/event, %.1fms setup/trial)\n",
                 label.c_str(), e.trials, wall, e.trials_per_sec, jobs,
                 e.allocs_per_event, e.cascades_per_event,
                 e.setup_seconds_mean * 1e3);
    entries_.push_back(std::move(e));
  }

  static void append_escaped(std::string& out, const std::string& s) {
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
  }

  void write_json() const {
    std::string out = "{\n";
    out += "  \"bench\": \"";
    append_escaped(out, name_);
    out += "\",\n";
    out += "  \"jobs\": " + std::to_string(jobs_) + ",\n";
    out += "  \"deterministic\": ";
    out += deterministic_ ? "true" : "false";
    out += ",\n";
    std::size_t total_trials = 0;
    double total_wall = 0.0;
    out += "  \"sweeps\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const SweepEntry& e = entries_[i];
      total_trials += e.trials;
      total_wall += e.wall_seconds;
      char buf[512];
      out += i ? ",\n    " : "\n    ";
      out += "{\"label\": \"";
      append_escaped(out, e.label);
      std::snprintf(buf, sizeof(buf),
                    "\", \"trials\": %zu, \"jobs\": %d, \"wall_seconds\": %.6f, "
                    "\"trials_per_sec\": %.3f, \"speedup_vs_1thread\": %.3f, "
                    "\"events\": %llu, \"packets\": %llu, "
                    "\"hot_path_allocs\": %llu, \"allocs_per_event\": %.6f, "
                    "\"allocs_per_packet\": %.6f, "
                    "\"sched_slots_scanned\": %llu, \"sched_cascades\": %llu, "
                    "\"sched_cancels\": %llu, \"cascades_per_event\": %.6f, "
                    "\"setup_seconds_mean\": %.9f, "
                    "\"campaign_trials_per_sec\": %.3f}",
                    e.trials, e.jobs, e.wall_seconds, e.trials_per_sec,
                    e.speedup_vs_1thread,
                    static_cast<unsigned long long>(e.events),
                    static_cast<unsigned long long>(e.packets),
                    static_cast<unsigned long long>(e.hot_path_allocs),
                    e.allocs_per_event, e.allocs_per_packet,
                    static_cast<unsigned long long>(e.sched_slots_scanned),
                    static_cast<unsigned long long>(e.sched_cascades),
                    static_cast<unsigned long long>(e.sched_cancels),
                    e.cascades_per_event, e.setup_seconds_mean,
                    e.campaign_trials_per_sec);
      out += buf;
    }
    out += entries_.empty() ? "],\n" : "\n  ],\n";
    out += "  \"total_trials\": " + std::to_string(total_trials) + ",\n";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", total_wall);
    out += std::string("  \"total_wall_seconds\": ") + buf + "\n}\n";
    FILE* f = std::fopen("BENCH_sweep.json", "w");
    if (!f) {
      std::fprintf(stderr, "[sweep] cannot write BENCH_sweep.json\n");
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
  }

  std::string name_;
  int jobs_;
  bool deterministic_ = true;
  std::vector<SweepEntry> entries_;
};

}  // namespace h2sim::bench
