// Substrate microbenchmarks (google-benchmark): HPACK codec, Huffman coding,
// HTTP/2 frame codec, TLS record protection, and raw simulator event
// throughput. These quantify the cost of the building blocks the
// reproduction's Monte-Carlo trials lean on.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "h2/frame.hpp"
#include "hpack/decoder.hpp"
#include "hpack/encoder.hpp"
#include "hpack/huffman.hpp"
#include "net/link.hpp"
#include "net/middlebox.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"
#include "tls/record.hpp"

// Process-wide heap allocation counter. The steady-state benches below use
// delta snapshots around the measured region to prove the simulator hot path
// is allocation-free once warmed; other benches ignore it.
//
// The replacement new/delete pair below is consistently malloc/free-based,
// but GCC's -Wmismatched-new-delete cannot see that when it inlines the
// delete into call sites and assumes the pointer came from the default new.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

std::atomic<std::uint64_t> g_heap_allocs{0};

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t n, std::align_val_t al) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace h2sim;

hpack::HeaderList request_headers() {
  return {
      {":method", "GET"},
      {":scheme", "https"},
      {":authority", "www.isidewith.com"},
      {":path", "/img/party_3.png"},
      {"user-agent", "Mozilla/5.0 (X11; Linux x86_64; rv:74.0) Gecko Firefox/74.0"},
      {"accept", "text/html,application/xhtml+xml,*/*;q=0.8"},
      {"cookie", "sessionid=a1b2c3d4e5f6a7b8"},
  };
}

void BM_HpackEncode(benchmark::State& state) {
  hpack::Encoder enc;
  const auto headers = request_headers();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(headers));
  }
}
BENCHMARK(BM_HpackEncode);

void BM_HpackRoundTrip(benchmark::State& state) {
  hpack::Encoder enc;
  hpack::Decoder dec;
  const auto headers = request_headers();
  for (auto _ : state) {
    const auto block = enc.encode(headers);
    benchmark::DoNotOptimize(dec.decode(block));
  }
}
BENCHMARK(BM_HpackRoundTrip);

void BM_HuffmanEncode(benchmark::State& state) {
  const std::string input = "www.isidewith.com/results/2020-presidential-quiz";
  for (auto _ : state) {
    std::string out;
    hpack::huffman::encode(input, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * input.size()));
}
BENCHMARK(BM_HuffmanEncode);

void BM_HuffmanDecode(benchmark::State& state) {
  const std::string input = "www.isidewith.com/results/2020-presidential-quiz";
  std::string enc;
  hpack::huffman::encode(input, enc);
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(enc.data()), enc.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(hpack::huffman::decode(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * enc.size()));
}
BENCHMARK(BM_HuffmanDecode);

void BM_FrameRoundTrip(benchmark::State& state) {
  h2::Frame f;
  f.type = h2::FrameType::kData;
  f.stream_id = 5;
  f.payload.assign(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    const auto wire = h2::serialize_frame(f);
    h2::FrameDecoder dec;
    dec.feed(wire);
    benchmark::DoNotOptimize(dec.next());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FrameRoundTrip)->Arg(1024)->Arg(16384);

void BM_RecordParse(benchmark::State& state) {
  std::vector<std::uint8_t> body(static_cast<std::size_t>(state.range(0)), 0x42);
  tls::RecordHeader h;
  h.length = static_cast<std::uint16_t>(body.size());
  const auto wire = tls::serialize_record(h, body);
  for (auto _ : state) {
    tls::RecordParser p;
    p.feed(wire);
    benchmark::DoNotOptimize(p.next());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecordParse)->Arg(1049);

void BM_EventLoopThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_after(sim::Duration::micros(i), [&fired] { ++fired; });
    }
    loop.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopThroughput);

// Steady-state allocation proof for the event loop: after one warm-up round
// has grown the slab and the heap array, scheduling and running events must
// not touch the heap at all. Reported as the `allocs_per_event` counter —
// the acceptance bar is exactly 0.
void BM_EventLoopSteadyState(benchmark::State& state) {
  sim::EventLoop loop;
  constexpr int kEvents = 1000;
  int fired = 0;
  for (int i = 0; i < kEvents; ++i) {
    loop.schedule_after(sim::Duration::micros(i), [&fired] { ++fired; });
  }
  loop.run();

  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < kEvents; ++i) {
      loop.schedule_after(sim::Duration::micros(i), [&fired] { ++fired; });
    }
    loop.run();
    allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
  state.counters["allocs_per_event"] = benchmark::Counter(
      static_cast<double>(allocs) /
      static_cast<double>(state.iterations() * kEvents));
}
BENCHMARK(BM_EventLoopSteadyState);

// Timing-wheel schedule/dispatch with the horizon mix a trial produces:
// mostly sub-millisecond deliveries, a sprinkling of ~200 ms RTO-scale
// timers, and the occasional multi-second idle timeout, forcing events onto
// three different wheel levels. Steady-state must be allocation-free (the
// slab, near-heap, and buckets all warm during the first round).
void BM_WheelSchedule(benchmark::State& state) {
  sim::EventLoop loop;
  constexpr int kEvents = 1024;
  int fired = 0;
  const auto push_round = [&] {
    for (int i = 0; i < kEvents; ++i) {
      sim::Duration d = sim::Duration::micros(37 * (i % 19));
      if (i % 61 == 0) d = sim::Duration::millis(200 + i % 7);
      if (i % 257 == 0) d = sim::Duration::seconds(2);
      loop.schedule_after(d, [&fired] { ++fired; });
    }
    loop.run();
  };
  push_round();  // warm slab, buckets, and near-heap capacity

  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    push_round();
    allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
  state.counters["allocs_per_event"] = benchmark::Counter(
      static_cast<double>(allocs) /
      static_cast<double>(state.iterations() * kEvents));
}
BENCHMARK(BM_WheelSchedule);

// The RTO rearm pattern TCP drives constantly: schedule a far-out timer,
// cancel or reschedule it before it fires, repeat. Wheel-resident cancels
// unlink in O(1) and recycle the slot immediately, so the churn must not
// touch the heap at steady state and must never leave tombstones behind.
void BM_WheelCancelChurn(benchmark::State& state) {
  sim::EventLoop loop;
  constexpr int kTimers = 256;
  int fired = 0;
  std::vector<sim::TimerHandle> handles(kTimers);
  const auto churn_round = [&] {
    for (int i = 0; i < kTimers; ++i) {
      handles[static_cast<std::size_t>(i)] = loop.schedule_after(
          sim::Duration::millis(200 + i % 50), [&fired] { ++fired; });
    }
    for (int i = 0; i < kTimers; ++i) {
      if (!loop.reschedule_after(handles[static_cast<std::size_t>(i)],
                                 sim::Duration::millis(100 + i % 50))) {
        std::abort();  // wheel-resident rearm must always succeed here
      }
    }
    for (sim::TimerHandle& h : handles) h.cancel();
    // Drive one dispatch so the loop advances even though everything was
    // cancelled; schedule one live event to run to.
    loop.schedule_after(sim::Duration::micros(10), [&fired] { ++fired; });
    loop.run();
  };
  churn_round();

  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    churn_round();
    allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * kTimers);
  state.counters["allocs_per_event"] = benchmark::Counter(
      static_cast<double>(allocs) /
      static_cast<double>(state.iterations() * kTimers));
}
BENCHMARK(BM_WheelCancelChurn);

// Many events at one instant: they share a granule, so a single refill
// drains the whole bucket into the near-heap and the FIFO (at, seq)
// tie-break decides the entire dispatch order. This is the batched-delivery
// shape the link layer produces under a packet burst.
void BM_SameInstantBurst(benchmark::State& state) {
  sim::EventLoop loop;
  constexpr int kEvents = 512;
  int fired = 0;
  const auto burst_round = [&] {
    const sim::TimePoint at = loop.now() + sim::Duration::micros(50);
    for (int i = 0; i < kEvents; ++i) {
      loop.schedule_at(at, [&fired] { ++fired; });
    }
    loop.run();
  };
  burst_round();

  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    burst_round();
    allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
  state.counters["allocs_per_event"] = benchmark::Counter(
      static_cast<double>(allocs) /
      static_cast<double>(state.iterations() * kEvents));
}
BENCHMARK(BM_SameInstantBurst);

// Steady-state allocation proof for the packet path: client link -> middlebox
// -> sink, with the sink recycling payloads into the loop's pool the way
// TcpStack::deliver does. Once the pool and queues are warmed, forwarding a
// 1200-byte payload end to end must be allocation-free (`allocs_per_packet`
// == 0).
void BM_PacketForwardSteadyState(benchmark::State& state) {
  sim::EventLoop loop;
  net::Link::Config lcfg;
  lcfg.delay = sim::Duration::micros(50);
  net::Link link(loop, lcfg, "bench");
  net::Middlebox mb(loop);
  link.set_sink([&mb](net::Packet&& p) { mb.on_from_client(std::move(p)); });
  std::uint64_t arrived = 0;
  mb.attach(
      [&](net::Packet&& p) {
        ++arrived;
        loop.payload_pool().release(std::move(p.payload));
      },
      [](net::Packet&&) {});

  constexpr int kPackets = 64;
  constexpr std::size_t kPayloadBytes = 1200;
  const auto push_burst = [&] {
    for (int i = 0; i < kPackets; ++i) {
      net::Packet p;
      p.id = static_cast<std::uint64_t>(i);
      p.payload = loop.payload_pool().acquire();
      p.payload.assign(kPayloadBytes, 0xab);
      link.send(std::move(p));
    }
    loop.run();
  };
  push_burst();  // warm the pool, the ring queue, and the event slab

  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    push_burst();
    allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
    benchmark::DoNotOptimize(arrived);
  }
  state.SetItemsProcessed(state.iterations() * kPackets);
  state.counters["allocs_per_packet"] = benchmark::Counter(
      static_cast<double>(allocs) /
      static_cast<double>(state.iterations() * kPackets));
}
BENCHMARK(BM_PacketForwardSteadyState);

void BM_RngU64(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngU64);

// The per-packet cost of the observability layer: a registered counter
// increment is one pointer dereference, and a record call against a disabled
// tracer is a single mask test. These bound the overhead instrumentation adds
// to the simulator's hot paths when tracing is off (the default).
void BM_MetricsCounterInc(benchmark::State& state) {
  obs::Counter c = obs::MetricsRegistry::instance().counter("bench.counter");
  for (auto _ : state) {
    c.inc();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MetricsCounterInc);

void BM_TracerDisabledInstant(benchmark::State& state) {
  auto& tr = obs::Tracer::instance();
  tr.disable_all();
  const sim::TimePoint t = sim::TimePoint::origin();
  for (auto _ : state) {
    if (tr.enabled(obs::Component::kTcp)) {
      tr.instant(obs::Component::kTcp, "never", t, 1, 1);
    }
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TracerDisabledInstant);

// A disabled profiler probe — what every per-packet ProfileScope in
// net/tcp/tls/h2 costs in production runs: one thread-local context read,
// one branch, and a null test in the destructor. Should sit in the same
// ~sub-nanosecond band as the disabled tracer record above.
void BM_ProfilerDisabledScope(benchmark::State& state) {
  obs::profiler().set_enabled(false);
  for (auto _ : state) {
    obs::ProfileScope prof(obs::Component::kTcp);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ProfilerDisabledScope);

// The enabled cost, for scale: two clock reads plus a map touch per scope.
void BM_ProfilerEnabledScope(benchmark::State& state) {
  obs::profiler().set_enabled(true);
  obs::profiler().reset();
  for (auto _ : state) {
    obs::ProfileScope prof(obs::Component::kTcp);
    benchmark::ClobberMemory();
  }
  obs::profiler().set_enabled(false);
  obs::profiler().reset();
}
BENCHMARK(BM_ProfilerEnabledScope);

}  // namespace

BENCHMARK_MAIN();
