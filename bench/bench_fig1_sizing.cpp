// Reproduces Figure 1: on a two-object microcase, the passive size estimator
// recovers exact object sizes when transmissions are sequential (Case 1) and
// fails when they are multiplexed (Case 2).

#include <cstdio>
#include <cstdlib>

#include "analysis/boundary.hpp"
#include "analysis/dom.hpp"
#include "attack/monitor.hpp"
#include "experiment/table_printer.hpp"
#include "h2/client.hpp"
#include "h2/server.hpp"
#include "net/topology.hpp"
#include "tcp/tcp_stack.hpp"
#include "tls/session.hpp"
#include "web/browser.hpp"
#include "web/server_app.hpp"
#include "web/website.hpp"

using namespace h2sim;

namespace {

struct MicroResult {
  std::vector<analysis::DetectedObject> detections;
  double dom_o1 = 0, dom_o2 = 0;
};

MicroResult run_case(h2::SchedulerKind scheduler, sim::Duration request_gap) {
  sim::EventLoop loop;
  sim::Rng rng(7);

  net::Path::Config pc;
  pc.client_side.delay = sim::Duration::millis(2);
  pc.server_side.delay = sim::Duration::millis(10);
  net::Path path(loop, pc);

  tcp::TcpConfig tcfg;
  tcp::TcpStack server_stack(loop, rng.split(), net::Path::kServerNode, tcfg,
                             [&](net::Packet&& p) { path.send_from_server(std::move(p)); });
  tcp::TcpStack client_stack(loop, rng.split(), net::Path::kClientNode, tcfg,
                             [&](net::Packet&& p) { path.send_from_client(std::move(p)); });
  path.set_server_sink([&](net::Packet&& p) { server_stack.deliver(std::move(p)); });
  path.set_client_sink([&](net::Packet&& p) { client_stack.deliver(std::move(p)); });

  web::Website site = web::make_two_object_site(30000, 50000);
  site.schedule[1].gap_from_prev = request_gap;
  site.schedule[1].noise_lo = site.schedule[1].noise_hi = 1.0;
  site.schedule[0].noise_lo = site.schedule[0].noise_hi = 1.0;

  attack::TrafficMonitor monitor;
  path.middlebox().set_tap([&](const net::Packet& p, net::Direction d, sim::TimePoint t) {
    monitor.observe(p, d, t);
  });

  analysis::WireLog wire_log;
  struct Srv {
    std::unique_ptr<tls::TlsSession> tls;
    std::unique_ptr<h2::ServerConnection> conn;
    std::unique_ptr<web::ServerApp> app;
  };
  std::vector<std::unique_ptr<Srv>> srv;
  h2::ConnectionConfig scfg;
  scfg.scheduler = scheduler;
  scfg.data_chunk_size = 1024;
  web::ServerAppConfig app_cfg;
  app_cfg.speed_factor_lo = app_cfg.speed_factor_hi = 1.0;

  server_stack.listen(443, [&](tcp::TcpConnection& c) {
    auto s = std::make_unique<Srv>();
    s->tls = std::make_unique<tls::TlsSession>(c, tls::TlsSession::Role::kServer);
    s->conn = std::make_unique<h2::ServerConnection>(loop, *s->tls, scfg, rng.split());
    s->app = std::make_unique<web::ServerApp>(loop, site, *s->conn, rng.split(), app_cfg);
    auto* app = s->app.get();
    s->conn->set_frame_tap([app, &wire_log](const h2::Frame& f, sim::TimePoint t) {
      analysis::ServerWireEvent ev;
      ev.time = t;
      ev.stream_id = f.stream_id;
      ev.is_data = f.type == h2::FrameType::kData;
      ev.data_bytes = ev.is_data ? f.payload.size() : 0;
      ev.end_stream = ev.is_data && f.has_flag(h2::flags::kEndStream);
      auto it = app->stream_objects().find(f.stream_id);
      ev.object = it != app->stream_objects().end() ? it->second : "";
      wire_log.add(std::move(ev));
    });
    srv.push_back(std::move(s));
  });

  tcp::TcpConnection& ct = client_stack.connect(net::Path::kServerNode, 443);
  tls::TlsSession ctls(ct, tls::TlsSession::Role::kClient);
  h2::ClientConnection cc(loop, ctls, h2::ConnectionConfig{}, rng.split());
  web::Browser browser(loop, cc, site, {0, 1, 2, 3, 4, 5, 6, 7}, rng.split(), {});
  browser.start();
  loop.run(sim::TimePoint::origin() + sim::Duration::seconds(30));

  MicroResult r;
  r.detections = analysis::detect_objects(monitor.trace());
  r.dom_o1 = analysis::object_dom(wire_log, "O1").primary_dom;
  r.dom_o2 = analysis::object_dom(wire_log, "O2").primary_dom;
  return r;
}

}  // namespace

int main() {
  experiment::TablePrinter table(
      {"case", "DoM(O1)", "DoM(O2)", "size estimates (truth: 30000, 50000)"});

  // Case 1: O2 requested after O1's transmission completes -> serialized.
  MicroResult seq = run_case(h2::SchedulerKind::kRoundRobin, sim::Duration::millis(80));
  // Case 2: back-to-back requests, multiplexing scheduler.
  MicroResult mux = run_case(h2::SchedulerKind::kRoundRobin, sim::Duration::millis_f(0.5));

  auto estimates = [](const MicroResult& r) {
    std::string s;
    for (const auto& d : r.detections) {
      if (d.size_estimate < 2000) continue;  // skip handshake-era noise
      s += std::to_string(d.size_estimate) + " ";
    }
    return s.empty() ? std::string("(none)") : s;
  };
  table.add_row({"1: sequential", experiment::TablePrinter::pct(seq.dom_o1 * 100, 0),
                 experiment::TablePrinter::pct(seq.dom_o2 * 100, 0), estimates(seq)});
  table.add_row({"2: multiplexed", experiment::TablePrinter::pct(mux.dom_o1 * 100, 0),
                 experiment::TablePrinter::pct(mux.dom_o2 * 100, 0), estimates(mux)});
  table.print("Figure 1: object size estimation, sequential vs multiplexed");

  std::printf("\npaper: in Case 1 the delimiter packets expose both sizes; in\n"
              "Case 2 the interleaving makes the per-object sums meaningless.\n");
  return 0;
}
