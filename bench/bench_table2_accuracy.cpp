// Reproduces Table II: prediction accuracy of the full staged attack
// (Section V) on the isidewith-like site. Two adversary targets:
//  - one object at a time: the trigger is placed at the target's GET, the
//    rest of the pipeline (drop -> reset -> serialize) runs as usual;
//  - all objects at once: the paper's full pipeline (trigger at the 6th GET,
//    then 80 ms spacing for the image burst).
//
// This bench doubles as the perf headline: the all-at-once sweep runs once
// single-threaded and once on all cores, and BENCH_sweep.json records the
// measured speedup (the two runs must agree bit-for-bit).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "experiment/harness.hpp"
#include "experiment/sink.hpp"
#include "obs/aggregate.hpp"
#include "experiment/table_printer.hpp"
#include "sweep_util.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;
  using experiment::TablePrinter;
  const int trials = bench::trials_arg(argc, argv, 100);
  bench::SweepSession sweep("bench_table2_accuracy");

  const char* names[] = {"HTML", "I1", "I2", "I3", "I4", "I5", "I6", "I7", "I8"};
  const char* paper_all[] = {"90", "90", "85", "81", "80", "62", "64", "78", "64"};

  // --- All objects at once (the paper's headline result) ---
  // Broken connections count as failures for whatever the adversary had not
  // yet extracted: the trace up to the break is still evaluated, which is
  // precisely why the paper's accuracy declines for later images.
  experiment::TrialConfig all_proto;
  all_proto.attack = experiment::full_attack_config();
  const auto all_cfgs = bench::seed_sweep(all_proto, 90000, trials);
  const auto all_results = sweep.run_with_speedup("all-at-once", all_cfgs);

  std::vector<int> all_success(9, 0);
  int all_completed = 0, all_broken = 0;
  for (const auto& r : all_results) {
    if (r.page_complete) {
      ++all_completed;
    } else {
      ++all_broken;
    }
    for (int i = 0; i < 9; ++i) {
      if (r.success[static_cast<std::size_t>(i)]) ++all_success[static_cast<std::size_t>(i)];
    }
  }

  // --- Streamed campaign path (perf record only, no table rows) ---
  // The same all-at-once grid pushed through an AggregatingSink with
  // collect_results=false: the bounded-memory path tools/h2sim-campaign
  // uses. Recorded as campaign_trials_per_sec so check_regression.py can
  // gate the streaming overhead separately from the collected path, and
  // cross-checked here against the in-memory reduction of all_results.
  const auto campaign_labeler = [](std::size_t, const experiment::TrialConfig&) {
    return std::string("all-at-once");
  };
  const std::string streamed_ndjson =
      sweep.run_streamed("campaign-streamed", all_cfgs, campaign_labeler);
  obs::AggregateTable reference;
  for (std::size_t i = 0; i < all_results.size(); ++i) {
    experiment::apply_trial_record(
        reference, experiment::make_trial_record(i, all_cfgs[i],
                                                 "all-at-once", all_results[i]));
  }
  if (streamed_ndjson != reference.ndjson()) {
    std::fprintf(stderr,
                 "[sweep] campaign-streamed: AGGREGATE MISMATCH — streamed "
                 "sink differs from in-memory reduction\n");
    return 1;
  }

  // --- One object at a time ---
  // The paper reports 100 % per object; we trigger the disrupt phase at the
  // target's own GET. Fewer trials per object keep runtime sane. All nine
  // per-object sweeps go into one config list so the pool stays saturated.
  const int single_trials = std::max(10, trials / 4);
  std::vector<experiment::TrialConfig> single_cfgs;
  for (int obj = 0; obj < 9; ++obj) {
    for (int t = 0; t < single_trials; ++t) {
      experiment::TrialConfig cfg;
      cfg.seed = 91000 + static_cast<std::uint64_t>(obj * 1000 + t);
      const int target_get =
          obj == 0 ? experiment::html_get_index(cfg.site)
                   : experiment::emblem_get_index(cfg.site, obj - 1);
      cfg.attack = experiment::single_target_attack_config(target_get);
      single_cfgs.push_back(std::move(cfg));
    }
  }
  const auto single_results = sweep.run("one-at-a-time", single_cfgs);

  std::vector<int> single_success(9, 0), single_completed(9, 0);
  for (std::size_t i = 0; i < single_results.size(); ++i) {
    const int obj = static_cast<int>(i) / single_trials;
    const auto& r = single_results[i];
    ++single_completed[static_cast<std::size_t>(obj)];
    // Single-target success: that object serialized and identified (for
    // images: identified at the right burst position).
    if (r.success[static_cast<std::size_t>(obj)]) {
      ++single_success[static_cast<std::size_t>(obj)];
    }
  }

  TablePrinter table({"object", "one-at-a-time (paper)", "one-at-a-time (measured)",
                      "all-at-once (paper)", "all-at-once (measured)"});
  for (int i = 0; i < 9; ++i) {
    const double single_pct =
        single_completed[static_cast<std::size_t>(i)] > 0
            ? 100.0 * single_success[static_cast<std::size_t>(i)] /
                  single_completed[static_cast<std::size_t>(i)]
            : 0.0;
    const double all_pct =
        trials > 0 ? 100.0 * all_success[static_cast<std::size_t>(i)] / trials
                   : 0.0;
    table.add_row({names[i], "100%", TablePrinter::pct(single_pct, 0),
                   std::string(paper_all[i]) + "%", TablePrinter::pct(all_pct, 0)});
  }
  table.print("Table II: prediction accuracy (" + std::to_string(trials) +
              " full-attack downloads, " + std::to_string(single_trials) +
              " per single target)");
  std::printf("full attack: %d/%d downloads completed (%d broken)\n",
              all_completed, trials, all_broken);
  return 0;
}
