// Ablation: what fuels the paper's fast-retransmit storm? The client's
// WINDOW_UPDATE cadence. Held GETs are only fast-retransmitted after the
// server dup-ACKs them, and dup-ACKs need subsequent client payload packets
// — which, during a page load, are almost exclusively WINDOW_UPDATE frames.
// Sweeping the client's connection-level WINDOW_UPDATE batch size under the
// 50 ms jitter adversary (paper-faithful controller) shows the storm grow as
// the client gets chattier.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"
#include "sweep_util.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;
  using experiment::TablePrinter;
  const int trials = bench::trials_arg(argc, argv, 30);
  bench::SweepSession sweep("bench_ablation_wu");

  TablePrinter table({"client WU batch", "wire retransmissions (mean)",
                      "html not multiplexed", "broken"});
  for (const std::size_t batch : {4096u, 16384u, 32768u, 131072u, 1048576u}) {
    experiment::TrialConfig proto;
    proto.attack = experiment::jitter_only_config(sim::Duration::millis(50));
    proto.attack.suppress_request_retransmissions = false;  // paper-faithful
    proto.client_h2.window_update_batch = batch;
    const auto results =
        sweep.run("wu_batch=" + std::to_string(batch),
                  bench::seed_sweep(proto, 47000, trials));

    std::vector<double> retrans;
    std::vector<bool> nomux;
    int broken = 0;
    for (const auto& r : results) {
      if (!r.page_complete) {
        ++broken;
        continue;
      }
      retrans.push_back(static_cast<double>(r.wire_retransmissions()));
      nomux.push_back(r.interest[0].any_copy_serialized);
    }
    table.add_row({std::to_string(batch / 1024) + " KiB",
                   TablePrinter::fmt(analysis::mean(retrans), 1),
                   TablePrinter::pct(analysis::percent_true(nomux), 0),
                   std::to_string(broken)});
  }
  table.print("Ablation: WINDOW_UPDATE cadence vs the fast-retransmit storm (" +
              std::to_string(trials) + " downloads per row, jitter 50 ms)");
  std::printf("\na chattier client (small batches) hands the adversary's holds\n"
              "more dup-ACK fuel; a quieter client starves the storm and the\n"
              "jitter serializes cleanly — the paper's Table I sits in between.\n");
  return 0;
}
