#!/usr/bin/env python3
"""Benchmark-regression gate for the sweep benches.

Compares a freshly produced BENCH_sweep.json against the committed
bench/baseline.json and fails (exit 1) when either of these regresses
beyond the tolerance on any sweep label present in both files:

  * trials_per_sec drops below (1 - TOLERANCE) x baseline  -> slower
  * allocs_per_event rises above (1 + TOLERANCE) x baseline + ABS_EPS
    -> the hot path started allocating again
  * cascades_per_event rises above (1 + TOLERANCE) x baseline + ABS_EPS
    -> the timing wheel started moving events between buckets more than
       the workload warrants (a scheduler-placement regression)
  * campaign_trials_per_sec drops below (1 - TOLERANCE) x baseline
    -> the streaming-sink path (AggregatingSink, collect_results=false;
       what tools/h2sim-campaign runs) got slower. Only gated on sweeps
       where either side records a non-zero value: collected sweeps
       legitimately report 0 for it.

setup_seconds_mean (per-trial world-construction time) is reported for
trend-watching but never gated: it is wall-clock and machine-dependent.
A baseline entry that predates a gated ratio leaves that ratio ungated;
--strict-new refuses such stale entries so the baseline must be
refreshed together with the field that introduced it.

It also fails if the run's "deterministic" flag is false, or if a label
recorded in the baseline is missing from the run (a silently dropped
sweep would otherwise hide a regression forever).

The reverse direction is checked too: a sweep present in the run but
absent from the baseline is reported, and with --strict-new it fails
the gate — CI passes the flag so a newly added bench cannot merge
without its baseline entry, which would leave it permanently ungated.

Refreshing the baseline
-----------------------
When a PR intentionally changes performance (hardware-independent ratios
like allocs_per_event should stay put; trials_per_sec moves with real
optimisations), regenerate and commit the baseline:

    cmake --build build -j --target bench_table2_accuracy
    cd build && ./bench/bench_table2_accuracy 4
    cp BENCH_sweep.json ../bench/baseline.json

and mention the before/after numbers in the PR description. The
tolerance is deliberately wide (+-25%) so machine-to-machine variance in
trials_per_sec does not flap the gate; allocs_per_event is a pure
function of the workload and barely moves between machines.

Usage:
    python3 bench/check_regression.py [--strict-new] <BENCH_sweep.json> [baseline.json]
"""

import json
import os
import sys

TOLERANCE = 0.25
# Absolute slack for allocs_per_event: warm-up allocations shift slightly
# with trial count, and a ratio near zero makes pure relative comparison
# brittle.
ABS_EPS = 0.002


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def fmt_delta(new, old):
    if old == 0:
        return "n/a" if new == 0 else "+inf"
    return f"{(new - old) / old * 100.0:+.1f}%"


def main(argv):
    args = argv[1:]
    strict_new = "--strict-new" in args
    args = [a for a in args if a != "--strict-new"]
    if not args:
        sys.stderr.write(__doc__)
        return 2
    sweep_path = args[0]
    baseline_path = (
        args[1]
        if len(args) > 1
        else os.path.join(os.path.dirname(os.path.abspath(__file__)), "baseline.json")
    )

    run = load(sweep_path)
    base = load(baseline_path)

    failures = []
    if not run.get("deterministic", False):
        failures.append("run reports deterministic=false")

    run_by_label = {e["label"]: e for e in run.get("sweeps", [])}
    base_by_label = {e["label"]: e for e in base.get("sweeps", [])}

    rows = []
    for label, b in base_by_label.items():
        r = run_by_label.get(label)
        if r is None:
            failures.append(f"sweep '{label}' present in baseline but missing from run")
            continue

        tps_new, tps_old = r["trials_per_sec"], b["trials_per_sec"]
        ape_new, ape_old = r.get("allocs_per_event", 0.0), b.get("allocs_per_event", 0.0)
        cpe_new = r.get("cascades_per_event", 0.0)
        cpe_old = b.get("cascades_per_event")

        tps_floor = tps_old * (1.0 - TOLERANCE)
        ape_ceil = ape_old * (1.0 + TOLERANCE) + ABS_EPS

        verdicts = []
        if tps_new < tps_floor:
            verdicts.append(f"trials/s {tps_new:.2f} < floor {tps_floor:.2f}")
        if ape_new > ape_ceil:
            verdicts.append(f"allocs/event {ape_new:.6f} > ceil {ape_ceil:.6f}")
        if cpe_old is None:
            msg = f"sweep '{label}': baseline predates cascades_per_event"
            if strict_new:
                failures.append(msg + " (--strict-new); refresh bench/baseline.json")
            else:
                print(f"note: {msg}; refresh bench/baseline.json to gate it")
            cpe_old = 0.0
        else:
            cpe_ceil = cpe_old * (1.0 + TOLERANCE) + ABS_EPS
            if cpe_new > cpe_ceil:
                verdicts.append(
                    f"cascades/event {cpe_new:.6f} > ceil {cpe_ceil:.6f}"
                )
        camp_new = r.get("campaign_trials_per_sec", 0.0)
        camp_old = b.get("campaign_trials_per_sec")
        if camp_new > 0.0 or (camp_old or 0.0) > 0.0:
            if camp_old is None:
                # Stale baseline: the run records a streamed-sink throughput
                # the baseline has never seen, so the floor would be ungated.
                msg = f"sweep '{label}': baseline predates campaign_trials_per_sec"
                if strict_new:
                    failures.append(msg + " (--strict-new); refresh bench/baseline.json")
                else:
                    print(f"note: {msg}; refresh bench/baseline.json to gate it")
                camp_old = 0.0
            else:
                camp_floor = camp_old * (1.0 - TOLERANCE)
                if camp_new < camp_floor:
                    verdicts.append(
                        f"campaign trials/s {camp_new:.2f} < floor {camp_floor:.2f}"
                    )
        camp_old = camp_old or 0.0
        setup_new = r.get("setup_seconds_mean", 0.0)
        setup_old = b.get("setup_seconds_mean", 0.0)
        if verdicts:
            failures.append(f"sweep '{label}': " + "; ".join(verdicts))

        rows.append(
            (
                label,
                f"{tps_old:.2f}",
                f"{tps_new:.2f}",
                fmt_delta(tps_new, tps_old),
                f"{ape_old:.6f}",
                f"{ape_new:.6f}",
                fmt_delta(ape_new, ape_old),
                f"{cpe_old:.4f}",
                f"{cpe_new:.4f}",
                f"{camp_old:.2f}",
                f"{camp_new:.2f}",
                f"{setup_old * 1e3:.2f}",
                f"{setup_new * 1e3:.2f}",
                "FAIL" if verdicts else "ok",
            )
        )

    # Reverse direction: sweeps the run produced that the baseline has never
    # seen. Without a baseline entry they are ungated, so CI (--strict-new)
    # refuses them until bench/baseline.json is refreshed alongside the new
    # bench.
    new_labels = [label for label in run_by_label if label not in base_by_label]
    for label in new_labels:
        r = run_by_label[label]
        rows.append(
            (
                label,
                "-",
                f"{r['trials_per_sec']:.2f}",
                "n/a",
                "-",
                f"{r.get('allocs_per_event', 0.0):.6f}",
                "n/a",
                "-",
                f"{r.get('cascades_per_event', 0.0):.4f}",
                "-",
                f"{r.get('campaign_trials_per_sec', 0.0):.2f}",
                "-",
                f"{r.get('setup_seconds_mean', 0.0) * 1e3:.2f}",
                "NEW" if not strict_new else "FAIL",
            )
        )
        msg = f"sweep '{label}' present in run but missing from baseline"
        if strict_new:
            failures.append(msg + " (--strict-new)")
        else:
            print(f"note: {msg}; refresh bench/baseline.json to gate it")

    header = (
        "sweep",
        "trials/s (base)",
        "trials/s (run)",
        "delta",
        "allocs/event (base)",
        "allocs/event (run)",
        "delta",
        "casc/event (base)",
        "casc/event (run)",
        "camp/s (base)",
        "camp/s (run)",
        "setup ms (base)",
        "setup ms (run)",
        "verdict",
    )
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    print(line(header))
    print(line(tuple("-" * w for w in widths)))
    for row in rows:
        print(line(row))
    print()

    if failures:
        print("REGRESSION GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        print("\nIf this change is intentional, refresh bench/baseline.json")
        print("(instructions in this script's header).")
        return 1

    print(f"regression gate passed (tolerance +-{TOLERANCE:.0%}).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
