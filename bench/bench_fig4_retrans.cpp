// Reproduces the Figure 4 mechanics: holding a client request back for
// progressively longer triggers duplicate-ACK-driven fast retransmits of the
// held request and, past the stall threshold, browser re-requests; the
// duplicate copies intensify the multiplexing of the subsequent object.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"
#include "sweep_util.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;
  using experiment::TablePrinter;
  const int trials = bench::trials_arg(argc, argv, 40);
  bench::SweepSession sweep("bench_fig4_retrans");

  // Note: duplicate object copies under pure jitter arrive mostly through
  // TCP-bundled retransmissions of held request bytes (several GETs per
  // segment), which the wire count below captures; browser-level reissues
  // need a fully quiet connection and the staggered holds rarely leave one.
  TablePrinter table({"hold per request", "TCP retransmissions", "browser reissues",
                      "html copies (mean)", "requests spaced (refined mode)"});
  const int holds_ms[] = {0, 50, 150, 300, 600};
  for (const int hold : holds_ms) {
    experiment::TrialConfig proto;
    if (hold > 0) {
      proto.attack = experiment::jitter_only_config(sim::Duration::millis(hold));
      proto.attack.suppress_request_retransmissions = false;
    }
    const auto results =
        sweep.run("faithful hold=" + std::to_string(hold) + "ms",
                  bench::seed_sweep(proto, 80000, trials));

    std::vector<double> tcp_retrans, reissues, copies, suppressed;
    for (const auto& r : results) {
      if (!r.page_complete) continue;
      tcp_retrans.push_back(static_cast<double>(r.tcp_retransmits));
      reissues.push_back(static_cast<double>(r.browser_reissues));
      copies.push_back(static_cast<double>(r.interest[0].copies));
      suppressed.push_back(0);
    }
    // Refined adversary comparison (suppression counter).
    if (hold > 0) {
      experiment::TrialConfig refined = proto;
      refined.attack.suppress_request_retransmissions = true;
      const auto refined_results =
          sweep.run("refined hold=" + std::to_string(hold) + "ms",
                    bench::seed_sweep(refined, 80000, trials));
      for (const auto& r : refined_results) {
        if (!r.page_complete) continue;
        // adversary_drops counts targeted s2c drops; suppression is separate.
        suppressed.push_back(static_cast<double>(r.requests_spaced));
      }
    }
    table.add_row({std::to_string(hold) + " ms",
                   TablePrinter::fmt(analysis::mean(tcp_retrans), 1),
                   TablePrinter::fmt(analysis::mean(reissues), 1),
                   TablePrinter::fmt(analysis::mean(copies), 2),
                   TablePrinter::fmt(analysis::mean(suppressed), 1)});
  }
  table.print("Figure 4: request holds -> retransmissions and duplicate copies (" +
              std::to_string(trials) + " downloads per row)");
  return 0;
}
