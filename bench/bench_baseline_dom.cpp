// Reproduces the paper's Section IV baseline numbers: with no adversary, the
// result HTML is multiplexed with a DoM of ~98% and the emblem images show
// DoM in the 80-99% range; only ~32% of downloads leave the HTML
// non-multiplexed (Table I row 1).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"
#include "sweep_util.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;
  const int trials = bench::trials_arg(argc, argv, 100);
  bench::SweepSession sweep("bench_baseline_dom");

  experiment::TrialConfig proto;
  proto.attack.enabled = false;
  const auto results =
      sweep.run("baseline", bench::seed_sweep(proto, 1000, trials));

  std::vector<double> html_dom;
  std::vector<bool> html_not_muxed;
  std::vector<double> emblem_dom_min, emblem_dom_max;
  std::vector<double> retrans;

  for (const auto& r : results) {
    if (!r.page_complete) continue;

    html_dom.push_back(r.interest[0].primary_dom * 100);
    html_not_muxed.push_back(r.interest[0].primary_serialized);
    double lo = 100, hi = 0;
    for (int j = 1; j <= 8; ++j) {
      const double d = r.interest[static_cast<std::size_t>(j)].primary_dom * 100;
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    emblem_dom_min.push_back(lo);
    emblem_dom_max.push_back(hi);
    retrans.push_back(static_cast<double>(r.wire_retransmissions()));
  }

  using experiment::TablePrinter;
  TablePrinter table({"metric", "paper", "measured"});
  table.add_row({"HTML degree of multiplexing (mean)", "~98%",
                 TablePrinter::pct(analysis::mean(html_dom), 1)});
  table.add_row({"HTML not multiplexed (share of downloads)", "32%",
                 TablePrinter::pct(analysis::percent_true(html_not_muxed), 0)});
  table.add_row({"emblem DoM range (mean of per-trial min)", ">=80%",
                 TablePrinter::pct(analysis::mean(emblem_dom_min), 1)});
  table.add_row({"emblem DoM range (mean of per-trial max)", "<=99%",
                 TablePrinter::pct(analysis::mean(emblem_dom_max), 1)});
  table.add_row({"baseline wire retransmissions (mean/download)", "(reference)",
                 TablePrinter::fmt(analysis::mean(retrans), 1)});
  table.print("Section IV baseline: HTTP/2 multiplexing with no adversary (" +
              std::to_string(html_dom.size()) + " downloads)");
  return 0;
}
