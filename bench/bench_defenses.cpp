// Defense shoot-out: the serialization attack (full pipeline) against the
// classic size-channel defenses the paper's introduction surveys, plus its
// own §VII suggestion. Reports attack accuracy vs. the overhead each defense
// pays — quantifying the "unreasonable CPU and bandwidth overheads" claim.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "defense/defenses.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"
#include "sweep_util.hpp"

namespace {

struct DefenseRow {
  const char* name;
  std::size_t pad_quantum;
  int dummies;
  bool randomize_order;
  bool random_scheduler = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace h2sim;
  using experiment::TablePrinter;
  const int trials = bench::trials_arg(argc, argv, 30);
  bench::SweepSession sweep("bench_defenses");

  const DefenseRow rows[] = {
      {"none", 0, 0, false},
      {"pad to 2 KiB", 2048, 0, false},
      {"pad to 8 KiB", 8192, 0, false},
      {"pad to 16 KiB", 16384, 0, false},
      {"8 dummy objects", 0, 8, false},
      {"randomized order (§VII)", 0, 0, true},
      {"random frame scheduler", 0, 0, false, true},
      {"pad 8 KiB + dummies + random", 8192, 8, true},
  };

  TablePrinter table({"defense", "positions recovered (of 8)",
                      "distinguishable emblems", "bandwidth overhead",
                      "page load (mean)"});

  for (const DefenseRow& row : rows) {
    experiment::TrialConfig proto;
    proto.attack = experiment::full_attack_config();
    proto.defense.pad_quantum = row.pad_quantum;
    proto.defense.dummy_count = row.dummies;
    proto.browser.randomize_embedded_order = row.randomize_order;
    if (row.random_scheduler) {
      proto.server_h2.scheduler = h2::SchedulerKind::kRandom;
    }
    const auto results =
        sweep.run(row.name, bench::seed_sweep(proto, 52000, trials));

    std::vector<double> positions, load;
    for (const auto& r : results) {
      int pos = 0;
      for (int j = 1; j <= 8; ++j) {
        if (r.success[static_cast<std::size_t>(j)]) ++pos;
      }
      positions.push_back(pos);
      if (r.page_complete) load.push_back(r.page_load_seconds);
    }

    // Static site-level metrics.
    const web::Website original = web::make_isidewith_site();
    web::Website transformed = original;
    double overhead = 0.0;
    if (row.pad_quantum > 1) {
      transformed = defense::pad_site(original, row.pad_quantum);
      overhead = defense::padding_overhead(original, transformed);
    }
    if (row.dummies > 0) {
      sim::Rng rng(1);
      defense::DummyConfig dc;
      dc.count = row.dummies;
      defense::inject_dummies(transformed, rng, dc);
      std::size_t extra = 0, base = 0;
      for (const auto& [p, o] : original.objects()) base += o.size;
      for (const auto& [p, o] : transformed.objects()) extra += o.size;
      overhead = static_cast<double>(extra) / static_cast<double>(base) - 1.0;
    }
    const int unique = defense::distinguishable_emblems(transformed);

    table.add_row({row.name, TablePrinter::fmt(analysis::mean(positions), 2),
                   std::to_string(unique) + "/8",
                   TablePrinter::pct(overhead * 100, 1),
                   TablePrinter::fmt(analysis::mean(load), 1) + " s"});
  }
  table.print("Defenses vs the full serialization attack (" +
              std::to_string(trials) + " downloads per row)");
  std::printf(
      "\npadding defeats identification once size classes collide, at a\n"
      "direct bandwidth cost; dummies and order randomization attack the\n"
      "ordering instead. Note the 'random frame scheduler' row: shuffling\n"
      "HOW the server multiplexes does nothing, because the attack removes\n"
      "multiplexing altogether — the paper's core thesis. This is the\n"
      "trade-off space that made pre-HTTP/2 defenses 'impractical', and why\n"
      "multiplexing looked like a free lunch until this attack.\n");
  return 0;
}
