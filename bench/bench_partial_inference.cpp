// Ablation for the paper's §VII extension: partial-multiplexing inference.
// With NO adversary, the classic detector identifies almost nothing (the
// emblems multiplex); the subset-sum region explainer recovers the identity
// SET (though not the order) from region byte totals. With the full attack,
// both work — order included.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/boundary.hpp"
#include "analysis/partial.hpp"
#include "analysis/stats.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"
#include "sweep_util.hpp"

namespace {

struct Scores {
  std::vector<double> direct;   // emblems found by direct size match (of 8)
  std::vector<double> partial;  // emblems found including subset-sum (of 8)
};

Scores run_mode(h2sim::bench::SweepSession& sweep, bool attack_on, int trials) {
  using namespace h2sim;
  experiment::TrialConfig proto;
  proto.attack = attack_on ? experiment::full_attack_config()
                           : experiment::TrialConfig::default_attack_off();

  analysis::SizeIdentityDb emblems;
  for (int k = 0; k < 8; ++k) {
    emblems.add("party" + std::to_string(k),
                proto.site.emblem_sizes[static_cast<std::size_t>(k)]);
  }

  auto cfgs = bench::seed_sweep(proto, 46000, trials);
  // One detection slot per trial: the inspectors run on worker threads, so
  // each closure may only write its own index.
  std::vector<std::vector<analysis::DetectedObject>> detections(cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    cfgs[i].trace_inspector = [&detections, i](const analysis::PacketTrace& t) {
      detections[i] = analysis::detect_objects(t);
    };
  }
  const auto results =
      sweep.run(attack_on ? "full-attack" : "no-adversary", cfgs);

  Scores s;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (!r.page_complete && !attack_on) continue;

    auto count_found = [&](const std::vector<std::string>& labels) {
      int found = 0;
      for (int k = 0; k < 8; ++k) {
        const std::string want = "party" + std::to_string(k);
        for (const auto& l : labels) {
          if (l == want) {
            ++found;
            break;
          }
        }
      }
      return found;
    };

    std::vector<std::string> direct_labels;
    for (const auto& d : detections[i]) {
      if (const auto m = emblems.identify(d.size_estimate)) {
        direct_labels.push_back(m->label);
      }
    }
    const auto partial = analysis::infer_objects_partial(detections[i], emblems);
    s.direct.push_back(count_found(direct_labels));
    s.partial.push_back(count_found(partial.labels));
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace h2sim;
  using experiment::TablePrinter;
  const int trials = bench::trials_arg(argc, argv, 30);
  bench::SweepSession sweep("bench_partial_inference");

  const Scores base = run_mode(sweep, false, trials);
  const Scores attacked = run_mode(sweep, true, trials);

  TablePrinter table({"scenario", "direct size match (of 8)",
                      "with §VII partial inference (of 8)"});
  table.add_row({"no adversary (multiplexed)",
                 TablePrinter::fmt(analysis::mean(base.direct), 2),
                 TablePrinter::fmt(analysis::mean(base.partial), 2)});
  table.add_row({"full attack (serialized)",
                 TablePrinter::fmt(analysis::mean(attacked.direct), 2),
                 TablePrinter::fmt(analysis::mean(attacked.partial), 2)});
  table.print("§VII ablation: partial-multiplexing inference (" +
              std::to_string(trials) + " downloads per row)");
  std::printf("\npartial inference narrows the identity set even under\n"
              "multiplexing (the paper's 'preliminary experiments suggest this\n"
              "is indeed possible'), but only serialization recovers the order.\n");
  return 0;
}
