// Reproduces Figure 6 / Section IV-D: targeted packet drops force the
// client's RST_STREAM; after the reset, the re-requested object transmits
// single-threaded. The paper reports ~90 % success at an 80 % drop rate and
// broken connections beyond it. We sweep the drop rate to show both the
// plateau and the breakage.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;
  using experiment::TablePrinter;
  const int trials = argc > 1 ? std::atoi(argv[1]) : 100;

  const double rates[] = {0.5, 0.65, 0.8, 0.9, 0.95};

  TablePrinter table({"drop rate", "paper", "success (html serialized+IDed)",
                      "resets seen", "broken connections"});
  for (const double rate : rates) {
    std::vector<bool> success;
    std::vector<double> resets;
    int broken = 0;
    for (int t = 0; t < trials; ++t) {
      experiment::TrialConfig cfg;
      cfg.seed = 60000 + static_cast<std::uint64_t>(t);
      cfg.attack = experiment::full_attack_config();
      cfg.attack.drop_rate = rate;
      const auto r = experiment::run_trial(cfg);
      if (!r.page_complete) {
        ++broken;
        success.push_back(false);
        continue;
      }
      success.push_back(r.success[0]);
      resets.push_back(static_cast<double>(r.reset_sweeps));
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", rate * 100);
    const char* paper = rate == 0.8 ? "~90% success"
                        : rate > 0.8 ? "broken connection" : "-";
    table.add_row({label, paper,
                   TablePrinter::pct(analysis::percent_true(success), 0),
                   TablePrinter::fmt(analysis::mean(resets), 1),
                   std::to_string(broken)});
  }
  table.print("Figure 6 / §IV-D: targeted packet drops force a stream reset (" +
              std::to_string(trials) + " downloads per point)");
  return 0;
}
