// Reproduces Figure 6 / Section IV-D: targeted packet drops force the
// client's RST_STREAM; after the reset, the re-requested object transmits
// single-threaded. The paper reports ~90 % success at an 80 % drop rate and
// broken connections beyond it. We sweep the drop rate to show both the
// plateau and the breakage.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"
#include "sweep_util.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;
  using experiment::TablePrinter;
  const int trials = bench::trials_arg(argc, argv, 100);
  bench::SweepSession sweep("bench_fig6_reset");

  const double rates[] = {0.5, 0.65, 0.8, 0.9, 0.95};

  TablePrinter table({"drop rate", "paper", "success (html serialized+IDed)",
                      "resets seen", "broken connections"});
  for (const double rate : rates) {
    experiment::TrialConfig proto;
    proto.attack = experiment::full_attack_config();
    proto.attack.drop_rate = rate;
    char label[32];
    std::snprintf(label, sizeof(label), "drop=%.0f%%", rate * 100);
    const auto results =
        sweep.run(label, bench::seed_sweep(proto, 60000, trials));

    std::vector<bool> success;
    std::vector<double> resets;
    int broken = 0;
    for (const auto& r : results) {
      if (!r.page_complete) {
        ++broken;
        success.push_back(false);
        continue;
      }
      success.push_back(r.success[0]);
      resets.push_back(static_cast<double>(r.reset_sweeps));
    }
    char row[16];
    std::snprintf(row, sizeof(row), "%.0f%%", rate * 100);
    const char* paper = rate == 0.8 ? "~90% success"
                        : rate > 0.8 ? "broken connection" : "-";
    table.add_row({row, paper,
                   TablePrinter::pct(analysis::percent_true(success), 0),
                   TablePrinter::fmt(analysis::mean(resets), 1),
                   std::to_string(broken)});
  }
  table.print("Figure 6 / §IV-D: targeted packet drops force a stream reset (" +
              std::to_string(trials) + " downloads per point)");
  return 0;
}
