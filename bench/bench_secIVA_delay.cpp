// Reproduces Section IV-A (negative result): adding a *uniform* delay to
// every packet on the client->server path shifts all request arrivals by the
// same amount but cannot increase their inter-arrival spacing, so the degree
// of multiplexing is unchanged. (Jitter — unequal delays — is what works.)

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"
#include "sweep_util.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;
  using experiment::TablePrinter;
  const int trials = bench::trials_arg(argc, argv, 60);
  bench::SweepSession sweep("bench_secIVA_delay");

  TablePrinter table({"uniform extra delay", "html DoM (mean)",
                      "html not multiplexed", "page load time (mean)"});
  for (const int delay_ms : {0, 10, 25, 50, 100}) {
    experiment::TrialConfig proto;
    proto.attack.enabled = false;
    // Uniform delay on the client-side links (both directions).
    proto.path.client_side.delay =
        sim::Duration::millis(2) + sim::Duration::millis(delay_ms);
    const auto results =
        sweep.run("delay=" + std::to_string(delay_ms) + "ms",
                  bench::seed_sweep(proto, 70000, trials));

    std::vector<double> dom, load;
    std::vector<bool> nomux;
    for (const auto& r : results) {
      if (!r.page_complete) continue;
      dom.push_back(r.interest[0].primary_dom * 100);
      nomux.push_back(r.interest[0].primary_serialized);
      load.push_back(r.page_load_seconds);
    }
    table.add_row({std::to_string(delay_ms) + " ms",
                   TablePrinter::pct(analysis::mean(dom), 1),
                   TablePrinter::pct(analysis::percent_true(nomux), 0),
                   TablePrinter::fmt(analysis::mean(load), 2) + " s"});
  }
  table.print("Section IV-A: uniform delay does not affect multiplexing (" +
              std::to_string(trials) + " downloads per row)");
  std::printf("\npaper: uniform delay cannot increase inter-arrival spacing at\n"
              "the server, so it is useless to the adversary.\n");
  return 0;
}
