// h2sim-campaign: streaming Monte-Carlo campaign driver. Composes a config
// grid from attack/defense axes, runs it in waves with bounded memory,
// spills per-trial records as SHA256-manifested NDJSON shards, and keeps
// per-cell online aggregates (Welford mean/variance/min/max + 95% CI) that
// survive kill-and-resume byte-identically (see experiment/campaign.hpp).
//
// Usage:
//   h2sim-campaign --out DIR [--trials N] [--wave-seeds N] [--seed-base N]
//                  [--attack off,full] [--pad 0,256] [--dummies 0,2]
//                  [--jobs N] [--resume] [--report-interval SECS]
//                  [--ci-stop HALFWIDTH [--ci-stop-field F]
//                   [--ci-stop-min N]] [--profile] [--max-trials N]
//                  [--site default|small] [--quiet]
//
// The grid is the cross product of the comma-separated axis lists; each cell
// is labeled "attack=A,pad=P,dummies=D". Live telemetry (trials/s, ETA,
// per-cell CI width) goes to stderr; one NDJSON summary line goes to stdout.
// --resume continues from DIR/manifest.json and refuses grids that don't
// match the manifest's config digest.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "experiment/campaign.hpp"

namespace {

using namespace h2sim;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --out DIR [--trials N] [--wave-seeds N] [--seed-base N]\n"
      "          [--attack off,full] [--pad LIST] [--dummies LIST]\n"
      "          [--jobs N] [--resume] [--report-interval SECS]\n"
      "          [--ci-stop HALFWIDTH] [--ci-stop-field FIELD]\n"
      "          [--ci-stop-min N] [--profile] [--max-trials N]\n"
      "          [--site default|small] [--quiet]\n",
      argv0);
  return 1;
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(',', start);
    if (end == std::string::npos) end = s.size();
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  experiment::CampaignOptions opts;
  std::vector<std::string> attacks = {"off"};
  std::vector<std::string> pads = {"0"};
  std::vector<std::string> dummies = {"0"};
  bool small_site = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.out_dir = v;
    } else if (arg == "--trials") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.trials_per_cell = std::strtoull(v, nullptr, 10);
    } else if (arg == "--wave-seeds") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.wave_seeds = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed-base") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.seed_base = std::strtoull(v, nullptr, 10);
    } else if (arg == "--attack") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      attacks = split_list(v);
    } else if (arg == "--pad") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      pads = split_list(v);
    } else if (arg == "--dummies") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      dummies = split_list(v);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.jobs = std::atoi(v);
    } else if (arg == "--resume") {
      opts.resume = true;
    } else if (arg == "--report-interval") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.report_interval_seconds = std::atof(v);
    } else if (arg == "--ci-stop") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.ci_stop_halfwidth = std::atof(v);
    } else if (arg == "--ci-stop-field") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.ci_stop_field = v;
    } else if (arg == "--ci-stop-min") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.ci_stop_min_trials = std::strtoull(v, nullptr, 10);
    } else if (arg == "--profile") {
      opts.profile = true;
    } else if (arg == "--max-trials") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.max_trials_this_run = std::strtoull(v, nullptr, 10);
    } else if (arg == "--site") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "small") == 0) {
        small_site = true;
      } else if (std::strcmp(v, "default") != 0) {
        return usage(argv[0]);
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (opts.out_dir.empty()) return usage(argv[0]);

  // Grid: cross product of the axes, labeled deterministically. Labels feed
  // the manifest's config digest, so axis order is part of the contract.
  for (const std::string& attack : attacks) {
    for (const std::string& pad : pads) {
      for (const std::string& dummy : dummies) {
        experiment::CampaignCell cell;
        cell.label = "attack=" + attack + ",pad=" + pad + ",dummies=" + dummy;
        if (attack == "full") {
          cell.base.attack = experiment::full_attack_config();
        } else if (attack == "off") {
          cell.base.attack = experiment::TrialConfig::default_attack_off();
        } else {
          std::fprintf(stderr, "unknown attack mode: %s\n", attack.c_str());
          return usage(argv[0]);
        }
        cell.base.defense.pad_quantum =
            static_cast<std::size_t>(std::strtoull(pad.c_str(), nullptr, 10));
        cell.base.defense.dummy_count = std::atoi(dummy.c_str());
        if (small_site) {
          cell.base.site.pre_objects = 2;
          cell.base.site.filler_objects = 8;
          cell.base.site.head_fillers = 3;
        }
        opts.cells.push_back(std::move(cell));
      }
    }
  }

  if (!quiet) {
    opts.on_report = [](const experiment::CampaignReport& r) {
      std::fprintf(stderr,
                   "[wave %" PRIu64 "] %" PRIu64 "/%" PRIu64
                   " trials, %.1f trials/s, eta %.0fs",
                   r.wave, r.trials_done, r.trials_target, r.trials_per_sec,
                   r.eta_seconds);
      for (const auto& c : r.cell_status) {
        std::fprintf(stderr, " | %s: n=%" PRIu64 " ci=%.4g%s", c.label.c_str(),
                     c.trials, c.ci95, c.stopped ? " (stopped)" : "");
      }
      std::fprintf(stderr, "\n");
    };
  }

  const experiment::CampaignOutcome out = experiment::run_campaign(opts);
  if (!out.ok) {
    std::fprintf(stderr, "%s\n", out.error.c_str());
    return 1;
  }

  std::printf("{\"type\":\"campaign\",\"cells\":%zu,\"trials_total\":%" PRIu64
              ",\"trials_run\":%" PRIu64
              ",\"complete\":%s,\"aggregates\":\"%s\",\"manifest\":\"%s\","
              "\"peak_rss_kb\":%ld}\n",
              opts.cells.size(), out.trials_total, out.trials_run,
              out.complete ? "true" : "false", out.aggregates_path.c_str(),
              out.manifest_path.c_str(), out.peak_rss_kb);
  return 0;
}
