// Regenerates the behavioral-golden digest corpus
// (tests/golden/trial_digests.txt): one line per (scenario, seed) cell of
// experiment::behavior_digest_matrix(), digesting every protocol-visible
// TrialResult field. The Determinism.BehaviorMatchesGoldenDigests test
// compares live runs against the committed file, so simulator-internal
// optimisations (scheduler, link batching, scenario templates) can prove
// they left the simulated wire untouched.
//
// Usage: h2sim-trialdigest > tests/golden/trial_digests.txt

#include <cstdio>

#include "experiment/digest.hpp"

int main() {
  using namespace h2sim;
  for (const auto& scenario : experiment::behavior_digest_matrix()) {
    for (const std::uint64_t seed : scenario.seeds) {
      experiment::TrialConfig cfg = scenario.config;
      cfg.seed = seed;
      const experiment::TrialResult r = experiment::run_trial(cfg);
      std::printf("%s\n",
                  experiment::digest_line(scenario.label, seed, r).c_str());
    }
  }
  return 0;
}
