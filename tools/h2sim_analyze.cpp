// h2sim-analyze: run the paper's offline analysis pipeline on a wire
// capture. Takes a PCAPNG file (exported by the simulator's capture
// subsystem, or any plain IPv4/TCP/TLS trace) plus a site profile, and
// emits NDJSON verdicts: observed GETs, boundary-detected objects with
// size-database matches, the predicted 8-emblem ranking, partial-inference
// results, and the obs metrics counters the live pipeline would record.
//
// Usage:
//   h2sim-analyze <capture.pcapng> [options]
//     --iface NAME        vantage interface to read (default: "gateway"
//                         when present, else the file's first interface)
//     --server-port N     TCP port identifying the server side (default 443)
//     --pad-quantum N     analyze against the pad-to-quantum site variant
//     --tolerance F       size-identification relative tolerance (default .02)
//     --records           also emit one line per reconstructed TLS record
//
// Exit status: 0 on success (whatever the verdicts), 1 on bad input.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "analysis/boundary.hpp"
#include "analysis/partial.hpp"
#include "analysis/predictor.hpp"
#include "capture/reader.hpp"
#include "defense/defenses.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "web/website.hpp"

namespace {

using namespace h2sim;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <capture.pcapng> [--iface NAME] [--server-port N]\n"
               "          [--pad-quantum N] [--tolerance F] [--records]\n",
               argv0);
  return 1;
}

struct Options {
  std::string file;
  std::string iface;
  int server_port = 443;
  std::size_t pad_quantum = 0;
  double tolerance = 0.02;
  bool records = false;
};

std::optional<Options> parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--iface") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.iface = v;
    } else if (arg == "--server-port") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.server_port = std::atoi(v);
      if (o.server_port <= 0 || o.server_port > 65535) return std::nullopt;
    } else if (arg == "--pad-quantum") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.pad_quantum = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--tolerance") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.tolerance = std::atof(v);
      if (o.tolerance <= 0) return std::nullopt;
    } else if (arg == "--records") {
      o.records = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return std::nullopt;
    } else if (o.file.empty()) {
      o.file = arg;
    } else {
      return std::nullopt;
    }
  }
  if (o.file.empty()) return std::nullopt;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Options> opt = parse_args(argc, argv);
  if (!opt) return usage(argv[0]);

  capture::PcapReader reader;
  std::string error;
  if (!reader.open(opt->file, &error)) {
    std::fprintf(stderr, "h2sim-analyze: %s\n", error.c_str());
    return 1;
  }

  std::uint32_t iface = reader.default_interface();
  if (!opt->iface.empty()) {
    const auto found = reader.find_interface(opt->iface);
    if (!found) {
      std::fprintf(stderr, "h2sim-analyze: no interface named '%s' in %s\n",
                   opt->iface.c_str(), opt->file.c_str());
      return 1;
    }
    iface = *found;
  }
  if (reader.interfaces().empty()) {
    std::fprintf(stderr, "h2sim-analyze: %s has no interfaces\n",
                 opt->file.c_str());
    return 1;
  }

  std::printf("{\"type\":\"capture\",\"file\":\"%s\",\"interfaces\":[",
              json_escape(opt->file).c_str());
  for (std::size_t i = 0; i < reader.interfaces().size(); ++i) {
    std::printf("%s\"%s\"", i ? "," : "",
                json_escape(reader.interfaces()[i].name).c_str());
  }
  std::printf("],\"iface\":\"%s\",\"packets\":%zu,\"skipped_frames\":%llu}\n",
              json_escape(reader.interfaces()[iface].name).c_str(),
              reader.packets_on(iface).size(),
              static_cast<unsigned long long>(reader.skipped_frames()));

  // Reassemble the vantage point's record stream through the live monitor
  // code path; its GET callback gives us the per-GET lines for free.
  capture::ReassemblerConfig rcfg;
  rcfg.server_port = static_cast<net::Port>(opt->server_port);
  capture::TlsRecordReassembler reassembler(rcfg);
  reassembler.monitor().on_get = [](int index, sim::TimePoint t) {
    std::printf("{\"type\":\"get\",\"index\":%d,\"t_ms\":%.6f}\n", index,
                t.to_millis());
  };
  reassembler.feed_all(std::span<const capture::CapturedPacket* const>(
      reader.packets_on(iface)));

  const analysis::PacketTrace& trace = reassembler.trace();
  if (opt->records) {
    for (const analysis::RecordObs& r : trace.records()) {
      std::printf(
          "{\"type\":\"record\",\"t_ms\":%.6f,\"dir\":\"%s\","
          "\"content_type\":%d,\"body_len\":%zu}\n",
          r.time.to_millis(), net::to_string(r.dir),
          static_cast<int>(r.type), r.body_len);
    }
  }

  // Site profile -> the adversary's pre-compiled size databases, exactly as
  // the live harness builds them (including the padded variant when the
  // target deploys the pad-to-quantum defense).
  web::Website site = web::make_isidewith_site();
  if (opt->pad_quantum > 1) site = defense::pad_site(site, opt->pad_quantum);
  analysis::SizeIdentityDb emblem_db;
  emblem_db.set_tolerance(opt->tolerance);
  for (int k = 0; k < 8; ++k) {
    emblem_db.add("party" + std::to_string(k),
                  site.find(site.emblem_paths[static_cast<std::size_t>(k)])->size);
  }
  analysis::SizeIdentityDb html_db;
  html_db.set_tolerance(opt->tolerance);
  html_db.add("html", site.find(site.html_path)->size);

  const std::vector<analysis::DetectedObject> detections =
      analysis::detect_objects(trace);
  bool html_identified = false;
  for (std::size_t i = 0; i < detections.size(); ++i) {
    const analysis::DetectedObject& d = detections[i];
    const auto emblem = emblem_db.identify(d.size_estimate);
    const auto html = html_db.identify(d.size_estimate);
    if (html) html_identified = true;
    std::printf(
        "{\"type\":\"object\",\"index\":%zu,\"size_estimate\":%zu,"
        "\"records\":%zu,\"start_ms\":%.6f,\"end_ms\":%.6f,"
        "\"ended_by_delimiter\":%s,",
        i, d.size_estimate, d.records, d.start.to_millis(), d.end.to_millis(),
        d.ended_by_delimiter ? "true" : "false");
    if (emblem) {
      std::printf("\"match\":\"%s\",\"rel_error\":%.6f}\n",
                  json_escape(emblem->label).c_str(), emblem->rel_error);
    } else if (html) {
      std::printf("\"match\":\"html\",\"rel_error\":%.6f}\n", html->rel_error);
    } else {
      std::printf("\"match\":null}\n");
    }
  }

  const analysis::SequencePrediction pred =
      analysis::predict_sequence(detections, emblem_db);
  bool complete = pred.ranking.size() >= 8;
  std::printf("{\"type\":\"ranking\",\"positions\":[");
  for (std::size_t j = 0; j < pred.ranking.size(); ++j) {
    if (pred.ranking[j].empty()) complete = false;
    std::printf("%s%s", j ? "," : "",
                pred.ranking[j].empty()
                    ? "null"
                    : ("\"" + json_escape(pred.ranking[j]) + "\"").c_str());
  }
  std::printf("],\"complete\":%s,\"html_identified\":%s}\n",
              complete ? "true" : "false", html_identified ? "true" : "false");

  // Partial-multiplexing inference (§VII): explains multiplexed regions the
  // direct size match cannot.
  const analysis::PartialInference partial =
      analysis::infer_objects_partial(detections, emblem_db);
  std::printf(
      "{\"type\":\"partial\",\"direct_matches\":%d,\"subset_matches\":%d,"
      "\"unexplained_regions\":%d}\n",
      partial.direct_matches, partial.subset_matches,
      partial.unexplained_regions);

  // The same counters a live trial records: the monitor above ran against
  // the current obs context, so this is the genuine registry state, not a
  // re-derivation.
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  std::printf("{\"type\":\"metrics\",\"counters\":{");
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    std::printf("%s\"%s\":%llu", first ? "" : ",", json_escape(name).c_str(),
                static_cast<unsigned long long>(value));
    first = false;
  }
  std::printf("}}\n");
  return 0;
}
