// h2sim-capture: run one simulated trial with wire capture enabled and
// write the resulting PCAPNG file. This is the generator for the committed
// golden-trace corpus (tests/golden/): given the same seed, attack mode and
// vantage set it produces a byte-identical file on every machine, so CI can
// sha256-compare regenerated captures against the repository copies.
//
// Usage:
//   h2sim-capture --seed N --out FILE [--attack full|off|single:K]
//                 [--vantage gateway|client|server|all] [--sim-limit SECS]
//                 [--site default|small]
//
// --site small shrinks the filler population (2 pre-objects, 8 fillers,
// 3 head fillers; html + the 8 emblems unchanged) so format/baseline golden
// files stay small; the attack-relevant objects are identical to default.
//
// Prints one NDJSON summary line (trial outcome + capture counters).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "experiment/harness.hpp"

namespace {

using namespace h2sim;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --seed N --out FILE [--attack full|off|single:K]\n"
               "          [--vantage gateway|client|server|all] [--sim-limit SECS]\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  experiment::TrialConfig cfg;
  cfg.attack = experiment::full_attack_config();
  cfg.capture.client_vantage = false;
  cfg.capture.gateway_vantage = true;
  cfg.capture.server_vantage = false;
  std::string attack_mode = "full";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cfg.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cfg.capture.path = v;
    } else if (arg == "--attack") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      attack_mode = v;
      if (attack_mode == "full") {
        cfg.attack = experiment::full_attack_config();
      } else if (attack_mode == "off") {
        cfg.attack = experiment::TrialConfig::default_attack_off();
      } else if (attack_mode.rfind("single:", 0) == 0) {
        const int k = std::atoi(attack_mode.c_str() + 7);
        if (k <= 0) return usage(argv[0]);
        cfg.attack = experiment::single_target_attack_config(k);
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--vantage") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      const std::string vantage = v;
      cfg.capture.client_vantage = false;
      cfg.capture.gateway_vantage = false;
      cfg.capture.server_vantage = false;
      if (vantage == "all") {
        cfg.capture.client_vantage = true;
        cfg.capture.gateway_vantage = true;
        cfg.capture.server_vantage = true;
      } else if (vantage == "gateway") {
        cfg.capture.gateway_vantage = true;
      } else if (vantage == "client") {
        cfg.capture.client_vantage = true;
      } else if (vantage == "server") {
        cfg.capture.server_vantage = true;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--sim-limit") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      const double secs = std::atof(v);
      if (secs <= 0) return usage(argv[0]);
      cfg.sim_limit = sim::Duration::seconds_f(secs);
    } else if (arg == "--site") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      const std::string site = v;
      if (site == "small") {
        cfg.site.pre_objects = 2;
        cfg.site.filler_objects = 8;
        cfg.site.head_fillers = 3;
      } else if (site != "default") {
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }
  if (cfg.capture.path.empty()) return usage(argv[0]);

  const experiment::TrialResult r = experiment::run_trial(cfg);

  std::printf(
      "{\"type\":\"capture_run\",\"seed\":%llu,\"attack\":\"%s\","
      "\"out\":\"%s\",\"page_complete\":%s,\"capture_packets\":%llu,"
      "\"capture_bytes\":%llu,\"records_observed\":%zu,\"gets_counted\":%d,"
      "\"predicted\":[",
      static_cast<unsigned long long>(cfg.seed), attack_mode.c_str(),
      cfg.capture.path.c_str(), r.page_complete ? "true" : "false",
      static_cast<unsigned long long>(r.capture_packets),
      static_cast<unsigned long long>(r.capture_bytes_written),
      r.records_observed, r.gets_counted);
  for (std::size_t j = 0; j < r.predicted.size(); ++j) {
    std::printf("%s\"%s\"", j ? "," : "", r.predicted[j].c_str());
  }
  std::printf("],\"truth\":[");
  for (std::size_t j = 0; j < r.truth.size(); ++j) {
    std::printf("%s%d", j ? "," : "", r.truth[j]);
  }
  std::printf("]}\n");
  return 0;
}
