// Explores the paper's §VII defense direction: "the client can opt for a
// different priority/order of object delivery every time, thereby confusing
// the adversary". The browser randomizes which object is requested at each
// embedded-request slot; the adversary still serializes transmissions, and
// still recovers sizes — but the *order* no longer reveals the ranking.
//
// Usage: defense_randomized_priority [trials]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "cli_args.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;
  using experiment::TablePrinter;
  const int trials = examples::CliArgs(argc, argv, "[trials]").trials(1, 30);

  TablePrinter table({"client behaviour", "positions recovered (mean of 8)",
                      "emblem sizes identified (mean of 8)", "pages completed"});

  for (const bool randomized : {false, true}) {
    std::vector<double> positions, sizes;
    int completed = 0;
    for (int t = 0; t < trials; ++t) {
      experiment::TrialConfig cfg;
      cfg.seed = 64000 + static_cast<std::uint64_t>(t);
      cfg.attack = experiment::full_attack_config();
      cfg.browser.randomize_embedded_order = randomized;
      const auto r = experiment::run_trial(cfg);
      if (!r.page_complete) continue;
      ++completed;
      int pos = 0, sz = 0;
      for (int j = 1; j <= 8; ++j) {
        if (r.success[static_cast<std::size_t>(j)]) ++pos;
        if (r.interest[static_cast<std::size_t>(j)].size_identified) ++sz;
      }
      positions.push_back(pos);
      sizes.push_back(sz);
    }
    table.add_row({randomized ? "randomized request order (defense)"
                              : "deterministic order (default)",
                   TablePrinter::fmt(analysis::mean(positions), 1) + " / 8",
                   TablePrinter::fmt(analysis::mean(sizes), 1) + " / 8",
                   std::to_string(completed) + "/" + std::to_string(trials)});
  }
  table.print("§VII defense: randomized request order vs the full attack (" +
              std::to_string(trials) + " downloads each)");

  std::printf(
      "\nThe defense decouples transmission order from the ranking: the\n"
      "adversary still learns WHICH emblems were fetched (sizes leak), but\n"
      "not the user's ordering. Against this site that still leaks the\n"
      "result set — order randomization helps only when the order itself is\n"
      "the secret, exactly the caveat the paper's future-work section\n"
      "implies.\n");
  return 0;
}
