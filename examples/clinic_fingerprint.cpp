// §VII: "our adversary ... can be extended to other real-world
// websites/scenarios." The classic motivating example from the literature
// the paper builds on ("I know why you went to the clinic"): a health
// information site where each condition page embeds assets whose sizes
// fingerprint the page. The victim visits one of 16 condition pages; the
// serialization attack recovers WHICH one from encrypted traffic.
//
// Usage: clinic_fingerprint [trials]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/boundary.hpp"
#include "analysis/partial.hpp"
#include "analysis/predictor.hpp"
#include "cli_args.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"

using namespace h2sim;

namespace {

constexpr int kConditions = 16;

// Each condition page: a dynamic HTML plus a hero illustration whose size is
// page-specific (clinically: anatomy diagrams differ). The grids are chosen
// clear of the shared-asset sizes so the signature database is unambiguous
// — the standard fingerprinting precondition.
std::size_t hero_size(int condition) {
  static const std::size_t sizes[kConditions] = {
      101300, 104900, 109700, 113100, 118900, 123700, 127900, 133300,
      137500, 142900, 147100, 152700, 158300, 163900, 168700, 174500};
  return sizes[condition];
}
std::size_t html_size(int condition) {
  static const std::size_t sizes[kConditions] = {
      7100, 7630, 8170, 8690, 9230, 9770, 10330, 10870,
      11410, 11990, 12530, 13090, 13630, 14170, 14710, 15290};
  return sizes[condition];
}

web::Website make_clinic_page(int condition) {
  web::Website site;

  // Shared assets requested in a browser burst (same for every condition
  // page); their transmissions blanket the page-specific objects, which is
  // what protects this site at baseline.
  const std::size_t shared_sizes[] = {28000, 45000, 15000, 64000, 38000,
                                      90000, 22000, 52000};
  const double shared_gaps[] = {0, 1, 2, 1, 3, 1, 2, 1};
  for (int i = 0; i < 8; ++i) {
    web::WebObject o;
    o.path = "/static/app" + std::to_string(i) + ".js";
    o.size = shared_sizes[i];
    o.label = "shared" + std::to_string(i);
    site.add_object(o);
    site.schedule.push_back({o.path, sim::Duration::millis_f(shared_gaps[i]),
                             web::Gate::kNone});
  }

  web::WebObject html;
  html.path = "/conditions/c" + std::to_string(condition);
  html.content_type = "text/html";
  html.size = html_size(condition);
  html.dynamic = true;
  html.label = "page_html";
  site.add_object(html);
  site.html_path = html.path;
  site.schedule.push_back({html.path, sim::Duration::millis(6), web::Gate::kNone,
                           0.1, 1.6});

  // The fingerprintable hero image loads while the burst still streams.
  web::WebObject hero;
  hero.path = "/img/hero_c" + std::to_string(condition) + ".png";
  hero.content_type = "image/png";
  hero.size = hero_size(condition);
  hero.pace_factor = 2.0;
  hero.label = "hero";
  site.add_object(hero);
  site.schedule.push_back({hero.path, sim::Duration::millis_f(2),
                           web::Gate::kHtmlFirstByte});

  // Trailing shared assets keep the connection busy past the hero.
  for (int i = 0; i < 3; ++i) {
    web::WebObject o;
    o.path = "/static/tail" + std::to_string(i) + ".js";
    o.size = 30000 + static_cast<std::size_t>(i) * 9000;
    o.label = "tail" + std::to_string(i);
    site.add_object(o);
    site.schedule.push_back({o.path, sim::Duration::millis_f(3),
                             web::Gate::kHtmlFirstByte});
  }
  return site;
}

}  // namespace

int main(int argc, char** argv) {
  const int trials =
      h2sim::examples::CliArgs(argc, argv, "[trials]").trials(1, 40);

  // The adversary's pre-compiled signature database: every asset size on the
  // public site (shared bundles included, so merged regions can be explained
  // away by the §VII subset-sum module).
  analysis::SizeIdentityDb signatures;
  for (int c = 0; c < kConditions; ++c) {
    signatures.add("hero_c" + std::to_string(c), hero_size(c));
    signatures.add("html_c" + std::to_string(c), html_size(c));
  }
  {
    const web::Website probe = make_clinic_page(0);
    for (const auto& [path, obj] : probe.objects()) {
      if (obj.label.rfind("shared", 0) == 0 || obj.label.rfind("tail", 0) == 0) {
        signatures.add(obj.label, obj.size);
      }
    }
  }

  int passive_hits = 0, attacked_hits = 0, total = 0;
  int attacked_completed = 0, attacked_hits_completed = 0;
  for (int t = 0; t < trials; ++t) {
    const int visited = t % kConditions;
    for (const bool attack_on : {false, true}) {
      experiment::TrialConfig cfg;
      cfg.seed = 73000 + static_cast<std::uint64_t>(t);
      cfg.site_builder = [visited] { return make_clinic_page(visited); };
      if (attack_on) {
        // The page HTML is the 9th GET here; trigger the pipeline on it.
        cfg.attack = experiment::single_target_attack_config(9);
      }

      int inferred = -1;
      bool completed = false;
      cfg.wire_log_inspector = [&](const analysis::WireLog&) {};
      cfg.trace_inspector = [&](const analysis::PacketTrace& trace) {
        // Explain detections (merged regions included) against the site
        // catalogue with a tight tolerance (the attacker knows exact sizes),
        // then score conditions by their page-specific labels. Direct
        // single-object matches outweigh subset-sum members.
        const auto detections = analysis::detect_objects(trace);
        analysis::PartialConfig pcfg;
        pcfg.tolerance = 0.004;
        pcfg.max_subset = 3;
        signatures.set_tolerance(0.004);
        int best_score = 0;
        std::vector<int> scores(kConditions, 0);
        for (const auto& d : detections) {
          if (const auto m = signatures.identify(d.size_estimate)) {
            const auto pos = m->label.find("_c");
            if (pos != std::string::npos) {
              scores[std::atoi(m->label.c_str() + pos + 2)] += 2;
            }
            continue;
          }
          const auto expl = analysis::explain_region(d.size_estimate, signatures, pcfg);
          if (!expl) continue;
          for (const auto& label : expl->labels) {
            const auto pos = label.find("_c");
            if (pos != std::string::npos) {
              scores[std::atoi(label.c_str() + pos + 2)] += 1;
            }
          }
        }
        for (int c = 0; c < kConditions; ++c) {
          if (scores[c] > best_score) {
            best_score = scores[c];
            inferred = c;
          }
        }
      };
      const auto r = experiment::run_trial(cfg);
      completed = r.page_complete;
      if (attack_on) {
        ++total;
        if (inferred == visited) ++attacked_hits;
        if (r.page_complete) {
          ++attacked_completed;
          if (inferred == visited) ++attacked_hits_completed;
        }
        if (argc > 2) {
          std::printf("  visit c%-2d -> inferred %2d (complete=%d)\n", visited,
                      inferred, completed ? 1 : 0);
        }
      } else if (inferred == visited) {
        ++passive_hits;
      }
    }
  }

  experiment::TablePrinter table(
      {"adversary", "identified (all visits)", "identified (completed loads)"});
  table.add_row({"passive only",
                 experiment::TablePrinter::pct(100.0 * passive_hits / total, 0),
                 "-"});
  table.add_row(
      {"serialization attack",
       experiment::TablePrinter::pct(100.0 * attacked_hits / total, 0),
       experiment::TablePrinter::pct(
           attacked_completed ? 100.0 * attacked_hits_completed / attacked_completed
                              : 0.0,
           0)});
  table.print("Clinic-page fingerprinting, 16 condition pages (" +
              std::to_string(trials) + " visits each)");
  std::printf("\nthe same pipeline, retargeted by swapping the site model and\n"
              "the signature database — §VII's 'extends to other websites'.\n");
  return 0;
}
