// §VII future-work probe: "Exploring other types of web traffic, such as
// streaming traffic". A DASH-like player fetches a video segment (from an
// adaptive bitrate ladder) plus an audio segment every 2 seconds over
// HTTP/2. Video and audio segments multiplex with each other, but a passive
// observer at the gateway can still read the player's quality adaptation off
// the *combined* region sizes — and the partial-multiplexing explainer
// (analysis/partial.hpp) splits them back into ladder rungs.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/boundary.hpp"
#include "analysis/partial.hpp"
#include "attack/monitor.hpp"
#include "cli_args.hpp"
#include "h2/client.hpp"
#include "h2/server.hpp"
#include "http/message.hpp"
#include "net/topology.hpp"
#include "tcp/tcp_stack.hpp"
#include "tls/session.hpp"
#include "web/server_app.hpp"
#include "web/website.hpp"

using namespace h2sim;

namespace {

// 2-second segments at the ladder bitrate (bits/s) -> bytes.
constexpr int kLadderKbps[] = {400, 1200, 2800, 5600};
constexpr std::size_t kAudioBytes = 24000;  // 96 kbps audio

std::size_t video_bytes(int rung) {
  return static_cast<std::size_t>(kLadderKbps[rung]) * 1000 / 8 * 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      h2sim::examples::CliArgs(argc, argv, "[seed]").seed(1, 7);
  const int segments = 12;

  sim::EventLoop loop;
  sim::Rng rng(seed);

  net::Path path(loop, net::Path::Config{});
  tcp::TcpConfig tcfg;
  tcp::TcpStack server_stack(loop, rng.split(), net::Path::kServerNode, tcfg,
                             [&](net::Packet&& p) { path.send_from_server(std::move(p)); });
  tcp::TcpStack client_stack(loop, rng.split(), net::Path::kClientNode, tcfg,
                             [&](net::Packet&& p) { path.send_from_client(std::move(p)); });
  path.set_server_sink([&](net::Packet&& p) { server_stack.deliver(std::move(p)); });
  path.set_client_sink([&](net::Packet&& p) { client_stack.deliver(std::move(p)); });

  // The streaming origin: every ladder rung x segment index, plus audio.
  web::Website site;
  for (int rung = 0; rung < 4; ++rung) {
    for (int s = 0; s < segments; ++s) {
      web::WebObject o;
      o.path = "/v/" + std::to_string(kLadderKbps[rung]) + "k/seg" + std::to_string(s);
      o.content_type = "video/mp4";
      o.size = video_bytes(rung);
      o.label = "v" + std::to_string(rung);
      site.add_object(o);
    }
  }
  for (int s = 0; s < segments; ++s) {
    web::WebObject o;
    o.path = "/a/seg" + std::to_string(s);
    o.content_type = "audio/mp4";
    o.size = kAudioBytes;
    o.label = "audio";
    site.add_object(o);
  }

  attack::TrafficMonitor monitor;
  path.middlebox().set_tap(
      [&](const net::Packet& p, net::Direction d, sim::TimePoint t) {
        monitor.observe(p, d, t);
      });

  struct Srv {
    std::unique_ptr<tls::TlsSession> tls;
    std::unique_ptr<h2::ServerConnection> conn;
    std::unique_ptr<web::ServerApp> app;
  };
  std::vector<std::unique_ptr<Srv>> srv;
  web::ServerAppConfig app_cfg;
  app_cfg.speed_factor_lo = app_cfg.speed_factor_hi = 1.0;
  server_stack.listen(443, [&](tcp::TcpConnection& c) {
    auto s = std::make_unique<Srv>();
    s->tls = std::make_unique<tls::TlsSession>(c, tls::TlsSession::Role::kServer);
    s->conn = std::make_unique<h2::ServerConnection>(loop, *s->tls,
                                                     h2::ConnectionConfig{}, rng.split());
    s->app = std::make_unique<web::ServerApp>(loop, site, *s->conn, rng.split(), app_cfg);
    srv.push_back(std::move(s));
  });

  tcp::TcpConnection& ct = client_stack.connect(net::Path::kServerNode, 443);
  tls::TlsSession ctls(ct, tls::TlsSession::Role::kClient);
  h2::ClientConnection cc(loop, ctls, h2::ConnectionConfig{}, rng.split());

  // The player: random-walk quality adaptation, one video+audio pair per 2 s.
  std::vector<int> truth;
  int rung = 1;
  h2::ClientConnection::Handlers handlers;
  cc.set_handlers(std::move(handlers));
  for (int s = 0; s < segments; ++s) {
    const int delta = static_cast<int>(rng.uniform(3)) - 1;  // -1, 0, +1
    rung = std::clamp(rung + delta, 0, 3);
    truth.push_back(rung);
    loop.schedule_at(sim::TimePoint::origin() + sim::Duration::millis(500 + 2000 * s),
                     [&cc, rung, s] {
                       http::Request vreq;
                       vreq.authority = "video.example";
                       vreq.path = "/v/" + std::to_string(kLadderKbps[rung]) + "k/seg" +
                                   std::to_string(s);
                       cc.send_request(vreq.to_h2_headers());
                       http::Request areq;
                       areq.authority = "video.example";
                       areq.path = "/a/seg" + std::to_string(s);
                       cc.send_request(areq.to_h2_headers());
                     });
  }
  loop.run(sim::TimePoint::origin() + sim::Duration::seconds(40));

  // The observer: 2-second idle gaps delimit segment pairs; the region total
  // = video + audio, so subtracting the (constant, learnable) audio size
  // reveals the rung. We let the subset-sum explainer do it blind.
  analysis::SizeIdentityDb db;
  for (int r = 0; r < 4; ++r) db.add("v" + std::to_string(r), video_bytes(r));
  db.add("audio", kAudioBytes);

  analysis::BoundaryConfig bc;
  bc.idle_gap = sim::Duration::millis(700);
  const auto detections = analysis::detect_objects(monitor.trace(), bc);

  if (argc > 2) {  // -v: dump raw detections
    for (const auto& d : detections) {
      std::printf("  region [%8.1f..%8.1f] est=%zu records=%zu delim=%d\n",
                  d.start.to_millis(), d.end.to_millis(), d.size_estimate,
                  d.records, d.ended_by_delimiter ? 1 : 0);
    }
  }

  // One playback tick = one burst of regions separated by ~1.4 s of silence;
  // each burst's byte total is exactly video(rung) + audio.
  std::vector<std::size_t> bursts;
  sim::TimePoint last_end;
  for (const auto& d : detections) {
    if (!bursts.empty() && d.start - last_end < sim::Duration::seconds(1)) {
      bursts.back() += d.size_estimate;
    } else {
      bursts.push_back(d.size_estimate);
    }
    last_end = d.end;
  }

  std::vector<int> inferred;
  for (const std::size_t total : bursts) {
    if (total < kAudioBytes) continue;  // handshake-era noise
    const auto expl =
        analysis::explain_region(total, db, analysis::PartialConfig{0.02, 2});
    if (!expl) continue;
    for (const auto& l : expl->labels) {
      if (l[0] == 'v') inferred.push_back(l[1] - '0');
    }
  }

  std::printf("DASH quality-ladder inference from encrypted traffic (seed %llu)\n\n",
              static_cast<unsigned long long>(seed));
  std::printf("segment : ");
  for (int s = 0; s < segments; ++s) std::printf("%3d", s);
  std::printf("\nplayer  : ");
  for (int r : truth) std::printf("%3d", r);
  std::printf("\nobserver: ");
  std::size_t hits = 0;
  for (std::size_t s = 0; s < static_cast<std::size_t>(segments); ++s) {
    if (s < inferred.size()) {
      std::printf("%3d", inferred[s]);
      if (inferred[s] == truth[s]) ++hits;
    } else {
      std::printf("  ?");
    }
  }
  std::printf("\n\nrecovered %zu/%d quality decisions — streaming segments are\n"
              "naturally paced, so the size side-channel needs no serialization\n"
              "attack at all; this is the §VII observation that the technique\n"
              "extends to streaming traffic.\n",
              hits, segments);
  return 0;
}
