// The paper's full Section-V attack, narrated: jitter to space requests,
// count GETs at the gateway, disrupt at the 6th GET (throttle + targeted
// drops) to force the client's RST_STREAM, then serialize the re-requested
// HTML and the 8-image burst with 80 ms spacing — and read the user's party
// ranking out of the encrypted trace.
//
// Usage: serialization_attack [seed]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cli_args.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;
  experiment::TrialConfig cfg;
  cfg.seed = examples::CliArgs(argc, argv, "[seed]").seed(1, 2020);
  cfg.attack = experiment::full_attack_config();

  std::printf("Victim loads www.isidewith.com survey results (seed %llu).\n"
              "Adversary at the gateway: jitter %.0f ms -> trigger at GET #%d ->\n"
              "throttle %.0f Mbps + drop %.0f%% for %.0fs -> spacing %.0f ms.\n\n",
              static_cast<unsigned long long>(cfg.seed),
              cfg.attack.jitter_phase1.to_millis(), cfg.attack.trigger_get_index,
              cfg.attack.throttle_bps / 1e6, cfg.attack.drop_rate * 100,
              cfg.attack.drop_duration.to_seconds(),
              cfg.attack.jitter_phase2.to_millis());

  const experiment::TrialResult r = experiment::run_trial(cfg);

  if (!r.page_complete) {
    std::printf("page load FAILED (%s) — the adversary overreached; rerun with\n"
                "another seed or a gentler drop rate.\n", r.failure_reason.c_str());
    return 1;
  }

  std::printf("page completed in %.1fs; %d reset sweep(s), %llu packets dropped,\n"
              "%llu requests spaced, %d GETs counted at the gateway.\n\n",
              r.page_load_seconds, r.reset_sweeps,
              static_cast<unsigned long long>(r.adversary_drops),
              static_cast<unsigned long long>(r.requests_spaced), r.gets_counted);

  experiment::TablePrinter table(
      {"position", "truth (user's ranking)", "adversary's prediction", "correct"});
  table.add_row({"result HTML", "-", r.success[0] ? "size recovered" : "missed",
                 r.success[0] ? "yes" : "no"});
  for (int j = 0; j < 8; ++j) {
    const std::string truth = "party" + std::to_string(r.truth[static_cast<std::size_t>(j)]);
    const std::string pred =
        static_cast<std::size_t>(j) < r.predicted.size()
            ? r.predicted[static_cast<std::size_t>(j)]
            : "(none)";
    table.add_row({"I" + std::to_string(j + 1), truth, pred,
                   r.success[static_cast<std::size_t>(j) + 1] ? "yes" : "no"});
  }
  table.print("Attack result: the user's political ranking from encrypted traffic");

  int correct = 0;
  for (int i = 1; i <= 8; ++i) {
    if (r.success[static_cast<std::size_t>(i)]) ++correct;
  }
  std::printf("\nRecovered %d/8 ranking positions plus %s the result page —\n"
              "from nothing but TLS record sizes, timing, and a few dropped\n"
              "packets.\n", correct, r.success[0] ? "identified" : "missed");
  return 0;
}
