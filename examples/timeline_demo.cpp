// Runs one attacked trial with full tracing enabled and exports the
// simulation timeline:
//   trial.trace.json   : Chrome trace-event JSON — open in Perfetto
//                        (https://ui.perfetto.dev) or chrome://tracing. The
//                        client/server/network/adversary tracks show the GET
//                        spacing, the drop window, the client's RST_STREAM
//                        sweep (the paper's Figure 6 flush), and the
//                        serialized re-request burst.
//   trial.metrics.json : every registry counter/gauge/histogram for the
//                        trial; the retransmit/drop/reissue counters match
//                        the printed TrialResult exactly.
//
// Usage: timeline_demo [seed] [prefix]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cli_args.hpp"
#include "experiment/harness.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;
  experiment::TrialConfig cfg;
  const examples::CliArgs args(argc, argv, "[seed] [output-prefix]");
  cfg.seed = args.seed(1, 1);
  const std::string prefix = args.str(2, "trial");
  cfg.attack = experiment::full_attack_config();

  // Record everything: every instrumented layer onto the shared timeline.
  obs::Tracer::instance().enable_all();

  obs::MetricsSnapshot snap;
  cfg.metrics_inspector = [&](const obs::MetricsSnapshot& s) { snap = s; };

  const experiment::TrialResult r = experiment::run_trial(cfg);

  const std::string trace_path = prefix + ".trace.json";
  const std::string metrics_path = prefix + ".metrics.json";
  const auto& events = obs::Tracer::instance().events();
  if (!obs::write_chrome_trace(events, trace_path)) {
    std::fprintf(stderr, "timeline_demo: cannot write %s\n", trace_path.c_str());
    return 1;
  }
  if (!obs::write_metrics_json(snap, metrics_path)) {
    std::fprintf(stderr, "timeline_demo: cannot write %s\n", metrics_path.c_str());
    return 1;
  }

  std::printf("attacked trial, seed %llu: page %s in %.2fs\n",
              static_cast<unsigned long long>(cfg.seed),
              r.page_complete ? "complete" : "INCOMPLETE", r.page_load_seconds);
  std::printf("  reset sweeps:      %d  (Fig. 6 RST_STREAM flush%s)\n",
              r.reset_sweeps, r.reset_sweeps > 0 ? " engaged" : " not seen");
  std::printf("  tcp retransmits:   %llu (fast %llu + rto %llu)\n",
              static_cast<unsigned long long>(r.tcp_retransmits),
              static_cast<unsigned long long>(r.tcp_fast_retransmits),
              static_cast<unsigned long long>(r.tcp_rto_retransmits));
  std::printf("  browser reissues:  %d\n", r.browser_reissues);
  std::printf("  adversary drops:   %llu, requests spaced: %llu\n",
              static_cast<unsigned long long>(r.adversary_drops),
              static_cast<unsigned long long>(r.requests_spaced));
  std::printf("%zu trace events -> %s (load in https://ui.perfetto.dev)\n",
              events.size(), trace_path.c_str());
  std::printf("metrics snapshot -> %s\n", metrics_path.c_str());
  return 0;
}
