// A purely passive eavesdropper (the HTTP/1.x-era attacker): no packet
// manipulation, only TLS record observation at the gateway. Compares three
// server deployments:
//   1. HTTP/2 with multiplexing (the privacy claim the paper attacks),
//   2. HTTP/2 with multiplexing disabled (most real deployments, Section V),
//   3. the same with a single-threaded (serial) worker model.
//
// Usage: passive_eavesdropper [trials]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "cli_args.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;
  using experiment::TablePrinter;
  const int trials = examples::CliArgs(argc, argv, "[trials]").trials(1, 30);

  struct Mode {
    const char* name;
    h2::SchedulerKind scheduler;
    bool serial_workers;
  };
  const Mode modes[] = {
      {"HTTP/2, multiplexing on", h2::SchedulerKind::kRoundRobin, false},
      {"HTTP/2, sequential frames", h2::SchedulerKind::kSequential, false},
      {"HTTP/2, single-threaded app", h2::SchedulerKind::kSequential, true},
  };

  TablePrinter table({"server deployment", "emblems identified (mean of 8)",
                      "HTML identified", "emblem DoM (mean)"});
  for (const Mode& mode : modes) {
    std::vector<double> identified, dom;
    std::vector<bool> html_found;
    for (int t = 0; t < trials; ++t) {
      experiment::TrialConfig cfg;
      cfg.seed = 31000 + static_cast<std::uint64_t>(t);
      cfg.attack.enabled = false;  // passive: observation only
      cfg.server_h2.scheduler = mode.scheduler;
      cfg.server_app.serial_workers = mode.serial_workers;
      const auto r = experiment::run_trial(cfg);
      if (!r.page_complete) continue;
      int found = 0;
      double dsum = 0;
      for (int j = 1; j <= 8; ++j) {
        const auto& o = r.interest[static_cast<std::size_t>(j)];
        if (o.size_identified) ++found;
        dsum += o.primary_dom;
      }
      identified.push_back(found);
      dom.push_back(dsum / 8 * 100);
      html_found.push_back(r.interest[0].size_identified);
    }
    table.add_row({mode.name,
                   TablePrinter::fmt(analysis::mean(identified), 1) + " / 8",
                   TablePrinter::pct(analysis::percent_true(html_found), 0),
                   TablePrinter::pct(analysis::mean(dom), 1)});
  }
  table.print("Passive eavesdropper vs server deployment (" +
              std::to_string(trials) + " downloads each)");

  std::printf(
      "\nMultiplexing starves the passive attacker; the common\n"
      "multiplexing-disabled deployments hand over nearly everything. This is\n"
      "why the paper calls HTTP/2 multiplexing an undependable privacy\n"
      "mechanism: it takes only a modest on-path adversary (see the\n"
      "serialization_attack example) to switch a site from column 1 to row 3\n"
      "behaviour.\n");
  return 0;
}
