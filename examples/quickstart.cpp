// Quickstart: load the isidewith-like page over simulated HTTPS + HTTP/2,
// print the degree of multiplexing of every object of interest and what a
// passive adversary's boundary detector can (not) recover.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "cli_args.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;

  experiment::TrialConfig cfg;
  cfg.seed = examples::CliArgs(argc, argv, "[seed]").seed(1, 1);
  cfg.attack.enabled = false;  // plain page load, no adversary

  std::printf("Loading www.isidewith.com result page (seed %llu)...\n",
              static_cast<unsigned long long>(cfg.seed));
  const experiment::TrialResult r = experiment::run_trial(cfg);

  std::printf("page complete: %s   load time: %.2fs   TLS records observed: %zu\n",
              r.page_complete ? "yes" : "no", r.page_load_seconds,
              r.records_observed);
  std::printf("TCP retransmissions: %llu   browser reissues: %d\n",
              static_cast<unsigned long long>(r.tcp_retransmits),
              r.browser_reissues);

  experiment::TablePrinter table(
      {"object", "DoM (primary copy)", "copies", "delivered", "size recovered"});
  for (const auto& o : r.interest) {
    table.add_row({o.label, experiment::TablePrinter::pct(o.primary_dom * 100, 1),
                   std::to_string(o.copies), o.delivered ? "yes" : "no",
                   o.size_identified ? "yes" : "no"});
  }
  table.print("Objects of interest under multiplexed HTTP/2 (no adversary)");

  std::printf(
      "\nWith multiplexing on, the passive detector recovers almost nothing —\n"
      "this is the privacy claim the paper attacks. Run the\n"
      "serialization_attack example to see the adversary break it.\n");
  return 0;
}
