// Exports everything both sides of the experiment see to CSV for external
// analysis (spreadsheets, pandas, gnuplot):
//   <prefix>_records.csv : the adversary's observed TLS records
//   <prefix>_wire.csv    : the ground-truth server wire log (frame level)
//   <prefix>_objects.csv : boundary-detector output with identification
//
// Usage: trace_export [seed] [attack|none] [prefix]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "analysis/boundary.hpp"
#include "analysis/predictor.hpp"
#include "cli_args.hpp"
#include "experiment/harness.hpp"

namespace {

/// Opens `path`, writes the header line, hands the stream to `rows`, and
/// closes it. Returns false (after complaining on stderr) when the file
/// cannot be opened or a write fails.
bool write_csv(const std::string& path, const char* header,
               const std::function<void(FILE*)>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "trace_export: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  std::fprintf(f, "%s\n", header);
  rows(f);
  const bool ok = std::ferror(f) == 0;
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "trace_export: write to %s failed\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace h2sim;
  experiment::TrialConfig cfg;
  const examples::CliArgs args(argc, argv, "[seed] [attack|none] [prefix]");
  cfg.seed = args.seed(1, 1);
  const bool attack = args.choice(2, "none", "mode", {"attack", "none"}) ==
                      "attack";
  const std::string prefix = args.str(3, "trace");
  if (attack) cfg.attack = experiment::full_attack_config();

  analysis::SizeIdentityDb db;
  for (int k = 0; k < 8; ++k) {
    db.add("party" + std::to_string(k),
           cfg.site.emblem_sizes[static_cast<std::size_t>(k)]);
  }
  db.add("html", cfg.site.html_size);

  bool export_ok = true;
  cfg.trace_inspector = [&](const analysis::PacketTrace& trace) {
    export_ok &= write_csv(
        prefix + "_records.csv", "time_ms,direction,content_type,body_len",
        [&](FILE* f) {
          for (const auto& r : trace.records()) {
            std::fprintf(f, "%.3f,%s,%d,%zu\n", r.time.to_millis(),
                         r.dir == net::Direction::kClientToServer ? "c2s" : "s2c",
                         static_cast<int>(r.type), r.body_len);
          }
        });
    export_ok &= write_csv(
        prefix + "_objects.csv",
        "start_ms,end_ms,size_estimate,records,delimiter,identified",
        [&](FILE* f) {
          for (const auto& d : analysis::detect_objects(trace)) {
            const auto m = db.identify(d.size_estimate);
            std::fprintf(f, "%.3f,%.3f,%zu,%zu,%d,%s\n", d.start.to_millis(),
                         d.end.to_millis(), d.size_estimate, d.records,
                         d.ended_by_delimiter ? 1 : 0,
                         m ? m->label.c_str() : "");
          }
        });
  };
  cfg.wire_log_inspector = [&](const analysis::WireLog& log) {
    export_ok &= write_csv(
        prefix + "_wire.csv", "time_ms,stream_id,object,is_data,bytes,end_stream",
        [&](FILE* f) {
          for (const auto& e : log.events()) {
            std::fprintf(f, "%.3f,%u,%s,%d,%zu,%d\n", e.time.to_millis(),
                         e.stream_id, e.object.c_str(), e.is_data ? 1 : 0,
                         e.data_bytes, e.end_stream ? 1 : 0);
          }
        });
  };

  const auto r = experiment::run_trial(cfg);
  if (!export_ok) return 1;
  std::printf("trial done: complete=%s records=%zu -> %s_{records,wire,objects}.csv\n",
              r.page_complete ? "yes" : "no", r.records_observed, prefix.c_str());
  return 0;
}
