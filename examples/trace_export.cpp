// Exports everything both sides of the experiment see to CSV for external
// analysis (spreadsheets, pandas, gnuplot):
//   <prefix>_records.csv : the adversary's observed TLS records
//   <prefix>_wire.csv    : the ground-truth server wire log (frame level)
//   <prefix>_objects.csv : boundary-detector output with identification
//
// Usage: trace_export [seed] [attack|none] [prefix]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/boundary.hpp"
#include "analysis/predictor.hpp"
#include "experiment/harness.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;
  experiment::TrialConfig cfg;
  cfg.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const bool attack = argc > 2 && std::strcmp(argv[2], "attack") == 0;
  const std::string prefix = argc > 3 ? argv[3] : "trace";
  if (attack) cfg.attack = experiment::full_attack_config();

  analysis::SizeIdentityDb db;
  for (int k = 0; k < 8; ++k) {
    db.add("party" + std::to_string(k),
           cfg.site.emblem_sizes[static_cast<std::size_t>(k)]);
  }
  db.add("html", cfg.site.html_size);

  cfg.trace_inspector = [&](const analysis::PacketTrace& trace) {
    {
      FILE* f = std::fopen((prefix + "_records.csv").c_str(), "w");
      std::fprintf(f, "time_ms,direction,content_type,body_len\n");
      for (const auto& r : trace.records()) {
        std::fprintf(f, "%.3f,%s,%d,%zu\n", r.time.to_millis(),
                     r.dir == net::Direction::kClientToServer ? "c2s" : "s2c",
                     static_cast<int>(r.type), r.body_len);
      }
      std::fclose(f);
    }
    {
      FILE* f = std::fopen((prefix + "_objects.csv").c_str(), "w");
      std::fprintf(f, "start_ms,end_ms,size_estimate,records,delimiter,identified\n");
      for (const auto& d : analysis::detect_objects(trace)) {
        const auto m = db.identify(d.size_estimate);
        std::fprintf(f, "%.3f,%.3f,%zu,%zu,%d,%s\n", d.start.to_millis(),
                     d.end.to_millis(), d.size_estimate, d.records,
                     d.ended_by_delimiter ? 1 : 0,
                     m ? m->label.c_str() : "");
      }
      std::fclose(f);
    }
  };
  cfg.wire_log_inspector = [&](const analysis::WireLog& log) {
    FILE* f = std::fopen((prefix + "_wire.csv").c_str(), "w");
    std::fprintf(f, "time_ms,stream_id,object,is_data,bytes,end_stream\n");
    for (const auto& e : log.events()) {
      std::fprintf(f, "%.3f,%u,%s,%d,%zu,%d\n", e.time.to_millis(), e.stream_id,
                   e.object.c_str(), e.is_data ? 1 : 0, e.data_bytes,
                   e.end_stream ? 1 : 0);
    }
    std::fclose(f);
  };

  const auto r = experiment::run_trial(cfg);
  std::printf("trial done: complete=%s records=%zu -> %s_{records,wire,objects}.csv\n",
              r.page_complete ? "yes" : "no", r.records_observed, prefix.c_str());
  return 0;
}
