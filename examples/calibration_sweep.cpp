// Maintainer tool: the baseline calibration grid. The paper's Section-IV
// baseline (32 % of downloads leave the HTML non-multiplexed) emerges from
// the interplay of server pacing and the user's think-time spread; this
// sweep shows how the calibrated operating point sits in that space, so
// substrate changes can be re-tuned quickly.
//
// Usage: calibration_sweep [trials-per-cell]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "cli_args.hpp"
#include "experiment/harness.hpp"
#include "experiment/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace h2sim;
  using experiment::TablePrinter;
  const int trials =
      examples::CliArgs(argc, argv, "[trials-per-cell]").trials(1, 25);

  TablePrinter table({"static chunk interval", "speed-factor spread",
                      "html not muxed", "html DoM (mean)", "emblem DoM (mean)",
                      "page load (mean)"});

  const double intervals_us[] = {250, 400, 650};
  const std::pair<double, double> spreads[] = {{0.9, 1.1}, {0.55, 1.45}, {0.3, 1.8}};

  for (const double us : intervals_us) {
    for (const auto& [lo, hi] : spreads) {
      std::vector<bool> nomux;
      std::vector<double> html_dom, emblem_dom, load;
      for (int t = 0; t < trials; ++t) {
        experiment::TrialConfig cfg;
        cfg.seed = 61000 + static_cast<std::uint64_t>(t);
        cfg.attack.enabled = false;
        cfg.server_app.static_chunk_interval =
            sim::Duration::nanos(static_cast<std::int64_t>(us * 1000));
        cfg.server_app.speed_factor_lo = lo;
        cfg.server_app.speed_factor_hi = hi;
        const auto r = experiment::run_trial(cfg);
        if (!r.page_complete) continue;
        nomux.push_back(r.interest[0].primary_serialized);
        html_dom.push_back(r.interest[0].primary_dom * 100);
        double ed = 0;
        for (int j = 1; j <= 8; ++j) {
          ed += r.interest[static_cast<std::size_t>(j)].primary_dom * 100;
        }
        emblem_dom.push_back(ed / 8);
        load.push_back(r.page_load_seconds);
      }
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%.0f us", us);
      char spread[32];
      std::snprintf(spread, sizeof(spread), "[%.2f, %.2f]", lo, hi);
      table.add_row({cell, spread,
                     TablePrinter::pct(analysis::percent_true(nomux), 0),
                     TablePrinter::pct(analysis::mean(html_dom), 1),
                     TablePrinter::pct(analysis::mean(emblem_dom), 1),
                     TablePrinter::fmt(analysis::mean(load), 2) + " s"});
    }
  }
  table.print("Baseline calibration grid (paper targets: 32% not muxed; emblem DoM 80-99%)");
  std::printf("\nshipping operating point: 400 us chunks, speed spread [0.55, 1.45].\n");
  return 0;
}
