#pragma once

// Shared argv handling for the examples: strict positional parsing with
// range validation and a uniform usage message. Every example used to do
// `argc > 1 ? std::atoi(argv[1]) : def`, which silently turned
// `./quickstart garbage` into seed 0; now malformed or out-of-range
// arguments print the example's usage line and exit with status 2, and
// `--help`/`-h` prints it and exits 0.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>

namespace h2sim::examples {

class CliArgs {
 public:
  /// `synopsis` is the part after the program name, e.g. "[trials]" or
  /// "[seed] [output-prefix]".
  CliArgs(int argc, char** argv, std::string synopsis)
      : argc_(argc), argv_(argv), synopsis_(std::move(synopsis)) {
    for (int i = 1; i < argc_; ++i) {
      if (!std::strcmp(argv_[i], "--help") || !std::strcmp(argv_[i], "-h")) {
        std::printf("usage: %s %s\n", argv_[0], synopsis_.c_str());
        std::exit(0);
      }
    }
    if (argc_ > max_positional(synopsis_) + 1) {
      fail("argument", argv_[max_positional(synopsis_) + 1]);
    }
  }

  /// Positional `pos` as an integer in [min, max]; `def` when absent.
  long long int_arg(int pos, long long def, long long min, long long max,
                    const char* name) const {
    if (pos >= argc_) return def;
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(argv_[pos], &end, 10);
    if (errno != 0 || end == argv_[pos] || *end != '\0' || v < min || v > max) {
      fail(name, argv_[pos]);
    }
    return v;
  }

  /// Trial counts: positive, with a sanity ceiling.
  int trials(int pos, int def) const {
    return static_cast<int>(int_arg(pos, def, 1, 1'000'000, "trial count"));
  }

  /// RNG seeds: any non-negative 64-bit value.
  std::uint64_t seed(int pos, std::uint64_t def) const {
    if (pos >= argc_) return def;
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(argv_[pos], &end, 10);
    if (errno != 0 || end == argv_[pos] || *end != '\0' ||
        argv_[pos][0] == '-') {
      fail("seed", argv_[pos]);
    }
    return v;
  }

  std::string str(int pos, const std::string& def) const {
    return pos < argc_ ? argv_[pos] : def;
  }

  /// Positional `pos` restricted to an enumerated set of words.
  std::string choice(int pos, const std::string& def, const char* name,
                     std::initializer_list<const char*> options) const {
    if (pos >= argc_) return def;
    for (const char* opt : options) {
      if (!std::strcmp(argv_[pos], opt)) return opt;
    }
    fail(name, argv_[pos]);
  }

 private:
  /// Count of "[...]" groups in the synopsis = how many positionals exist.
  static int max_positional(const std::string& synopsis) {
    int n = 0;
    for (char c : synopsis) n += c == '[';
    return n;
  }

  [[noreturn]] void fail(const char* name, const char* got) const {
    std::fprintf(stderr, "%s: invalid %s '%s'\nusage: %s %s\n", argv_[0], name,
                 got, argv_[0], synopsis_.c_str());
    std::exit(2);
  }

  int argc_;
  char** argv_;
  std::string synopsis_;
};

}  // namespace h2sim::examples
