#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "h2/frame.hpp"
#include "h2/stream.hpp"
#include "hpack/decoder.hpp"
#include "hpack/encoder.hpp"
#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"
#include "tls/session.hpp"

namespace h2sim::h2 {

/// How the connection multiplexes queued DATA across streams — the exact
/// behaviour the paper's privacy argument rests on.
enum class SchedulerKind {
  /// One DATA quantum per ready stream, rotating: the "multi-threaded"
  /// HTTP/2 server of the paper. Fine-grained interleaving.
  kRoundRobin,
  /// Finish the lowest-id ready stream before any other: "multiplexing
  /// disabled" (the default-config servers the paper mentions in §V).
  kSequential,
  /// Uniform-random ready stream per quantum: the §VII "confuse the
  /// adversary" direction.
  kRandom,
  /// PRIORITY-weight-proportional quanta (RFC 7540 §5.3 weights): streams
  /// with higher weight win the quantum more often.
  kWeighted,
};

const char* to_string(SchedulerKind k);

struct ConnectionConfig {
  SchedulerKind scheduler = SchedulerKind::kRoundRobin;
  /// Max DATA payload written per scheduler quantum. Controls interleaving
  /// granularity: one quantum becomes one frame, one TLS record.
  std::size_t data_chunk_size = 2048;
  std::uint32_t max_frame_size = kDefaultMaxFrameSize;     // advertised
  std::uint32_t initial_window_size = 131072;              // advertised
  std::uint32_t max_concurrent_streams = 100;              // advertised
  bool enable_push = false;                                // advertised
  /// Extra connection-level window granted at startup (browsers grant
  /// megabytes so the connection window never throttles).
  std::uint32_t connection_window_bonus = 12 * 1024 * 1024;
  /// Stop writing DATA while the TCP send buffer holds more than this many
  /// unsent+unacked bytes (socket backpressure).
  std::size_t tcp_send_watermark = 512 * 1024;
  /// Connection-level WINDOW_UPDATE batching: credit the peer once this many
  /// bytes have been consumed (Firefox-like cadence). Smaller values emit
  /// chattier client traffic — the supply of payload packets the paper's
  /// fast-retransmit storms feed on.
  std::size_t window_update_batch = 32768;
};

struct ConnectionStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t data_frames_sent = 0;
  std::uint64_t data_bytes_sent = 0;
  std::uint64_t data_bytes_received = 0;
  std::uint64_t headers_frames_sent = 0;
  std::uint64_t rst_sent = 0;
  std::uint64_t rst_received = 0;
  std::uint64_t pings_sent = 0;
  std::uint64_t goaway_sent = 0;
  std::uint64_t push_promises_sent = 0;
  std::uint64_t streams_opened = 0;
};

/// Base HTTP/2 connection over a TlsSession: framing, settings negotiation,
/// HPACK, flow control, stream lifecycle and the multiplexing send scheduler.
/// ServerConnection / ClientConnection specialize the semantic layer.
class Connection {
 public:
  Connection(sim::EventLoop& loop, tls::TlsSession& tls, bool is_server,
             ConnectionConfig cfg, sim::Rng rng);
  virtual ~Connection() = default;

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Queues response/request body bytes on a stream; the scheduler decides
  /// when they reach the wire.
  void enqueue_data(std::uint32_t stream_id, std::span<const std::uint8_t> bytes,
                    bool end_stream);

  void send_headers(std::uint32_t stream_id, const hpack::HeaderList& headers,
                    bool end_stream);
  void send_rst_stream(std::uint32_t stream_id, ErrorCode code);
  void send_goaway(ErrorCode code, std::string debug = "");
  void send_ping();
  void send_priority(std::uint32_t stream_id, const PriorityPayload& p);

  Stream* find_stream(std::uint32_t id);
  bool ready() const { return handshake_done_; }
  bool dead() const { return dead_; }
  const ConnectionStats& stats() const { return stats_; }
  const ConnectionConfig& config() const { return cfg_; }
  sim::EventLoop& loop() { return loop_; }

  /// Number of streams currently holding queued data — the paper's "number
  /// of objects in the server queue".
  std::size_t streams_with_pending_data() const;

  /// Total bytes sitting in stream send queues.
  std::size_t pending_data_bytes() const;

  /// Observation hook invoked for every frame written, in wire order. Used
  /// by the experiment harness to build the ground-truth wire log (each
  /// frame becomes exactly one TLS record).
  void set_frame_tap(std::function<void(const Frame&, sim::TimePoint)> tap) {
    frame_tap_ = std::move(tap);
  }

 protected:
  // --- Hooks for the semantic layer ---
  virtual void on_remote_headers(std::uint32_t stream_id,
                                 const hpack::HeaderList& headers,
                                 bool end_stream) = 0;
  virtual void on_remote_data(std::uint32_t stream_id,
                              std::span<const std::uint8_t> bytes,
                              bool end_stream) = 0;
  virtual void on_remote_rst(std::uint32_t stream_id, ErrorCode code) = 0;
  virtual void on_remote_goaway(const GoawayPayload&) {}
  virtual void on_remote_push_promise(std::uint32_t /*parent*/,
                                      std::uint32_t /*promised*/,
                                      const hpack::HeaderList&) {}
  virtual void on_ready() {}  // settings handshake complete
  virtual void on_dead(std::string_view /*reason*/) {}

  Stream& create_stream(std::uint32_t id);
  void destroy_stream_if_closed(std::uint32_t id);
  /// Shared per-connection HPACK encode context (HEADERS and PUSH_PROMISE
  /// must use the same dynamic table).
  hpack::Encoder& header_encoder() { return hpack_encoder_; }
  void connection_error(ErrorCode code, const std::string& msg);
  void write_frame(Frame&& f);
  void pump();

  sim::EventLoop& loop_;
  tls::TlsSession& tls_;
  const bool is_server_;
  ConnectionConfig cfg_;
  sim::Rng rng_;

  std::map<std::uint32_t, std::unique_ptr<Stream>> streams_;
  std::uint32_t last_stream_id_ = 0;  // one-entry find_stream cache
  Stream* last_stream_ = nullptr;
  std::uint32_t highest_remote_stream_ = 0;
  std::uint32_t next_local_stream_;
  bool handshake_done_ = false;
  bool preface_received_ = false;
  bool dead_ = false;
  std::optional<std::uint32_t> goaway_last_stream_;  // set when GOAWAY received

  // Peer settings as currently applied to our sending side.
  std::uint32_t peer_max_frame_size_ = kDefaultMaxFrameSize;
  std::int64_t peer_initial_window_ = kDefaultInitialWindow;
  std::uint32_t peer_max_concurrent_ = 0xffffffff;
  bool peer_push_enabled_ = true;

  FlowWindow conn_send_window_{kDefaultInitialWindow};
  FlowWindow conn_recv_window_{kDefaultInitialWindow};
  std::int64_t conn_recv_consumed_ = 0;

  ConnectionStats stats_;

 private:
  void on_tls_established();
  void on_plaintext(std::span<const std::uint8_t> bytes);
  void handle_frame(Frame&& f);
  void handle_data(const Frame& f);
  void handle_headers(Frame&& f);
  void handle_continuation(Frame&& f);
  void finish_header_block(std::uint32_t stream_id, bool end_stream,
                           bool is_push_promise, std::uint32_t promised_id);
  void handle_settings(const Frame& f);
  void handle_rst(const Frame& f);
  void handle_window_update(const Frame& f);
  void handle_ping(const Frame& f);
  void handle_goaway(const Frame& f);
  void handle_priority(const Frame& f);
  void handle_push_promise(Frame&& f);
  void send_initial_settings();
  std::uint32_t pick_ready_stream();
  void replenish_recv_windows(std::uint32_t stream_id, std::size_t consumed);

  FrameDecoder decoder_;
  hpack::Encoder hpack_encoder_;
  hpack::Decoder hpack_decoder_;
  std::vector<std::uint8_t> preface_buffer_;

  // CONTINUATION reassembly state.
  bool assembling_headers_ = false;
  std::uint32_t assembling_stream_ = 0;
  bool assembling_end_stream_ = false;
  bool assembling_is_push_ = false;
  std::uint32_t assembling_promised_ = 0;
  std::vector<std::uint8_t> header_block_;

  std::vector<std::uint32_t> rr_order_;  // round-robin rotation state
  std::function<void(const Frame&, sim::TimePoint)> frame_tap_;

  // Process-wide observability handles (aggregate across connections).
  struct Metrics {
    obs::Counter frames_sent;
    obs::Counter frames_received;
    obs::Counter data_bytes_sent;
    obs::Counter rst_sent;
    obs::Counter rst_received;
    obs::Counter streams_opened;
    obs::Counter flow_stalls;
  };
  Metrics metrics_;
  /// Emits a stream state-transition instant when `before` differs from the
  /// stream's current state (call after any state-changing operation).
  void trace_stream_state(std::uint32_t stream_id, StreamState before);

 protected:
  std::uint32_t next_promised_stream_ = 2;  // server push ids (even)
};

}  // namespace h2sim::h2
