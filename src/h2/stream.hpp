#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "h2/flow_control.hpp"
#include "h2/frame.hpp"

namespace h2sim::h2 {

/// RFC 7540 §5.1 stream states.
enum class StreamState {
  kIdle,
  kReservedLocal,
  kReservedRemote,
  kOpen,
  kHalfClosedLocal,
  kHalfClosedRemote,
  kClosed,
};

const char* to_string(StreamState s);

/// Per-stream bookkeeping: state machine, flow windows, and the send-side
/// data queue. The queue is the simulated "server queue" of the paper's
/// Figure 3 — object segments wait here until the multiplexing scheduler
/// picks them, and an RST_STREAM flushes them (Figure 6).
class Stream {
 public:
  Stream(std::uint32_t id, std::int64_t send_window, std::int64_t recv_window)
      : id_(id), send_window_(send_window), recv_window_(recv_window) {}

  std::uint32_t id() const { return id_; }
  StreamState state() const { return state_; }
  bool closed() const { return state_ == StreamState::kClosed; }

  // --- State transitions; return false on a protocol violation ---
  bool on_send_headers(bool end_stream);
  bool on_recv_headers(bool end_stream);
  bool on_send_data_end();  // END_STREAM on a sent DATA frame
  bool on_recv_data(bool end_stream);
  void on_send_rst() { state_ = StreamState::kClosed; }
  void on_recv_rst() { state_ = StreamState::kClosed; }
  bool on_send_push_promise();  // transitions a new stream to reserved-local
  bool on_recv_push_promise();

  bool can_recv_data() const {
    return state_ == StreamState::kOpen || state_ == StreamState::kHalfClosedLocal;
  }
  bool can_send_data() const {
    return state_ == StreamState::kOpen || state_ == StreamState::kHalfClosedRemote;
  }

  // --- Send queue ---
  void enqueue(std::span<const std::uint8_t> bytes, bool end_stream);
  /// Removes up to n bytes from the queue front.
  std::vector<std::uint8_t> dequeue(std::size_t n);
  void flush_queue();  // RST_STREAM: discard everything pending
  std::size_t queued_bytes() const { return queue_.size() - head_; }
  bool end_stream_queued() const { return end_queued_; }
  bool has_pending_output() const {
    return queue_.size() > head_ || end_queued_;
  }

  FlowWindow& send_window() { return send_window_; }
  FlowWindow& recv_window() { return recv_window_; }

  /// Received-but-not-yet-credited bytes (window update batching).
  void note_consumed(std::size_t n) { consumed_unacked_ += n; }
  std::size_t consumed_unacked() const { return consumed_unacked_; }
  void clear_consumed() { consumed_unacked_ = 0; }

  std::uint8_t weight = 16;  // from PRIORITY frames; informational

 private:
  std::uint32_t id_;
  StreamState state_ = StreamState::kIdle;
  FlowWindow send_window_;
  FlowWindow recv_window_;
  // Flat send queue with a consumed-prefix offset: dequeue reads from
  // contiguous storage and the prefix is reclaimed lazily on enqueue.
  std::vector<std::uint8_t> queue_;
  std::size_t head_ = 0;
  bool end_queued_ = false;
  std::size_t consumed_unacked_ = 0;
};

}  // namespace h2sim::h2
