#pragma once

#include <functional>
#include <string>

#include "h2/connection.hpp"

namespace h2sim::h2 {

/// Server side of an HTTP/2 connection: surfaces requests to the application
/// and provides response emission (headers, body chunks, push).
class ServerConnection : public Connection {
 public:
  struct Handlers {
    /// A complete request header block arrived (our workloads are GETs with
    /// no body, so this is the whole request).
    std::function<void(std::uint32_t stream_id, const hpack::HeaderList&)>
        on_request;
    /// The peer reset a stream: the application must stop producing body
    /// chunks for it (its queue has already been flushed).
    std::function<void(std::uint32_t stream_id, ErrorCode)> on_stream_reset;
    std::function<void(std::string_view reason)> on_connection_dead;
  };

  ServerConnection(sim::EventLoop& loop, tls::TlsSession& tls,
                   ConnectionConfig cfg, sim::Rng rng)
      : Connection(loop, tls, /*is_server=*/true, cfg, rng) {}

  void set_handlers(Handlers h) { handlers_ = std::move(h); }

  /// Sends response HEADERS with :status plus extras.
  void respond_headers(std::uint32_t stream_id, int status,
                       const hpack::HeaderList& extra = {},
                       bool end_stream = false);

  /// Queues one body chunk; the multiplexing scheduler owns wire timing.
  void send_body_chunk(std::uint32_t stream_id,
                       std::span<const std::uint8_t> bytes, bool end_stream) {
    enqueue_data(stream_id, bytes, end_stream);
  }

  /// Server push: announces `request_headers` on `parent` and returns the
  /// promised stream id (0 if the peer disabled push).
  std::uint32_t push(std::uint32_t parent, const hpack::HeaderList& request_headers);

 protected:
  void on_remote_headers(std::uint32_t stream_id, const hpack::HeaderList& headers,
                         bool end_stream) override;
  void on_remote_data(std::uint32_t, std::span<const std::uint8_t>,
                      bool) override {}
  void on_remote_rst(std::uint32_t stream_id, ErrorCode code) override {
    if (handlers_.on_stream_reset) handlers_.on_stream_reset(stream_id, code);
  }
  void on_dead(std::string_view reason) override {
    if (handlers_.on_connection_dead) handlers_.on_connection_dead(reason);
  }

 private:
  Handlers handlers_;
};

}  // namespace h2sim::h2
