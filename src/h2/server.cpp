#include "h2/server.hpp"

namespace h2sim::h2 {

void ServerConnection::respond_headers(std::uint32_t stream_id, int status,
                                       const hpack::HeaderList& extra,
                                       bool end_stream) {
  hpack::HeaderList headers;
  headers.push_back({":status", std::to_string(status)});
  headers.insert(headers.end(), extra.begin(), extra.end());
  send_headers(stream_id, headers, end_stream);
}

std::uint32_t ServerConnection::push(std::uint32_t parent,
                                     const hpack::HeaderList& request_headers) {
  if (!peer_push_enabled_) return 0;
  Stream* parent_stream = find_stream(parent);
  if (!parent_stream) return 0;

  const std::uint32_t promised = next_promised_stream_;
  next_promised_stream_ += 2;
  Stream& s = create_stream(promised);
  s.on_send_push_promise();

  // PUSH_PROMISE carries a header block through the same HPACK context as
  // HEADERS frames.
  const std::vector<std::uint8_t> block = header_encoder().encode(request_headers);
  Frame f;
  f.type = FrameType::kPushPromise;
  f.stream_id = parent;
  f.flags = flags::kEndHeaders;
  f.payload = encode_push_promise(promised, block);
  ++stats_.push_promises_sent;
  write_frame(std::move(f));
  return promised;
}

void ServerConnection::on_remote_headers(std::uint32_t stream_id,
                                         const hpack::HeaderList& headers,
                                         bool /*end_stream*/) {
  if (handlers_.on_request) handlers_.on_request(stream_id, headers);
}

}  // namespace h2sim::h2
