#pragma once

#include <functional>

#include "h2/connection.hpp"

namespace h2sim::h2 {

/// Client side of an HTTP/2 connection: opens request streams and surfaces
/// response events to the browser model.
class ClientConnection : public Connection {
 public:
  struct Handlers {
    std::function<void()> on_ready;  // settings sent; requests may flow
    std::function<void(std::uint32_t stream_id, const hpack::HeaderList&)>
        on_response_headers;
    std::function<void(std::uint32_t stream_id, std::span<const std::uint8_t>,
                       bool end_stream)>
        on_response_data;
    std::function<void(std::uint32_t stream_id, ErrorCode)> on_reset;
    std::function<void(std::uint32_t parent, std::uint32_t promised,
                       const hpack::HeaderList&)>
        on_push_promise;
    std::function<void(std::string_view reason)> on_connection_dead;
    std::function<void(const GoawayPayload&)> on_goaway;
  };

  ClientConnection(sim::EventLoop& loop, tls::TlsSession& tls,
                   ConnectionConfig cfg, sim::Rng rng)
      : Connection(loop, tls, /*is_server=*/false, cfg, rng) {}

  void set_handlers(Handlers h) { handlers_ = std::move(h); }

  /// Opens a new stream carrying a bodyless request (END_STREAM on HEADERS).
  /// Returns the stream id.
  std::uint32_t send_request(const hpack::HeaderList& headers);

  /// RST_STREAM for a pending request (the paper's reset-stream mechanic).
  void cancel(std::uint32_t stream_id, ErrorCode code = ErrorCode::kCancel) {
    send_rst_stream(stream_id, code);
  }

 protected:
  void on_ready() override {
    if (handlers_.on_ready) handlers_.on_ready();
  }
  void on_remote_headers(std::uint32_t stream_id, const hpack::HeaderList& headers,
                         bool /*end_stream*/) override {
    if (handlers_.on_response_headers) {
      handlers_.on_response_headers(stream_id, headers);
    }
  }
  void on_remote_data(std::uint32_t stream_id, std::span<const std::uint8_t> bytes,
                      bool end_stream) override {
    if (handlers_.on_response_data) {
      handlers_.on_response_data(stream_id, bytes, end_stream);
    }
  }
  void on_remote_rst(std::uint32_t stream_id, ErrorCode code) override {
    if (handlers_.on_reset) handlers_.on_reset(stream_id, code);
  }
  void on_remote_push_promise(std::uint32_t parent, std::uint32_t promised,
                              const hpack::HeaderList& headers) override {
    if (handlers_.on_push_promise) {
      handlers_.on_push_promise(parent, promised, headers);
    }
  }
  void on_remote_goaway(const GoawayPayload& g) override {
    if (handlers_.on_goaway) handlers_.on_goaway(g);
  }
  void on_dead(std::string_view reason) override {
    if (handlers_.on_connection_dead) handlers_.on_connection_dead(reason);
  }

 private:
  Handlers handlers_;
};

}  // namespace h2sim::h2
