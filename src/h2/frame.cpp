#include "h2/frame.hpp"

namespace h2sim::h2 {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t pos) {
  return static_cast<std::uint32_t>(in[pos]) << 24 |
         static_cast<std::uint32_t>(in[pos + 1]) << 16 |
         static_cast<std::uint32_t>(in[pos + 2]) << 8 |
         static_cast<std::uint32_t>(in[pos + 3]);
}

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kData: return "DATA";
    case FrameType::kHeaders: return "HEADERS";
    case FrameType::kPriority: return "PRIORITY";
    case FrameType::kRstStream: return "RST_STREAM";
    case FrameType::kSettings: return "SETTINGS";
    case FrameType::kPushPromise: return "PUSH_PROMISE";
    case FrameType::kPing: return "PING";
    case FrameType::kGoaway: return "GOAWAY";
    case FrameType::kWindowUpdate: return "WINDOW_UPDATE";
    case FrameType::kContinuation: return "CONTINUATION";
  }
  return "UNKNOWN";
}

const char* to_string(ErrorCode e) {
  switch (e) {
    case ErrorCode::kNoError: return "NO_ERROR";
    case ErrorCode::kProtocolError: return "PROTOCOL_ERROR";
    case ErrorCode::kInternalError: return "INTERNAL_ERROR";
    case ErrorCode::kFlowControlError: return "FLOW_CONTROL_ERROR";
    case ErrorCode::kSettingsTimeout: return "SETTINGS_TIMEOUT";
    case ErrorCode::kStreamClosed: return "STREAM_CLOSED";
    case ErrorCode::kFrameSizeError: return "FRAME_SIZE_ERROR";
    case ErrorCode::kRefusedStream: return "REFUSED_STREAM";
    case ErrorCode::kCancel: return "CANCEL";
    case ErrorCode::kCompressionError: return "COMPRESSION_ERROR";
    case ErrorCode::kConnectError: return "CONNECT_ERROR";
    case ErrorCode::kEnhanceYourCalm: return "ENHANCE_YOUR_CALM";
    case ErrorCode::kInadequateSecurity: return "INADEQUATE_SECURITY";
    case ErrorCode::kHttp11Required: return "HTTP_1_1_REQUIRED";
  }
  return "UNKNOWN";
}

std::vector<std::uint8_t> serialize_frame(const Frame& f) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + f.payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(f.payload.size());
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len));
  out.push_back(static_cast<std::uint8_t>(f.type));
  out.push_back(f.flags);
  put_u32(out, f.stream_id & 0x7fffffff);
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  return out;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameDecoder::next() {
  if (error_ || buf_.size() < kFrameHeaderBytes) return std::nullopt;
  const std::size_t len = static_cast<std::size_t>(buf_[0]) << 16 |
                          static_cast<std::size_t>(buf_[1]) << 8 | buf_[2];
  if (len > max_frame_size_) {
    error_ = true;
    return std::nullopt;
  }
  if (buf_.size() < kFrameHeaderBytes + len) return std::nullopt;

  Frame f;
  f.type = static_cast<FrameType>(buf_[3]);
  f.flags = buf_[4];
  f.stream_id = (static_cast<std::uint32_t>(buf_[5]) << 24 |
                 static_cast<std::uint32_t>(buf_[6]) << 16 |
                 static_cast<std::uint32_t>(buf_[7]) << 8 | buf_[8]) &
                0x7fffffff;
  buf_.erase(buf_.begin(), buf_.begin() + kFrameHeaderBytes);
  f.payload.assign(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(len));
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(len));
  return f;
}

std::vector<std::uint8_t> encode_settings(std::span<const SettingsEntry> entries) {
  std::vector<std::uint8_t> out;
  out.reserve(entries.size() * 6);
  for (const auto& e : entries) {
    put_u16(out, static_cast<std::uint16_t>(e.id));
    put_u32(out, e.value);
  }
  return out;
}

std::optional<std::vector<SettingsEntry>> parse_settings(
    std::span<const std::uint8_t> payload) {
  if (payload.size() % 6 != 0) return std::nullopt;
  std::vector<SettingsEntry> out;
  for (std::size_t i = 0; i < payload.size(); i += 6) {
    SettingsEntry e;
    e.id = static_cast<SettingId>(static_cast<std::uint16_t>(payload[i]) << 8 |
                                  payload[i + 1]);
    e.value = get_u32(payload, i + 2);
    out.push_back(e);
  }
  return out;
}

std::vector<std::uint8_t> encode_rst_stream(ErrorCode code) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(code));
  return out;
}

std::optional<ErrorCode> parse_rst_stream(std::span<const std::uint8_t> payload) {
  if (payload.size() != 4) return std::nullopt;
  return static_cast<ErrorCode>(get_u32(payload, 0));
}

std::vector<std::uint8_t> encode_window_update(std::uint32_t increment) {
  std::vector<std::uint8_t> out;
  put_u32(out, increment & 0x7fffffff);
  return out;
}

std::optional<std::uint32_t> parse_window_update(
    std::span<const std::uint8_t> payload) {
  if (payload.size() != 4) return std::nullopt;
  return get_u32(payload, 0) & 0x7fffffff;
}

std::vector<std::uint8_t> encode_goaway(const GoawayPayload& g) {
  std::vector<std::uint8_t> out;
  put_u32(out, g.last_stream_id & 0x7fffffff);
  put_u32(out, static_cast<std::uint32_t>(g.error));
  out.insert(out.end(), g.debug.begin(), g.debug.end());
  return out;
}

std::optional<GoawayPayload> parse_goaway(std::span<const std::uint8_t> payload) {
  if (payload.size() < 8) return std::nullopt;
  GoawayPayload g;
  g.last_stream_id = get_u32(payload, 0) & 0x7fffffff;
  g.error = static_cast<ErrorCode>(get_u32(payload, 4));
  g.debug.assign(payload.begin() + 8, payload.end());
  return g;
}

std::vector<std::uint8_t> encode_priority(const PriorityPayload& p) {
  std::vector<std::uint8_t> out;
  put_u32(out, (p.dependency & 0x7fffffff) | (p.exclusive ? 0x80000000u : 0));
  out.push_back(static_cast<std::uint8_t>(p.weight - 1));
  return out;
}

std::optional<PriorityPayload> parse_priority(std::span<const std::uint8_t> payload) {
  if (payload.size() != 5) return std::nullopt;
  PriorityPayload p;
  const std::uint32_t dep = get_u32(payload, 0);
  p.exclusive = (dep & 0x80000000u) != 0;
  p.dependency = dep & 0x7fffffff;
  p.weight = static_cast<std::uint8_t>(payload[4] + 1);
  return p;
}

std::vector<std::uint8_t> encode_push_promise(std::uint32_t promised_id,
                                              std::span<const std::uint8_t> block) {
  std::vector<std::uint8_t> out;
  put_u32(out, promised_id & 0x7fffffff);
  out.insert(out.end(), block.begin(), block.end());
  return out;
}

std::optional<PushPromisePayload> parse_push_promise(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 4) return std::nullopt;
  PushPromisePayload p;
  p.promised_id = get_u32(payload, 0) & 0x7fffffff;
  p.block.assign(payload.begin() + 4, payload.end());
  return p;
}

std::span<const std::uint8_t> client_preface() {
  static const std::uint8_t kPreface[] = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";
  return {kPreface, 24};
}

}  // namespace h2sim::h2
