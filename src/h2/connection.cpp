#include "h2/connection.hpp"

#include <algorithm>
#include <cassert>

#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "sim/log.hpp"

namespace h2sim::h2 {

const char* to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kRoundRobin: return "round-robin";
    case SchedulerKind::kSequential: return "sequential";
    case SchedulerKind::kRandom: return "random";
    case SchedulerKind::kWeighted: return "weighted";
  }
  return "?";
}

Connection::Connection(sim::EventLoop& loop, tls::TlsSession& tls, bool is_server,
                       ConnectionConfig cfg, sim::Rng rng)
    : loop_(loop),
      tls_(tls),
      is_server_(is_server),
      cfg_(cfg),
      rng_(rng),
      next_local_stream_(is_server ? 2 : 1) {
  auto& reg = obs::metrics();
  const std::string side = is_server ? "h2.server." : "h2.client.";
  metrics_.frames_sent = reg.counter(side + "frames_sent");
  metrics_.frames_received = reg.counter(side + "frames_received");
  metrics_.data_bytes_sent = reg.counter(side + "data_bytes_sent");
  metrics_.rst_sent = reg.counter(side + "rst_sent");
  metrics_.rst_received = reg.counter(side + "rst_received");
  metrics_.streams_opened = reg.counter(side + "streams_opened");
  metrics_.flow_stalls = reg.counter(side + "flow_stalls");

  hpack_decoder_.set_max_table_size(4096);

  tls::TlsSession::Callbacks cbs;
  cbs.on_established = [this] { on_tls_established(); };
  cbs.on_plaintext = [this](std::span<const std::uint8_t> b) { on_plaintext(b); };
  cbs.on_peer_close = [this] {
    if (!dead_) {
      dead_ = true;
      on_dead("peer-close");
    }
  };
  cbs.on_aborted = [this](std::string_view reason) {
    if (!dead_) {
      dead_ = true;
      on_dead(reason);
    }
  };
  cbs.on_writable = [this] {
    if (!dead_ && handshake_done_) pump();
  };
  tls_.set_callbacks(std::move(cbs));
}

void Connection::on_tls_established() {
  if (!is_server_) {
    // 24-byte connection preface precedes all frames (§3.5).
    tls_.write(client_preface());
  }
  send_initial_settings();
  handshake_done_ = true;
  on_ready();
}

void Connection::send_initial_settings() {
  const SettingsEntry entries[] = {
      {SettingId::kHeaderTableSize, 4096},
      {SettingId::kEnablePush, cfg_.enable_push ? 1u : 0u},
      {SettingId::kMaxConcurrentStreams, cfg_.max_concurrent_streams},
      {SettingId::kInitialWindowSize, cfg_.initial_window_size},
      {SettingId::kMaxFrameSize, cfg_.max_frame_size},
  };
  Frame f;
  f.type = FrameType::kSettings;
  f.payload = encode_settings(entries);
  write_frame(std::move(f));
  decoder_.set_max_frame_size(cfg_.max_frame_size);

  if (cfg_.connection_window_bonus > 0) {
    Frame wu;
    wu.type = FrameType::kWindowUpdate;
    wu.stream_id = 0;
    wu.payload = encode_window_update(cfg_.connection_window_bonus);
    write_frame(std::move(wu));
    conn_recv_window_.replenish(cfg_.connection_window_bonus);
  }
}

void Connection::write_frame(Frame&& f) {
  if (dead_) return;
  ++stats_.frames_sent;
  metrics_.frames_sent.inc();
  if (f.type == FrameType::kData) {
    ++stats_.data_frames_sent;
    stats_.data_bytes_sent += f.payload.size();
    metrics_.data_bytes_sent.add(f.payload.size());
  } else if (f.type == FrameType::kHeaders) {
    ++stats_.headers_frames_sent;
  }
  sim::logf(sim::LogLevel::kTrace, loop_.now(), is_server_ ? "h2.srv" : "h2.cli",
            "send %s sid=%u len=%zu flags=%02x", to_string(f.type), f.stream_id,
            f.payload.size(), f.flags);
  auto& tr = obs::tracer();
  if (tr.enabled(obs::Component::kH2)) {
    tr.instant(obs::Component::kH2, std::string("tx ") + to_string(f.type),
               loop_.now(), is_server_ ? obs::track::kServer : obs::track::kClient,
               f.stream_id,
               obs::TraceArgs()
                   .add("len", f.payload.size())
                   .add("flags", static_cast<std::uint64_t>(f.flags))
                   .take());
  }
  if (frame_tap_) frame_tap_(f, loop_.now());
  tls_.write(serialize_frame(f));
}

Stream& Connection::create_stream(std::uint32_t id) {
  auto s = std::make_unique<Stream>(id, peer_initial_window_,
                                    static_cast<std::int64_t>(cfg_.initial_window_size));
  Stream& ref = *s;
  streams_[id] = std::move(s);
  rr_order_.push_back(id);
  ++stats_.streams_opened;
  metrics_.streams_opened.inc();
  return ref;
}

void Connection::trace_stream_state(std::uint32_t stream_id, StreamState before) {
  auto& tr = obs::tracer();
  if (!tr.enabled(obs::Component::kH2)) return;
  const Stream* s = find_stream(stream_id);
  const StreamState after = s ? s->state() : StreamState::kClosed;
  if (after == before) return;
  tr.instant(obs::Component::kH2, std::string("stream:") + to_string(after),
             loop_.now(), is_server_ ? obs::track::kServer : obs::track::kClient,
             stream_id, obs::TraceArgs().add("from", to_string(before)).take());
}

Stream* Connection::find_stream(std::uint32_t id) {
  // Frame processing hits the same stream many times in a row (every DATA
  // chunk, window update, and tap consults it), so a one-entry cache turns
  // most lookups into a compare. Invalidated on erase.
  if (id == last_stream_id_ && last_stream_ != nullptr) return last_stream_;
  auto it = streams_.find(id);
  if (it == streams_.end()) return nullptr;
  last_stream_id_ = id;
  last_stream_ = it->second.get();
  return last_stream_;
}

void Connection::destroy_stream_if_closed(std::uint32_t id) {
  Stream* s = find_stream(id);
  if (!s || !s->closed()) return;
  rr_order_.erase(std::remove(rr_order_.begin(), rr_order_.end(), id),
                  rr_order_.end());
  if (id == last_stream_id_) last_stream_ = nullptr;
  streams_.erase(id);
}

void Connection::connection_error(ErrorCode code, const std::string& msg) {
  if (dead_) return;
  sim::logf(sim::LogLevel::kWarn, loop_.now(), is_server_ ? "h2.srv" : "h2.cli",
            "connection error %s: %s", to_string(code), msg.c_str());
  send_goaway(code, msg);
  dead_ = true;
  on_dead(msg);
  tls_.close();
}

void Connection::send_goaway(ErrorCode code, std::string debug) {
  Frame f;
  f.type = FrameType::kGoaway;
  f.payload = encode_goaway({highest_remote_stream_, code, std::move(debug)});
  ++stats_.goaway_sent;
  write_frame(std::move(f));
}

void Connection::send_ping() {
  Frame f;
  f.type = FrameType::kPing;
  f.payload.assign(8, 0x42);
  ++stats_.pings_sent;
  write_frame(std::move(f));
}

void Connection::send_priority(std::uint32_t stream_id, const PriorityPayload& p) {
  Frame f;
  f.type = FrameType::kPriority;
  f.stream_id = stream_id;
  f.payload = encode_priority(p);
  write_frame(std::move(f));
}

void Connection::send_headers(std::uint32_t stream_id,
                              const hpack::HeaderList& headers, bool end_stream) {
  Stream* s = find_stream(stream_id);
  if (!s) s = &create_stream(stream_id);
  const StreamState before = s->state();
  if (!s->on_send_headers(end_stream)) {
    sim::logf(sim::LogLevel::kWarn, loop_.now(), "h2",
              "send_headers in invalid state, stream %u", stream_id);
    return;
  }
  const std::vector<std::uint8_t> block = hpack_encoder_.encode(headers);

  std::size_t pos = 0;
  bool first = true;
  do {
    const std::size_t n = std::min<std::size_t>(peer_max_frame_size_,
                                                block.size() - pos);
    Frame f;
    f.type = first ? FrameType::kHeaders : FrameType::kContinuation;
    f.stream_id = stream_id;
    f.payload.assign(block.begin() + static_cast<std::ptrdiff_t>(pos),
                     block.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    if (first && end_stream) f.flags |= flags::kEndStream;
    if (pos == block.size()) f.flags |= flags::kEndHeaders;
    first = false;
    write_frame(std::move(f));
  } while (pos < block.size());
  trace_stream_state(stream_id, before);
  destroy_stream_if_closed(stream_id);
}

void Connection::send_rst_stream(std::uint32_t stream_id, ErrorCode code) {
  Stream* s = find_stream(stream_id);
  const StreamState before = s ? s->state() : StreamState::kClosed;
  if (s) {
    s->flush_queue();
    s->on_send_rst();
  }
  Frame f;
  f.type = FrameType::kRstStream;
  f.stream_id = stream_id;
  f.payload = encode_rst_stream(code);
  ++stats_.rst_sent;
  metrics_.rst_sent.inc();
  write_frame(std::move(f));
  trace_stream_state(stream_id, before);
  destroy_stream_if_closed(stream_id);
}

void Connection::enqueue_data(std::uint32_t stream_id,
                              std::span<const std::uint8_t> bytes, bool end_stream) {
  Stream* s = find_stream(stream_id);
  if (!s || !s->can_send_data()) return;  // stream was reset: drop (flushed)
  s->enqueue(bytes, end_stream);
  pump();
}

std::size_t Connection::streams_with_pending_data() const {
  std::size_t n = 0;
  for (const auto& [id, s] : streams_) {
    if (s->has_pending_output()) ++n;
  }
  return n;
}

std::size_t Connection::pending_data_bytes() const {
  std::size_t n = 0;
  for (const auto& [id, s] : streams_) n += s->queued_bytes();
  return n;
}

std::uint32_t Connection::pick_ready_stream() {
  auto ready = [this](std::uint32_t id) {
    Stream* s = find_stream(id);
    if (!s || !s->has_pending_output() || !s->can_send_data()) return false;
    if (s->queued_bytes() == 0) return true;  // bare END_STREAM
    return s->send_window().available() > 0 && conn_send_window_.available() > 0;
  };

  switch (cfg_.scheduler) {
    case SchedulerKind::kSequential: {
      std::uint32_t best = 0;
      for (const auto& [id, s] : streams_) {
        if (ready(id)) {
          best = id;
          break;  // map is id-ordered
        }
      }
      return best;
    }
    case SchedulerKind::kRandom: {
      std::vector<std::uint32_t> cand;
      for (std::uint32_t id : rr_order_) {
        if (ready(id)) cand.push_back(id);
      }
      if (cand.empty()) return 0;
      return cand[rng_.uniform(cand.size())];
    }
    case SchedulerKind::kWeighted: {
      // Weight-proportional random pick among ready streams.
      std::vector<std::uint32_t> cand;
      std::uint64_t total = 0;
      for (std::uint32_t id : rr_order_) {
        if (ready(id)) {
          cand.push_back(id);
          total += find_stream(id)->weight;
        }
      }
      if (cand.empty()) return 0;
      std::uint64_t pick = rng_.uniform(total);
      for (std::uint32_t id : cand) {
        const std::uint64_t w = find_stream(id)->weight;
        if (pick < w) return id;
        pick -= w;
      }
      return cand.back();
    }
    case SchedulerKind::kRoundRobin: {
      if (rr_order_.empty()) return 0;
      for (std::size_t i = 0; i < rr_order_.size(); ++i) {
        const std::uint32_t id = rr_order_.front();
        rr_order_.erase(rr_order_.begin());
        rr_order_.push_back(id);  // rotate regardless, so quanta alternate
        if (ready(id)) return id;
      }
      return 0;
    }
  }
  return 0;
}

void Connection::pump() {
  if (dead_ || !handshake_done_) return;
  obs::ProfileScope prof(obs::Component::kH2);
  for (;;) {
    // Socket backpressure: stop queueing into TCP beyond the watermark.
    const std::size_t tcp_buffered = tls_.connection().bytes_in_flight() +
                                     tls_.connection().unsent_bytes();
    if (tcp_buffered >= cfg_.tcp_send_watermark) break;

    const std::uint32_t id = pick_ready_stream();
    if (id == 0) {
      // Data is waiting but no stream may send: a flow-control stall (the
      // send windows are exhausted until the peer's WINDOW_UPDATE arrives).
      if (streams_with_pending_data() > 0) {
        metrics_.flow_stalls.inc();
        auto& tr = obs::tracer();
        if (tr.enabled(obs::Component::kH2)) {
          tr.instant(obs::Component::kH2, "flow-stall", loop_.now(),
                     is_server_ ? obs::track::kServer : obs::track::kClient, 0,
                     obs::TraceArgs()
                         .add("pending_bytes", pending_data_bytes())
                         .add("conn_window",
                              static_cast<std::int64_t>(conn_send_window_.available()))
                         .take());
        }
      }
      break;
    }
    Stream& s = *find_stream(id);

    std::size_t n = std::min({s.queued_bytes(), cfg_.data_chunk_size,
                              static_cast<std::size_t>(peer_max_frame_size_)});
    if (n > 0) {
      n = std::min(n, static_cast<std::size_t>(
                          std::min(s.send_window().available(),
                                   conn_send_window_.available())));
    }
    const std::vector<std::uint8_t> chunk = s.dequeue(n);
    const bool end = s.queued_bytes() == 0 && s.end_stream_queued();

    Frame f;
    f.type = FrameType::kData;
    f.stream_id = id;
    f.payload = chunk;
    if (end) f.flags |= flags::kEndStream;

    s.send_window().consume(static_cast<std::int64_t>(n));
    conn_send_window_.consume(static_cast<std::int64_t>(n));
    write_frame(std::move(f));

    if (end) {
      const StreamState before = s.state();
      s.flush_queue();
      s.on_send_data_end();
      trace_stream_state(id, before);
      destroy_stream_if_closed(id);
    }
  }
}

void Connection::on_plaintext(std::span<const std::uint8_t> bytes) {
  obs::ProfileScope prof(obs::Component::kH2);
  if (is_server_ && !preface_received_) {
    preface_buffer_.insert(preface_buffer_.end(), bytes.begin(), bytes.end());
    if (preface_buffer_.size() < 24) return;
    const auto expected = client_preface();
    if (!std::equal(expected.begin(), expected.end(), preface_buffer_.begin())) {
      connection_error(ErrorCode::kProtocolError, "bad connection preface");
      return;
    }
    preface_received_ = true;
    const std::vector<std::uint8_t> rest(preface_buffer_.begin() + 24,
                                         preface_buffer_.end());
    preface_buffer_.clear();
    decoder_.feed(rest);
  } else {
    decoder_.feed(bytes);
  }

  while (auto f = decoder_.next()) {
    ++stats_.frames_received;
    metrics_.frames_received.inc();
    handle_frame(std::move(*f));
    if (dead_) return;
  }
  if (decoder_.error()) {
    connection_error(ErrorCode::kFrameSizeError, "oversized frame");
  }
}

void Connection::handle_frame(Frame&& f) {
  sim::logf(sim::LogLevel::kTrace, loop_.now(), is_server_ ? "h2.srv" : "h2.cli",
            "recv %s sid=%u len=%zu flags=%02x", to_string(f.type), f.stream_id,
            f.payload.size(), f.flags);
  auto& tr = obs::tracer();
  if (tr.enabled(obs::Component::kH2)) {
    tr.instant(obs::Component::kH2, std::string("rx ") + to_string(f.type),
               loop_.now(), is_server_ ? obs::track::kServer : obs::track::kClient,
               f.stream_id,
               obs::TraceArgs()
                   .add("len", f.payload.size())
                   .add("flags", static_cast<std::uint64_t>(f.flags))
                   .take());
  }

  if (assembling_headers_ && f.type != FrameType::kContinuation) {
    connection_error(ErrorCode::kProtocolError,
                     "expected CONTINUATION during header block");
    return;
  }

  switch (f.type) {
    case FrameType::kData: handle_data(f); return;
    case FrameType::kHeaders: handle_headers(std::move(f)); return;
    case FrameType::kPriority: handle_priority(f); return;
    case FrameType::kRstStream: handle_rst(f); return;
    case FrameType::kSettings: handle_settings(f); return;
    case FrameType::kPushPromise: handle_push_promise(std::move(f)); return;
    case FrameType::kPing: handle_ping(f); return;
    case FrameType::kGoaway: handle_goaway(f); return;
    case FrameType::kWindowUpdate: handle_window_update(f); return;
    case FrameType::kContinuation: handle_continuation(std::move(f)); return;
  }
  // Unknown frame types are ignored (§4.1).
}

void Connection::handle_data(const Frame& f) {
  if (f.stream_id == 0) {
    connection_error(ErrorCode::kProtocolError, "DATA on stream 0");
    return;
  }
  const auto len = static_cast<std::int64_t>(f.payload.size());
  if (!conn_recv_window_.can_send(len)) {
    connection_error(ErrorCode::kFlowControlError, "connection window exceeded");
    return;
  }
  conn_recv_window_.consume(len);

  Stream* s = find_stream(f.stream_id);
  const bool end = f.has_flag(flags::kEndStream);
  if (s && s->can_recv_data()) {
    const StreamState before = s->state();
    s->recv_window().consume(len);
    s->on_recv_data(end);
    stats_.data_bytes_received += f.payload.size();
    trace_stream_state(f.stream_id, before);
    on_remote_data(f.stream_id, std::span(f.payload), end);
    replenish_recv_windows(f.stream_id, f.payload.size());
    destroy_stream_if_closed(f.stream_id);
  } else {
    // Data for a reset/closed stream still occupies the connection window;
    // credit it back and drop the bytes (§6.9: flow control is hop-by-hop
    // and always accounted).
    replenish_recv_windows(0, f.payload.size());
  }
}

void Connection::replenish_recv_windows(std::uint32_t stream_id,
                                        std::size_t consumed) {
  // Window updates are batched at half-window granularity, like real
  // browsers: a chatty per-frame WINDOW_UPDATE stream would hand the
  // adversary's spacing policy a constant supply of client payload packets
  // (and their dup-ACKs) to play with.
  conn_recv_consumed_ += static_cast<std::int64_t>(consumed);
  const auto conn_threshold = static_cast<std::int64_t>(cfg_.window_update_batch);
  if (conn_recv_consumed_ >= conn_threshold) {
    conn_recv_window_.replenish(conn_recv_consumed_);
    Frame wu;
    wu.type = FrameType::kWindowUpdate;
    wu.stream_id = 0;
    wu.payload = encode_window_update(static_cast<std::uint32_t>(conn_recv_consumed_));
    conn_recv_consumed_ = 0;
    write_frame(std::move(wu));
  }

  if (stream_id == 0) return;
  Stream* s = find_stream(stream_id);
  if (!s || s->closed()) return;
  s->note_consumed(consumed);
  if (s->consumed_unacked() * 2 >= cfg_.initial_window_size) {
    const auto credit = static_cast<std::uint32_t>(s->consumed_unacked());
    s->recv_window().replenish(credit);
    s->clear_consumed();
    Frame swu;
    swu.type = FrameType::kWindowUpdate;
    swu.stream_id = stream_id;
    swu.payload = encode_window_update(credit);
    write_frame(std::move(swu));
  }
}

void Connection::handle_headers(Frame&& f) {
  if (f.stream_id == 0) {
    connection_error(ErrorCode::kProtocolError, "HEADERS on stream 0");
    return;
  }
  std::span<const std::uint8_t> block(f.payload);
  // Strip optional priority fields (PRIORITY flag).
  if (f.has_flag(flags::kPriority)) {
    if (block.size() < 5) {
      connection_error(ErrorCode::kFrameSizeError, "short HEADERS priority");
      return;
    }
    block = block.subspan(5);
  }
  header_block_.assign(block.begin(), block.end());
  assembling_stream_ = f.stream_id;
  assembling_end_stream_ = f.has_flag(flags::kEndStream);
  assembling_is_push_ = false;

  if (f.has_flag(flags::kEndHeaders)) {
    finish_header_block(assembling_stream_, assembling_end_stream_, false, 0);
  } else {
    assembling_headers_ = true;
  }
}

void Connection::handle_continuation(Frame&& f) {
  if (!assembling_headers_ || f.stream_id != assembling_stream_) {
    connection_error(ErrorCode::kProtocolError, "unexpected CONTINUATION");
    return;
  }
  header_block_.insert(header_block_.end(), f.payload.begin(), f.payload.end());
  if (f.has_flag(flags::kEndHeaders)) {
    assembling_headers_ = false;
    finish_header_block(assembling_stream_, assembling_end_stream_,
                        assembling_is_push_, assembling_promised_);
  }
}

void Connection::finish_header_block(std::uint32_t stream_id, bool end_stream,
                                     bool is_push_promise,
                                     std::uint32_t promised_id) {
  auto headers = hpack_decoder_.decode(header_block_);
  header_block_.clear();
  if (!headers) {
    connection_error(ErrorCode::kCompressionError, "hpack decode failed");
    return;
  }

  if (is_push_promise) {
    Stream& promised = create_stream(promised_id);
    promised.on_recv_push_promise();
    on_remote_push_promise(stream_id, promised_id, *headers);
    return;
  }

  Stream* s = find_stream(stream_id);
  if (!s) {
    const bool remote_origin = is_server_ ? (stream_id % 2 == 1)
                                          : (stream_id % 2 == 0);
    if (!remote_origin || stream_id <= highest_remote_stream_) {
      // Late HEADERS on an already-closed stream: ignore (lenient).
      return;
    }
    if (streams_.size() >= cfg_.max_concurrent_streams) {
      send_rst_stream(stream_id, ErrorCode::kRefusedStream);
      return;
    }
    highest_remote_stream_ = stream_id;
    s = &create_stream(stream_id);
  }
  const StreamState before = s->state();
  if (!s->on_recv_headers(end_stream)) {
    connection_error(ErrorCode::kProtocolError, "HEADERS in invalid state");
    return;
  }
  trace_stream_state(stream_id, before);
  on_remote_headers(stream_id, *headers, end_stream);
  destroy_stream_if_closed(stream_id);
}

void Connection::handle_settings(const Frame& f) {
  if (f.stream_id != 0) {
    connection_error(ErrorCode::kProtocolError, "SETTINGS on non-zero stream");
    return;
  }
  if (f.has_flag(flags::kAck)) return;
  auto entries = parse_settings(f.payload);
  if (!entries) {
    connection_error(ErrorCode::kFrameSizeError, "bad SETTINGS payload");
    return;
  }
  for (const SettingsEntry& e : *entries) {
    switch (e.id) {
      case SettingId::kHeaderTableSize:
        // Peer's decode table limit constrains our encoder.
        break;
      case SettingId::kEnablePush:
        peer_push_enabled_ = e.value != 0;
        break;
      case SettingId::kMaxConcurrentStreams:
        peer_max_concurrent_ = e.value;
        break;
      case SettingId::kInitialWindowSize: {
        if (e.value > kMaxWindow) {
          connection_error(ErrorCode::kFlowControlError, "bad initial window");
          return;
        }
        const std::int64_t delta =
            static_cast<std::int64_t>(e.value) - peer_initial_window_;
        peer_initial_window_ = e.value;
        for (auto& [id, s] : streams_) s->send_window().adjust(delta);
        break;
      }
      case SettingId::kMaxFrameSize:
        if (e.value < 16384 || e.value > kMaxAllowedFrameSize) {
          connection_error(ErrorCode::kProtocolError, "bad max frame size");
          return;
        }
        peer_max_frame_size_ = e.value;
        break;
      case SettingId::kMaxHeaderListSize:
        break;
    }
  }
  Frame ack;
  ack.type = FrameType::kSettings;
  ack.flags = flags::kAck;
  write_frame(std::move(ack));
  pump();
}

void Connection::handle_rst(const Frame& f) {
  auto code = parse_rst_stream(f.payload);
  if (!code || f.stream_id == 0) {
    connection_error(ErrorCode::kProtocolError, "bad RST_STREAM");
    return;
  }
  ++stats_.rst_received;
  metrics_.rst_received.inc();
  Stream* s = find_stream(f.stream_id);
  if (s) {
    // The paper's key server-side mechanic (Fig. 6): the reset flushes all
    // of this stream's queued object segments from the server queue.
    const StreamState before = s->state();
    const std::size_t flushed = s->queued_bytes();
    s->flush_queue();
    s->on_recv_rst();
    trace_stream_state(f.stream_id, before);
    auto& tr = obs::tracer();
    if (flushed > 0 && tr.enabled(obs::Component::kH2)) {
      // The flush itself is the paper's Figure-6 signal: make it visible.
      tr.instant(obs::Component::kH2, "rst-flush", loop_.now(),
                 is_server_ ? obs::track::kServer : obs::track::kClient,
                 f.stream_id,
                 obs::TraceArgs().add("flushed_bytes", flushed).take());
    }
  }
  on_remote_rst(f.stream_id, *code);
  destroy_stream_if_closed(f.stream_id);
  pump();  // capacity freed: other streams may proceed
}

void Connection::handle_window_update(const Frame& f) {
  auto inc = parse_window_update(f.payload);
  if (!inc) {
    connection_error(ErrorCode::kFrameSizeError, "bad WINDOW_UPDATE");
    return;
  }
  if (*inc == 0) {
    connection_error(ErrorCode::kProtocolError, "zero WINDOW_UPDATE");
    return;
  }
  if (f.stream_id == 0) {
    if (!conn_send_window_.replenish(*inc)) {
      connection_error(ErrorCode::kFlowControlError, "connection window overflow");
      return;
    }
  } else if (Stream* s = find_stream(f.stream_id)) {
    if (!s->send_window().replenish(*inc)) {
      send_rst_stream(f.stream_id, ErrorCode::kFlowControlError);
      return;
    }
  }
  pump();
}

void Connection::handle_ping(const Frame& f) {
  if (f.payload.size() != 8 || f.stream_id != 0) {
    connection_error(ErrorCode::kFrameSizeError, "bad PING");
    return;
  }
  if (f.has_flag(flags::kAck)) return;
  Frame ack;
  ack.type = FrameType::kPing;
  ack.flags = flags::kAck;
  ack.payload = f.payload;
  write_frame(std::move(ack));
}

void Connection::handle_goaway(const Frame& f) {
  auto g = parse_goaway(f.payload);
  if (!g) {
    connection_error(ErrorCode::kFrameSizeError, "bad GOAWAY");
    return;
  }
  goaway_last_stream_ = g->last_stream_id;
  on_remote_goaway(*g);
}

void Connection::handle_priority(const Frame& f) {
  auto p = parse_priority(f.payload);
  if (!p || f.stream_id == 0) return;  // lenient
  if (Stream* s = find_stream(f.stream_id)) s->weight = p->weight;
}

void Connection::handle_push_promise(Frame&& f) {
  if (is_server_) {
    connection_error(ErrorCode::kProtocolError, "PUSH_PROMISE from client");
    return;
  }
  if (!cfg_.enable_push) {
    connection_error(ErrorCode::kProtocolError, "push disabled");
    return;
  }
  auto p = parse_push_promise(f.payload);
  if (!p) {
    connection_error(ErrorCode::kFrameSizeError, "bad PUSH_PROMISE");
    return;
  }
  header_block_ = std::move(p->block);
  assembling_stream_ = f.stream_id;
  assembling_is_push_ = true;
  assembling_promised_ = p->promised_id;
  assembling_end_stream_ = false;
  if (f.has_flag(flags::kEndHeaders)) {
    finish_header_block(f.stream_id, false, true, p->promised_id);
  } else {
    assembling_headers_ = true;
  }
}

}  // namespace h2sim::h2
