#pragma once

#include <cstdint>

namespace h2sim::h2 {

inline constexpr std::int64_t kDefaultInitialWindow = 65535;
inline constexpr std::int64_t kMaxWindow = 0x7fffffff;

/// One flow-control window (connection-level or stream-level). Windows may
/// legitimately go negative when SETTINGS_INITIAL_WINDOW_SIZE shrinks
/// (RFC 7540 §6.9.2), so this is signed arithmetic with an overflow check on
/// replenish.
class FlowWindow {
 public:
  explicit FlowWindow(std::int64_t initial = kDefaultInitialWindow)
      : window_(initial) {}

  std::int64_t available() const { return window_; }
  bool can_send(std::int64_t n) const { return window_ >= n; }

  void consume(std::int64_t n) { window_ -= n; }

  /// Returns false on window overflow (> 2^31-1), a FLOW_CONTROL_ERROR.
  bool replenish(std::int64_t n) {
    window_ += n;
    return window_ <= kMaxWindow;
  }

  /// Applies an INITIAL_WINDOW_SIZE delta (may push the window negative).
  void adjust(std::int64_t delta) { window_ += delta; }

 private:
  std::int64_t window_;
};

}  // namespace h2sim::h2
