#include "h2/stream.hpp"

namespace h2sim::h2 {

const char* to_string(StreamState s) {
  switch (s) {
    case StreamState::kIdle: return "idle";
    case StreamState::kReservedLocal: return "reserved(local)";
    case StreamState::kReservedRemote: return "reserved(remote)";
    case StreamState::kOpen: return "open";
    case StreamState::kHalfClosedLocal: return "half-closed(local)";
    case StreamState::kHalfClosedRemote: return "half-closed(remote)";
    case StreamState::kClosed: return "closed";
  }
  return "?";
}

bool Stream::on_send_headers(bool end_stream) {
  switch (state_) {
    case StreamState::kIdle:
      state_ = end_stream ? StreamState::kHalfClosedLocal : StreamState::kOpen;
      return true;
    case StreamState::kReservedLocal:
      state_ = end_stream ? StreamState::kClosed : StreamState::kHalfClosedRemote;
      return true;
    case StreamState::kOpen:
      // Trailers.
      if (end_stream) state_ = StreamState::kHalfClosedLocal;
      return true;
    case StreamState::kHalfClosedRemote:
      if (end_stream) state_ = StreamState::kClosed;
      return true;
    default:
      return false;
  }
}

bool Stream::on_recv_headers(bool end_stream) {
  switch (state_) {
    case StreamState::kIdle:
      state_ = end_stream ? StreamState::kHalfClosedRemote : StreamState::kOpen;
      return true;
    case StreamState::kReservedRemote:
      state_ = end_stream ? StreamState::kClosed : StreamState::kHalfClosedLocal;
      return true;
    case StreamState::kOpen:
      if (end_stream) state_ = StreamState::kHalfClosedRemote;
      return true;
    case StreamState::kHalfClosedLocal:
      if (end_stream) state_ = StreamState::kClosed;
      return true;
    default:
      return false;
  }
}

bool Stream::on_send_data_end() {
  switch (state_) {
    case StreamState::kOpen:
      state_ = StreamState::kHalfClosedLocal;
      return true;
    case StreamState::kHalfClosedRemote:
      state_ = StreamState::kClosed;
      return true;
    default:
      return false;
  }
}

bool Stream::on_recv_data(bool end_stream) {
  if (!can_recv_data()) return false;
  if (end_stream) {
    state_ = state_ == StreamState::kOpen ? StreamState::kHalfClosedRemote
                                          : StreamState::kClosed;
  }
  return true;
}

bool Stream::on_send_push_promise() {
  if (state_ != StreamState::kIdle) return false;
  state_ = StreamState::kReservedLocal;
  return true;
}

bool Stream::on_recv_push_promise() {
  if (state_ != StreamState::kIdle) return false;
  state_ = StreamState::kReservedRemote;
  return true;
}

void Stream::enqueue(std::span<const std::uint8_t> bytes, bool end_stream) {
  if (head_ == queue_.size()) {
    queue_.clear();
    head_ = 0;
  } else if (head_ >= 4096 && head_ >= queue_.size() - head_) {
    // Reclaim the consumed prefix once it dominates the buffer.
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  queue_.insert(queue_.end(), bytes.begin(), bytes.end());
  if (end_stream) end_queued_ = true;
}

std::vector<std::uint8_t> Stream::dequeue(std::size_t n) {
  n = std::min(n, queue_.size() - head_);
  const std::uint8_t* p = queue_.data() + head_;
  std::vector<std::uint8_t> out(p, p + n);
  head_ += n;
  return out;
}

void Stream::flush_queue() {
  queue_.clear();
  head_ = 0;
  end_queued_ = false;
}

}  // namespace h2sim::h2
