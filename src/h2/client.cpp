#include "h2/client.hpp"

namespace h2sim::h2 {

std::uint32_t ClientConnection::send_request(const hpack::HeaderList& headers) {
  const std::uint32_t id = next_local_stream_;
  next_local_stream_ += 2;
  send_headers(id, headers, /*end_stream=*/true);
  return id;
}

}  // namespace h2sim::h2
