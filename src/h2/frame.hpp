#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace h2sim::h2 {

/// RFC 7540 §6 frame types.
enum class FrameType : std::uint8_t {
  kData = 0x0,
  kHeaders = 0x1,
  kPriority = 0x2,
  kRstStream = 0x3,
  kSettings = 0x4,
  kPushPromise = 0x5,
  kPing = 0x6,
  kGoaway = 0x7,
  kWindowUpdate = 0x8,
  kContinuation = 0x9,
};

const char* to_string(FrameType t);

/// RFC 7540 §7 error codes.
enum class ErrorCode : std::uint32_t {
  kNoError = 0x0,
  kProtocolError = 0x1,
  kInternalError = 0x2,
  kFlowControlError = 0x3,
  kSettingsTimeout = 0x4,
  kStreamClosed = 0x5,
  kFrameSizeError = 0x6,
  kRefusedStream = 0x7,
  kCancel = 0x8,
  kCompressionError = 0x9,
  kConnectError = 0xa,
  kEnhanceYourCalm = 0xb,
  kInadequateSecurity = 0xc,
  kHttp11Required = 0xd,
};

const char* to_string(ErrorCode e);

namespace flags {
inline constexpr std::uint8_t kEndStream = 0x1;   // DATA, HEADERS
inline constexpr std::uint8_t kAck = 0x1;         // SETTINGS, PING
inline constexpr std::uint8_t kEndHeaders = 0x4;  // HEADERS, PUSH_PROMISE, CONT
inline constexpr std::uint8_t kPadded = 0x8;
inline constexpr std::uint8_t kPriority = 0x20;
}  // namespace flags

inline constexpr std::size_t kFrameHeaderBytes = 9;
inline constexpr std::size_t kDefaultMaxFrameSize = 16384;
inline constexpr std::size_t kMaxAllowedFrameSize = (1u << 24) - 1;

/// RFC 7540 §11.3 settings identifiers.
enum class SettingId : std::uint16_t {
  kHeaderTableSize = 0x1,
  kEnablePush = 0x2,
  kMaxConcurrentStreams = 0x3,
  kInitialWindowSize = 0x4,
  kMaxFrameSize = 0x5,
  kMaxHeaderListSize = 0x6,
};

struct SettingsEntry {
  SettingId id;
  std::uint32_t value;
};

/// One HTTP/2 frame: 9-byte header + payload.
struct Frame {
  FrameType type = FrameType::kData;
  std::uint8_t flags = 0;
  std::uint32_t stream_id = 0;  // 31 bits; high bit reserved
  std::vector<std::uint8_t> payload;

  bool has_flag(std::uint8_t f) const { return (flags & f) != 0; }
  std::size_t wire_size() const { return kFrameHeaderBytes + payload.size(); }
};

std::vector<std::uint8_t> serialize_frame(const Frame& f);

/// Incremental frame decoder over an in-order byte stream.
class FrameDecoder {
 public:
  void set_max_frame_size(std::size_t n) { max_frame_size_ = n; }
  void feed(std::span<const std::uint8_t> bytes);

  /// Next complete frame, or nullopt. After an oversized frame, error() is
  /// set and no further frames are produced (FRAME_SIZE_ERROR connection
  /// error per §4.2).
  std::optional<Frame> next();
  bool error() const { return error_; }

 private:
  std::deque<std::uint8_t> buf_;
  std::size_t max_frame_size_ = kDefaultMaxFrameSize;
  bool error_ = false;
};

// --- Typed payload helpers ---

std::vector<std::uint8_t> encode_settings(std::span<const SettingsEntry> entries);
std::optional<std::vector<SettingsEntry>> parse_settings(
    std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_rst_stream(ErrorCode code);
std::optional<ErrorCode> parse_rst_stream(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_window_update(std::uint32_t increment);
std::optional<std::uint32_t> parse_window_update(std::span<const std::uint8_t> payload);

struct GoawayPayload {
  std::uint32_t last_stream_id = 0;
  ErrorCode error = ErrorCode::kNoError;
  std::string debug;
};
std::vector<std::uint8_t> encode_goaway(const GoawayPayload& g);
std::optional<GoawayPayload> parse_goaway(std::span<const std::uint8_t> payload);

struct PriorityPayload {
  std::uint32_t dependency = 0;
  bool exclusive = false;
  std::uint8_t weight = 16;  // wire value + 1
};
std::vector<std::uint8_t> encode_priority(const PriorityPayload& p);
std::optional<PriorityPayload> parse_priority(std::span<const std::uint8_t> payload);

/// PUSH_PROMISE payload: promised stream id + header block fragment.
std::vector<std::uint8_t> encode_push_promise(std::uint32_t promised_id,
                                              std::span<const std::uint8_t> block);
struct PushPromisePayload {
  std::uint32_t promised_id = 0;
  std::vector<std::uint8_t> block;
};
std::optional<PushPromisePayload> parse_push_promise(
    std::span<const std::uint8_t> payload);

/// The 24-byte client connection preface (§3.5).
std::span<const std::uint8_t> client_preface();

}  // namespace h2sim::h2
