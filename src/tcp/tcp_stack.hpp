#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <tuple>

#include "net/packet.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"
#include "tcp/tcp_connection.hpp"

namespace h2sim::tcp {

/// Host-side TCP: demultiplexes incoming packets onto connections, hands out
/// ephemeral ports, and creates passive connections for listening ports.
/// One instance per simulated node (client, server).
class TcpStack {
 public:
  /// Invoked for a freshly created passive connection so the application can
  /// install its callbacks before the handshake completes.
  using AcceptFn = std::function<void(TcpConnection&)>;
  using SendFn = TcpConnection::SendFn;

  TcpStack(sim::EventLoop& loop, sim::Rng rng, net::NodeId node, TcpConfig cfg,
           SendFn send_fn)
      : loop_(loop),
        rng_(rng),
        node_(node),
        cfg_(cfg),
        send_fn_(std::move(send_fn)) {}

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  void listen(net::Port port, AcceptFn on_accept) {
    listeners_[port] = std::move(on_accept);
  }

  /// Active open to (dst, dst_port); returns the connection (owned by the
  /// stack, stable address for the lifetime of the stack).
  TcpConnection& connect(net::NodeId dst, net::Port dst_port);

  /// Entry point wired into the topology's delivery sink. Consumes the
  /// packet: its payload buffer is recycled into the loop's payload pool.
  void deliver(net::Packet&& p);

  net::NodeId node() const { return node_; }
  const TcpConfig& config() const { return cfg_; }

  /// Aggregate retransmission statistics across every connection this stack
  /// has ever owned (the paper's wire-level retransmission counts).
  TcpStats aggregate_stats() const;

 private:
  using ConnKey = std::tuple<net::Port, net::NodeId, net::Port>;

  void handle(const net::Packet& p);

  sim::EventLoop& loop_;
  sim::Rng rng_;
  net::NodeId node_;
  TcpConfig cfg_;
  SendFn send_fn_;
  net::Port next_ephemeral_ = 49152;

  std::map<net::Port, AcceptFn> listeners_;
  std::map<ConnKey, std::unique_ptr<TcpConnection>> conns_;
};

}  // namespace h2sim::tcp
