#include "tcp/tcp_stack.hpp"

#include "obs/profiler.hpp"
#include "sim/log.hpp"

namespace h2sim::tcp {

TcpConnection& TcpStack::connect(net::NodeId dst, net::Port dst_port) {
  const net::Port sport = next_ephemeral_++;
  const auto iss = static_cast<std::uint32_t>(rng_.uniform(1u << 24));
  auto conn = std::make_unique<TcpConnection>(loop_, cfg_, node_, sport, dst,
                                              dst_port, send_fn_, iss);
  TcpConnection& ref = *conn;
  conns_[ConnKey{sport, dst, dst_port}] = std::move(conn);
  ref.connect();
  return ref;
}

void TcpStack::deliver(net::Packet&& p) {
  obs::ProfileScope prof(obs::Component::kTcp);
  // This stack is the packet's terminal consumer: whatever happens below, the
  // payload buffer goes back to the loop's pool on exit so the next emitted
  // segment reuses it instead of allocating.
  handle(p);
  loop_.payload_pool().release(std::move(p.payload));
}

void TcpStack::handle(const net::Packet& p) {
  if (p.dst != node_) return;  // not addressed to us (mis-wired topology)
  const ConnKey key{p.tcp.dst_port, p.src, p.tcp.src_port};
  auto it = conns_.find(key);
  if (it != conns_.end()) {
    it->second->handle_segment(p);
    return;
  }
  if (p.tcp.syn() && !p.tcp.ack_flag()) {
    auto lit = listeners_.find(p.tcp.dst_port);
    if (lit != listeners_.end()) {
      const auto iss = static_cast<std::uint32_t>(rng_.uniform(1u << 24));
      auto conn = std::make_unique<TcpConnection>(loop_, cfg_, node_,
                                                  p.tcp.dst_port, p.src,
                                                  p.tcp.src_port, send_fn_, iss);
      TcpConnection& ref = *conn;
      conns_[key] = std::move(conn);
      lit->second(ref);  // application installs callbacks
      ref.handle_segment(p);
      return;
    }
  }
  sim::logf(sim::LogLevel::kDebug, loop_.now(), "tcp",
            "node %u: no connection for %s", node_, p.describe().c_str());
}

TcpStats TcpStack::aggregate_stats() const {
  TcpStats total;
  for (const auto& [key, conn] : conns_) {
    const TcpStats& s = conn->stats();
    total.segments_sent += s.segments_sent;
    total.segments_received += s.segments_received;
    total.bytes_sent += s.bytes_sent;
    total.bytes_received += s.bytes_received;
    total.retransmits_fast += s.retransmits_fast;
    total.retransmits_rto += s.retransmits_rto;
    total.rto_expirations += s.rto_expirations;
    total.dup_acks_received += s.dup_acks_received;
    total.dup_acks_sent += s.dup_acks_sent;
    total.out_of_order_segments += s.out_of_order_segments;
  }
  return total;
}

}  // namespace h2sim::tcp
