#pragma once

#include <cstdint>
#include <cstddef>

#include "net/packet.hpp"
#include "sim/time.hpp"

// (sim::Duration comes from sim/time.hpp)

namespace h2sim::tcp {

/// Wrap-safe 32-bit sequence comparisons (RFC 793 arithmetic).
inline bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
inline bool seq_gt(std::uint32_t a, std::uint32_t b) { return seq_lt(b, a); }
inline bool seq_ge(std::uint32_t a, std::uint32_t b) { return seq_le(b, a); }

struct TcpConfig {
  std::size_t mss = net::kMssBytes;
  /// RFC 6928 initial window (10 segments).
  std::size_t initial_cwnd_segments = 10;
  std::size_t recv_window = 1 << 20;
  sim::Duration initial_rto = sim::Duration::seconds(1);
  sim::Duration min_rto = sim::Duration::millis(200);
  sim::Duration max_rto = sim::Duration::seconds(60);
  /// Cap on the exponentially backed-off RTO while retrying (several modern
  /// stacks bound the backoff; this also bounds recovery latency after an
  /// outage).
  sim::Duration rto_backoff_cap = sim::Duration::millis(800);
  /// Consecutive RTO expirations before the connection is declared broken.
  int max_rto_retries = 10;
  /// Abort when no forward progress (snd_una advance) happens for this long
  /// with data outstanding: the stack/application gives up on a dead path.
  sim::Duration stuck_timeout = sim::Duration::millis(5800);
  int dupack_threshold = 3;
  std::size_t send_buffer_limit = 16 << 20;
};

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t bytes_sent = 0;        // payload bytes, first transmissions
  std::uint64_t bytes_received = 0;    // payload bytes delivered in order
  std::uint64_t retransmits_fast = 0;
  std::uint64_t retransmits_rto = 0;
  std::uint64_t rto_expirations = 0;
  std::uint64_t dup_acks_received = 0;
  std::uint64_t dup_acks_sent = 0;
  std::uint64_t out_of_order_segments = 0;

  std::uint64_t total_retransmits() const {
    return retransmits_fast + retransmits_rto;
  }
};

}  // namespace h2sim::tcp
