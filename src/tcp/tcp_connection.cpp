#include "tcp/tcp_connection.hpp"

#include <algorithm>
#include <cassert>

#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "sim/log.hpp"

namespace h2sim::tcp {

using net::Packet;
using net::tcpflag::kAck;
using net::tcpflag::kFin;
using net::tcpflag::kRst;
using net::tcpflag::kSyn;

namespace {

/// Trace pid for a connection endpoint: node 1 is the client host, everything
/// else renders under the server track.
std::uint32_t trace_pid(net::NodeId node) {
  return node == 1 ? obs::track::kClient : obs::track::kServer;
}

}  // namespace

const char* to_string(TcpConnection::State s) {
  switch (s) {
    case TcpConnection::State::kClosed: return "CLOSED";
    case TcpConnection::State::kSynSent: return "SYN_SENT";
    case TcpConnection::State::kSynReceived: return "SYN_RCVD";
    case TcpConnection::State::kEstablished: return "ESTABLISHED";
    case TcpConnection::State::kFinWait1: return "FIN_WAIT_1";
    case TcpConnection::State::kFinWait2: return "FIN_WAIT_2";
    case TcpConnection::State::kCloseWait: return "CLOSE_WAIT";
    case TcpConnection::State::kLastAck: return "LAST_ACK";
    case TcpConnection::State::kClosing: return "CLOSING";
    case TcpConnection::State::kTimeWait: return "TIME_WAIT";
    case TcpConnection::State::kAborted: return "ABORTED";
  }
  return "?";
}

TcpConnection::TcpConnection(sim::EventLoop& loop, const TcpConfig& cfg,
                             net::NodeId local_node, net::Port local_port,
                             net::NodeId remote_node, net::Port remote_port,
                             SendFn send_fn, std::uint32_t initial_seq)
    : loop_(loop),
      cfg_(cfg),
      local_node_(local_node),
      local_port_(local_port),
      remote_node_(remote_node),
      remote_port_(remote_port),
      send_fn_(std::move(send_fn)),
      iss_(initial_seq),
      snd_una_(initial_seq),
      snd_nxt_(initial_seq),
      buf_seq_(initial_seq + 1),
      cwnd_(cfg.initial_cwnd_segments * cfg.mss),
      ssthresh_(cfg.recv_window),
      rto_(cfg.initial_rto) {
  auto& reg = obs::metrics();
  metrics_.segments_sent = reg.counter("tcp.segments_sent");
  metrics_.segments_received = reg.counter("tcp.segments_received");
  metrics_.retransmits_fast = reg.counter("tcp.retransmits_fast");
  metrics_.retransmits_rto = reg.counter("tcp.retransmits_rto");
  metrics_.rto_expirations = reg.counter("tcp.rto_expirations");
  metrics_.dup_acks_received = reg.counter("tcp.dup_acks_received");
  metrics_.connections_aborted = reg.counter("tcp.connections_aborted");
  metrics_.cwnd_bytes =
      reg.histogram("tcp.cwnd_bytes", obs::exponential_buckets(1460, 2.0, 14));
}

TcpConnection::~TcpConnection() { cancel_rto(); }

void TcpConnection::become(State s) {
  sim::logf(sim::LogLevel::kTrace, loop_.now(), "tcp", "%u:%u %s -> %s",
            local_node_, local_port_, to_string(state_), to_string(s));
  auto& tr = obs::tracer();
  if (tr.enabled(obs::Component::kTcp)) {
    tr.instant(obs::Component::kTcp, std::string("tcp:") + to_string(s),
               loop_.now(), trace_pid(local_node_), local_port_,
               obs::TraceArgs().add("from", to_string(state_)).take());
  }
  if (s == State::kEstablished) last_forward_progress_ = loop_.now();
  state_ = s;
}

void TcpConnection::trace_cwnd() {
  metrics_.cwnd_bytes.observe(static_cast<double>(cwnd_));
  auto& tr = obs::tracer();
  if (tr.enabled(obs::Component::kTcp)) {
    tr.counter(obs::Component::kTcp, "cwnd", loop_.now(), trace_pid(local_node_),
               local_port_, static_cast<double>(cwnd_));
  }
}

void TcpConnection::emit(std::uint8_t flags, std::uint32_t seq,
                         std::size_t payload_len, bool retransmission) {
  Packet p;
  // Ids come from the trial's own event loop: unique within the simulated
  // world, deterministic, and unshared with concurrently running trials.
  p.id = loop_.allocate_id();
  p.src = local_node_;
  p.dst = remote_node_;
  p.tcp.src_port = local_port_;
  p.tcp.dst_port = remote_port_;
  p.tcp.seq = seq;
  p.tcp.ack = (flags & kAck) ? rcv_nxt_ : 0;
  p.tcp.flags = flags;
  p.tcp.wnd = static_cast<std::uint32_t>(cfg_.recv_window);
  p.sent_at = loop_.now();
  p.is_retransmission = retransmission;
  if (payload_len > 0) {
    const std::size_t off = send_head_ + (seq - buf_seq_);
    assert(off + payload_len <= send_buf_.size());
    // Recycled buffer: the assign reuses pooled capacity, so steady-state
    // segment emission performs no heap allocation.
    p.payload = loop_.payload_pool().acquire();
    const std::uint8_t* src = send_buf_.data() + off;
    p.payload.assign(src, src + payload_len);
  }
  ++stats_.segments_sent;
  metrics_.segments_sent.inc();
  if (flags & kAck) last_ack_sent_ = rcv_nxt_;
  send_fn_(std::move(p));
}

void TcpConnection::send_ack() { emit(kAck, snd_nxt_, 0, false); }

void TcpConnection::connect() {
  assert(state_ == State::kClosed);
  become(State::kSynSent);
  snd_nxt_ = iss_ + 1;  // SYN consumes one sequence number
  emit(kSyn, iss_, 0, false);
  arm_rto();
}

void TcpConnection::send(std::span<const std::uint8_t> data) {
  if (state_ == State::kAborted || fin_pending_ || fin_sent_) return;
  if (send_buf_bytes() + data.size() > cfg_.send_buffer_limit) {
    sim::logf(sim::LogLevel::kWarn, loop_.now(), "tcp", "send buffer overflow");
    return;
  }
  if (send_head_ == send_buf_.size()) {
    send_buf_.clear();
    send_head_ = 0;
  } else if (send_head_ >= 4096 && send_head_ >= send_buf_bytes()) {
    // Reclaim the acked prefix once it dominates the buffer.
    send_buf_.erase(send_buf_.begin(),
                    send_buf_.begin() + static_cast<std::ptrdiff_t>(send_head_));
    send_head_ = 0;
  }
  send_buf_.insert(send_buf_.end(), data.begin(), data.end());
  if (state_ == State::kEstablished || state_ == State::kCloseWait) try_send();
}

void TcpConnection::close() {
  if (state_ == State::kEstablished) {
    become(State::kFinWait1);
  } else if (state_ == State::kCloseWait) {
    become(State::kLastAck);
  } else {
    return;
  }
  fin_pending_ = true;
  try_send();
}

void TcpConnection::abort(std::string_view reason) {
  if (state_ == State::kAborted) return;
  metrics_.connections_aborted.inc();
  auto& tr = obs::tracer();
  if (tr.enabled(obs::Component::kTcp)) {
    tr.instant(obs::Component::kTcp, "abort", loop_.now(),
               trace_pid(local_node_), local_port_,
               obs::TraceArgs().add("reason", reason).take());
  }
  emit(kRst | kAck, snd_nxt_, 0, false);
  cancel_rto();
  become(State::kAborted);
  if (cbs_.on_aborted) cbs_.on_aborted(reason);
}

void TcpConnection::try_send() {
  if (state_ != State::kEstablished && state_ != State::kCloseWait &&
      state_ != State::kFinWait1 && state_ != State::kLastAck) {
    return;
  }
  const std::uint32_t buf_end = buf_seq_ + static_cast<std::uint32_t>(send_buf_bytes());
  const bool was_idle = snd_una_ == snd_nxt_;
  bool sent_any = false;
  for (;;) {
    const std::size_t flight = snd_nxt_ - snd_una_;
    const std::size_t wnd = std::min(cwnd_, static_cast<std::size_t>(peer_wnd_));
    if (flight >= wnd) break;
    const std::size_t usable = wnd - flight;
    if (!seq_lt(snd_nxt_, buf_end)) break;  // nothing unsent
    const std::size_t unsent = buf_end - snd_nxt_;
    const std::size_t len = std::min({cfg_.mss, unsent, usable});
    if (len == 0) break;
    tx_records_[snd_nxt_] =
        TxRecord{snd_nxt_ + static_cast<std::uint32_t>(len), loop_.now(), 1};
    emit(kAck, snd_nxt_, len, false);
    stats_.bytes_sent += len;
    snd_nxt_ += static_cast<std::uint32_t>(len);
    sent_any = true;
  }
  maybe_send_fin();
  // The no-progress clock measures time stalled on in-flight data, not idle
  // time: restart it when transmission resumes after an idle period.
  if (was_idle && snd_una_ != snd_nxt_) last_forward_progress_ = loop_.now();
  if (sent_any || fin_sent_) arm_rto();
}

void TcpConnection::maybe_send_fin() {
  if (!fin_pending_ || fin_sent_) return;
  const std::uint32_t buf_end = buf_seq_ + static_cast<std::uint32_t>(send_buf_bytes());
  if (seq_lt(snd_nxt_, buf_end)) return;  // data still unsent
  fin_seq_ = snd_nxt_;
  fin_sent_ = true;
  snd_nxt_ += 1;  // FIN consumes one sequence number
  emit(kFin | kAck, fin_seq_, 0, false);
  arm_rto();
}

void TcpConnection::retransmit_from(std::uint32_t seq, const char* why,
                                    bool rto_driven) {
  const std::uint32_t buf_end = buf_seq_ + static_cast<std::uint32_t>(send_buf_bytes());
  if (fin_sent_ && seq == fin_seq_) {
    emit(kFin | kAck, fin_seq_, 0, true);
  } else if (seq_lt(seq, buf_end)) {
    const std::size_t avail = buf_end - seq;
    const std::size_t in_flight_past = snd_nxt_ - seq;
    const std::size_t len = std::min({cfg_.mss, avail, in_flight_past});
    if (len == 0) return;
    auto it = tx_records_.find(seq);
    if (it != tx_records_.end()) {
      ++it->second.tx_count;  // Karn: this range no longer yields RTT samples
    } else {
      tx_records_[seq] = TxRecord{seq + static_cast<std::uint32_t>(len),
                                  loop_.now(), 2};
    }
    emit(kAck, seq, len, true);
  } else {
    return;
  }
  if (rto_driven) {
    ++stats_.retransmits_rto;
    metrics_.retransmits_rto.inc();
  } else {
    ++stats_.retransmits_fast;
    metrics_.retransmits_fast.inc();
  }
  sim::logf(sim::LogLevel::kDebug, loop_.now(), "tcp", "%u:%u retransmit seq=%u (%s)",
            local_node_, local_port_, seq, why);
  auto& tr = obs::tracer();
  if (tr.enabled(obs::Component::kTcp)) {
    tr.instant(obs::Component::kTcp, "retransmit", loop_.now(),
               trace_pid(local_node_), local_port_,
               obs::TraceArgs().add("seq", seq).add("why", why).take());
  }
}

void TcpConnection::arm_rto() {
  sim::logf(sim::LogLevel::kTrace, loop_.now(), "tcp", "%u:%u arm_rto %.1fms",
            local_node_, local_port_, rto_.to_millis());
  // Rearm in place when possible: reschedule_after assigns the same fire time
  // and the same FIFO seq as cancel+schedule would, so traces are unchanged,
  // but the callback is kept instead of destroyed and rebuilt.
  if (!loop_.reschedule_after(rto_timer_, rto_)) {
    rto_timer_ = loop_.schedule_after(rto_, [this] { on_rto(); });
  }
}

void TcpConnection::cancel_rto() { rto_timer_.cancel(); }

void TcpConnection::on_rto() {
  if (state_ == State::kAborted || state_ == State::kTimeWait ||
      state_ == State::kClosed) {
    return;
  }
  ++stats_.rto_expirations;
  metrics_.rto_expirations.inc();
  {
    auto& tr = obs::tracer();
    if (tr.enabled(obs::Component::kTcp)) {
      tr.instant(obs::Component::kTcp, "rto", loop_.now(),
                 trace_pid(local_node_), local_port_,
                 obs::TraceArgs().add("rto_ms", rto_.to_millis()).take());
    }
  }
  ++consecutive_rto_;
  if (consecutive_rto_ > cfg_.max_rto_retries) {
    sim::logf(sim::LogLevel::kWarn, loop_.now(), "tcp",
              "%u:%u broken connection after %d consecutive RTOs", local_node_,
              local_port_, consecutive_rto_);
    abort("rto-retries-exceeded");
    return;
  }
  if (snd_una_ != snd_nxt_ &&
      loop_.now() - last_forward_progress_ > cfg_.stuck_timeout) {
    sim::logf(sim::LogLevel::kWarn, loop_.now(), "tcp",
              "%u:%u broken connection: no forward progress for %.1fs",
              local_node_, local_port_,
              (loop_.now() - last_forward_progress_).to_seconds());
    abort("no-forward-progress");
    return;
  }
  rto_ = std::min({rto_ * 2, cfg_.max_rto,
                   std::max(cfg_.rto_backoff_cap, cfg_.min_rto)});

  if (state_ == State::kSynSent) {
    emit(kSyn, iss_, 0, true);
    ++stats_.retransmits_rto;
  } else if (state_ == State::kSynReceived) {
    emit(kSyn | kAck, iss_, 0, true);
    ++stats_.retransmits_rto;
  } else if (snd_una_ != snd_nxt_) {
    // Loss signalled by timeout: back off to one segment.
    const std::size_t flight = snd_nxt_ - snd_una_;
    ssthresh_ = std::max(flight / 2, 2 * cfg_.mss);
    cwnd_ = cfg_.mss;
    trace_cwnd();
    in_fast_recovery_ = false;
    dupacks_ = 0;
    retransmit_from(snd_una_, "rto", true);
  }
  // Re-arm only while something is actually outstanding.
  if (snd_una_ != snd_nxt_ || state_ == State::kSynSent ||
      state_ == State::kSynReceived) {
    arm_rto();
  }
}

void TcpConnection::update_rtt(sim::Duration sample) {
  if (!have_rtt_sample_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    have_rtt_sample_ = true;
  } else {
    const auto err = sim::Duration::nanos(
        std::abs(srtt_.count_nanos() - sample.count_nanos()));
    rttvar_ = rttvar_ * 3 / 4 + err / 4;
    srtt_ = srtt_ * 7 / 8 + sample / 8;
  }
  sim::Duration rto = srtt_ + rttvar_ * 4;
  rto_ = std::clamp(rto, cfg_.min_rto, cfg_.max_rto);
}

void TcpConnection::handle_segment(const net::Packet& p) {
  ++stats_.segments_received;
  metrics_.segments_received.inc();
  if (state_ == State::kAborted || state_ == State::kClosed) {
    if (p.tcp.syn() && state_ == State::kClosed) {
      // Passive open.
      irs_ = p.tcp.seq;
      rcv_nxt_ = irs_ + 1;
      peer_wnd_ = p.tcp.wnd;
      become(State::kSynReceived);
      snd_nxt_ = iss_ + 1;
      emit(kSyn | kAck, iss_, 0, false);
      arm_rto();
    }
    return;
  }

  if (p.tcp.rst()) {
    cancel_rto();
    become(State::kAborted);
    if (cbs_.on_aborted) cbs_.on_aborted("rst-received");
    return;
  }

  peer_wnd_ = p.tcp.wnd;

  if (state_ == State::kSynSent) {
    if (p.tcp.syn() && p.tcp.ack_flag() && p.tcp.ack == iss_ + 1) {
      irs_ = p.tcp.seq;
      rcv_nxt_ = irs_ + 1;
      snd_una_ = p.tcp.ack;
      consecutive_rto_ = 0;
      cancel_rto();
      rto_ = cfg_.initial_rto;
      become(State::kEstablished);
      send_ack();
      if (cbs_.on_connected) cbs_.on_connected();
      try_send();
    }
    return;
  }

  if (state_ == State::kSynReceived) {
    if (p.tcp.ack_flag() && p.tcp.ack == iss_ + 1) {
      snd_una_ = p.tcp.ack;
      consecutive_rto_ = 0;
      cancel_rto();
      rto_ = cfg_.initial_rto;
      become(State::kEstablished);
      if (cbs_.on_connected) cbs_.on_connected();
      // fall through: the ACK may carry data
    } else if (p.tcp.syn()) {
      emit(kSyn | kAck, iss_, 0, true);  // retransmitted SYN: re-answer
      return;
    } else {
      return;
    }
  }

  if (p.tcp.ack_flag()) handle_ack(p);
  if (state_ == State::kAborted) return;
  if (!p.payload.empty() || p.tcp.fin()) handle_payload(p);
}

void TcpConnection::handle_ack(const net::Packet& p) {
  const std::uint32_t ack = p.tcp.ack;
  if (seq_gt(ack, snd_nxt_)) return;  // acks data never sent; ignore

  if (seq_gt(ack, snd_una_)) {
    const std::size_t newly_acked = ack - snd_una_;
    on_new_ack(ack, newly_acked);
    return;
  }

  // ack == snd_una_ (or older): potential duplicate ACK.
  if (ack == snd_una_ && p.payload.empty() && !p.tcp.fin() &&
      snd_una_ != snd_nxt_) {
    ++stats_.dup_acks_received;
    metrics_.dup_acks_received.inc();
    ++dupacks_;
    sim::logf(sim::LogLevel::kTrace, loop_.now(), "tcp",
              "%u:%u dupack #%d ack=%u flight=%zu", local_node_, local_port_,
              dupacks_, ack, static_cast<std::size_t>(snd_nxt_ - snd_una_));
    if (in_fast_recovery_) {
      cwnd_ += cfg_.mss;  // inflate for the segment that left the network
      try_send();
    } else if (dupacks_ == cfg_.dupack_threshold) {
      enter_fast_retransmit();
    }
  }
}

void TcpConnection::on_new_ack(std::uint32_t ack, std::size_t newly_acked) {
  consecutive_rto_ = 0;
  last_forward_progress_ = loop_.now();

  // RTT sampling: only the segment at the left window edge, and only if it
  // was transmitted exactly once (Karn). Sampling later segments of a
  // cumulative ACK would count queueing time behind retransmission holes as
  // path RTT and blow up the RTO.
  const auto edge = tx_records_.find(snd_una_);
  if (edge != tx_records_.end() && seq_le(edge->second.end_seq, ack) &&
      edge->second.tx_count == 1) {
    update_rtt(loop_.now() - edge->second.first_tx);
  }
  for (auto it = tx_records_.begin(); it != tx_records_.end();) {
    if (seq_le(it->second.end_seq, ack)) {
      it = tx_records_.erase(it);
    } else {
      ++it;
    }
  }

  snd_una_ = ack;

  // Release acked stream bytes (the FIN consumes a non-stream sequence slot).
  std::uint32_t data_end = ack;
  if (fin_sent_ && seq_gt(ack, fin_seq_)) data_end = fin_seq_;
  if (seq_gt(data_end, buf_seq_)) {
    std::size_t n = data_end - buf_seq_;
    n = std::min(n, send_buf_bytes());
    send_head_ += n;
    buf_seq_ += static_cast<std::uint32_t>(n);
  }

  if (in_fast_recovery_) {
    if (seq_ge(ack, recover_)) {
      cwnd_ = ssthresh_;  // full recovery
      in_fast_recovery_ = false;
      dupacks_ = 0;
    } else {
      // NewReno partial ACK: retransmit the next hole, deflate the window.
      retransmit_from(snd_una_, "partial-ack", false);
      cwnd_ = cwnd_ > newly_acked ? cwnd_ - newly_acked + cfg_.mss : cfg_.mss;
    }
  } else {
    dupacks_ = 0;
    if (cwnd_ < ssthresh_) {
      cwnd_ += std::min(newly_acked, cfg_.mss);  // slow start
    } else {
      cwnd_ += std::max<std::size_t>(1, cfg_.mss * cfg_.mss / cwnd_);  // CA
    }
  }
  trace_cwnd();

  // Our FIN acknowledged?
  if (fin_sent_ && seq_gt(snd_una_, fin_seq_)) {
    if (state_ == State::kFinWait1) become(State::kFinWait2);
    else if (state_ == State::kClosing) become(State::kTimeWait);
    else if (state_ == State::kLastAck) become(State::kClosed);
  }

  // New data acknowledged: exponential backoff ends (Linux resets
  // icsk_backoff here); the timer is re-armed from the smoothed estimate.
  if (have_rtt_sample_) {
    rto_ = std::clamp(srtt_ + rttvar_ * 4, cfg_.min_rto, cfg_.max_rto);
  } else {
    rto_ = cfg_.initial_rto;
  }
  if (snd_una_ == snd_nxt_) {
    cancel_rto();
  } else {
    arm_rto();
  }
  try_send();
  if (cbs_.on_writable) cbs_.on_writable();
}

void TcpConnection::enter_fast_retransmit() {
  const std::size_t flight = snd_nxt_ - snd_una_;
  ssthresh_ = std::max(flight / 2, 2 * cfg_.mss);
  recover_ = snd_nxt_;
  in_fast_recovery_ = true;
  retransmit_from(snd_una_, "fast-retransmit", false);
  cwnd_ = ssthresh_ + 3 * cfg_.mss;
  trace_cwnd();
}

void TcpConnection::handle_payload(const net::Packet& p) {
  const std::uint32_t rcv_before = rcv_nxt_;
  const bool had_fin = p.tcp.fin();
  std::uint32_t seq = p.tcp.seq;
  if (had_fin) {
    const std::uint32_t fin_at = seq + static_cast<std::uint32_t>(p.payload.size());
    if (!remote_fin_seq_) remote_fin_seq_ = fin_at;
  }

  if (!p.payload.empty()) {
    if (seq_gt(seq, rcv_nxt_)) {
      ++stats_.out_of_order_segments;
      ooo_.emplace(seq, p.payload);
      ++stats_.dup_acks_sent;
    } else {
      const std::uint32_t end = seq + static_cast<std::uint32_t>(p.payload.size());
      if (seq_gt(end, rcv_nxt_)) {
        // Assemble the full newly-contiguous run (this segment's fresh bytes
        // plus any buffered out-of-order segments it unblocks) and advance
        // rcv_nxt_ over all of it BEFORE delivering to the application:
        // packets the application emits during delivery must carry the final
        // cumulative acknowledgment, exactly like a real stack that
        // processes the segment batch before the app runs.
        const std::size_t skip = rcv_nxt_ - seq;
        std::vector<std::uint8_t> ready = loop_.payload_pool().acquire();
        ready.assign(p.payload.begin() + static_cast<std::ptrdiff_t>(skip),
                     p.payload.end());
        rcv_nxt_ = end;
        collect_in_order(ready);
        stats_.bytes_received += ready.size();
        if (cbs_.on_data) cbs_.on_data(std::span(ready));
        loop_.payload_pool().release(std::move(ready));
      } else {
        ++stats_.dup_acks_sent;  // pure duplicate segment
      }
    }
  }

  // Process FIN once all preceding data has been consumed.
  if (remote_fin_seq_ && rcv_nxt_ == *remote_fin_seq_) {
    rcv_nxt_ += 1;
    remote_fin_seq_.reset();
    if (state_ == State::kEstablished) become(State::kCloseWait);
    else if (state_ == State::kFinWait1) become(State::kClosing);
    else if (state_ == State::kFinWait2) become(State::kTimeWait);
    if (cbs_.on_remote_close) cbs_.on_remote_close();
  }

  // Acknowledge. Out-of-order or duplicate segments must generate duplicate
  // ACKs (they drive the peer's fast retransmit). For in-order data, skip
  // the pure ACK when delivery already emitted a packet (e.g. an HTTP/2
  // WINDOW_UPDATE) carrying the same acknowledgment — a redundant pure ACK
  // here would look like a duplicate ACK to the peer and trigger spurious
  // fast retransmits.
  const bool advanced = rcv_nxt_ != rcv_before;
  if (!advanced || last_ack_sent_ != rcv_nxt_) send_ack();
}

void TcpConnection::collect_in_order(std::vector<std::uint8_t>& ready) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = ooo_.begin(); it != ooo_.end();) {
      const std::uint32_t seg_seq = it->first;
      const auto& bytes = it->second;
      const std::uint32_t seg_end =
          seg_seq + static_cast<std::uint32_t>(bytes.size());
      if (seq_le(seg_end, rcv_nxt_)) {
        it = ooo_.erase(it);  // fully duplicate
        continue;
      }
      if (seq_gt(seg_seq, rcv_nxt_)) {
        ++it;  // still a hole before this one
        continue;
      }
      const std::size_t skip = rcv_nxt_ - seg_seq;
      ready.insert(ready.end(), bytes.begin() + static_cast<std::ptrdiff_t>(skip),
                   bytes.end());
      rcv_nxt_ = seg_end;
      ooo_.erase(it);
      progressed = true;  // rescan: map is keyed by raw value, not seq order
      break;
    }
  }
}

}  // namespace h2sim::tcp
