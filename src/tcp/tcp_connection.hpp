#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"
#include "tcp/tcp_types.hpp"

namespace h2sim::tcp {

/// A single TCP connection endpoint: byte-stream delivery with slow start /
/// congestion avoidance, duplicate-ACK fast retransmit with NewReno-style
/// recovery, Jacobson/Karn RTT estimation, exponential RTO backoff and abort
/// after repeated timeouts. This is the substrate whose dynamics (dup-ACKs,
/// fast retransmits, resets) the paper's adversary provokes and exploits.
class TcpConnection {
 public:
  enum class State {
    kClosed,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinWait1,
    kFinWait2,
    kCloseWait,
    kLastAck,
    kClosing,
    kTimeWait,
    kAborted,
  };

  struct Callbacks {
    std::function<void()> on_connected;
    std::function<void(std::span<const std::uint8_t>)> on_data;
    std::function<void()> on_remote_close;  // FIN received: clean EOF
    std::function<void(std::string_view reason)> on_aborted;
    /// Fired whenever an ACK frees send-buffer space; upper layers use it to
    /// resume writing after socket backpressure.
    std::function<void()> on_writable;
  };

  using SendFn = std::function<void(net::Packet&&)>;

  TcpConnection(sim::EventLoop& loop, const TcpConfig& cfg, net::NodeId local_node,
                net::Port local_port, net::NodeId remote_node, net::Port remote_port,
                SendFn send_fn, std::uint32_t initial_seq);

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;
  ~TcpConnection();

  void set_callbacks(Callbacks cbs) { cbs_ = std::move(cbs); }

  /// Active open: sends SYN.
  void connect();

  /// Queues application bytes for in-order delivery to the peer.
  void send(std::span<const std::uint8_t> data);

  /// Graceful close: FIN after all queued data.
  void close();

  /// Hard abort: sends RST and tears down locally.
  void abort(std::string_view reason);

  /// Entry point for segments from the network (called by TcpStack).
  void handle_segment(const net::Packet& p);

  State state() const { return state_; }
  bool established() const { return state_ == State::kEstablished; }
  bool aborted() const { return state_ == State::kAborted; }
  bool fully_closed() const {
    return state_ == State::kTimeWait || state_ == State::kClosed ||
           state_ == State::kAborted;
  }
  const TcpStats& stats() const { return stats_; }
  net::Port local_port() const { return local_port_; }
  net::Port remote_port() const { return remote_port_; }
  std::size_t bytes_in_flight() const { return snd_nxt_ - snd_una_; }
  std::size_t unsent_bytes() const {
    return (buf_seq_ + static_cast<std::uint32_t>(send_buf_bytes())) - snd_nxt_;
  }
  std::size_t cwnd() const { return cwnd_; }
  sim::Duration current_rto() const { return rto_; }

 private:
  struct TxRecord {
    std::uint32_t end_seq;
    sim::TimePoint first_tx;
    int tx_count = 1;
  };

  void emit(std::uint8_t flags, std::uint32_t seq, std::size_t payload_len,
            bool retransmission);
  void send_ack();
  void try_send();
  void retransmit_from(std::uint32_t seq, const char* why, bool rto_driven);
  void handle_ack(const net::Packet& p);
  void handle_payload(const net::Packet& p);
  void on_new_ack(std::uint32_t ack, std::size_t newly_acked);
  void enter_fast_retransmit();
  void arm_rto();
  void cancel_rto();
  void on_rto();
  void update_rtt(sim::Duration sample);
  void collect_in_order(std::vector<std::uint8_t>& ready);
  void become(State s);
  void maybe_send_fin();
  void finish_if_done();

  sim::EventLoop& loop_;
  TcpConfig cfg_;
  net::NodeId local_node_;
  net::Port local_port_;
  net::NodeId remote_node_;
  net::Port remote_port_;
  SendFn send_fn_;
  Callbacks cbs_;

  State state_ = State::kClosed;

  // --- Sender ---
  std::uint32_t iss_;
  std::uint32_t snd_una_;
  std::uint32_t snd_nxt_;
  std::uint32_t buf_seq_;  // sequence number of the first unacked byte
  // Unacked + unsent stream bytes: flat buffer with an acked-prefix offset,
  // so segment emission copies from contiguous storage and acking is O(1).
  std::vector<std::uint8_t> send_buf_;
  std::size_t send_head_ = 0;
  std::size_t send_buf_bytes() const { return send_buf_.size() - send_head_; }
  std::size_t cwnd_;
  std::size_t ssthresh_;
  std::size_t peer_wnd_ = 65535;
  int dupacks_ = 0;
  bool in_fast_recovery_ = false;
  std::uint32_t recover_ = 0;  // NewReno high-water mark
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;

  std::map<std::uint32_t, TxRecord> tx_records_;
  sim::Duration rto_;
  sim::Duration srtt_ = sim::Duration::zero();
  sim::Duration rttvar_ = sim::Duration::zero();
  bool have_rtt_sample_ = false;
  sim::TimerHandle rto_timer_;
  int consecutive_rto_ = 0;
  sim::TimePoint last_forward_progress_;

  // --- Receiver ---
  std::uint32_t irs_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, std::vector<std::uint8_t>> ooo_;
  std::optional<std::uint32_t> remote_fin_seq_;
  std::uint32_t last_ack_sent_ = 0;

  TcpStats stats_;

  // Process-wide observability (obs/): per-connection handles into the shared
  // registry — increments aggregate across every connection in the trial.
  struct Metrics {
    obs::Counter segments_sent;
    obs::Counter segments_received;
    obs::Counter retransmits_fast;
    obs::Counter retransmits_rto;
    obs::Counter rto_expirations;
    obs::Counter dup_acks_received;
    obs::Counter connections_aborted;
    obs::Histogram cwnd_bytes;
  };
  Metrics metrics_;
  void trace_cwnd();
};

const char* to_string(TcpConnection::State s);

}  // namespace h2sim::tcp
