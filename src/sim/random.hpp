#pragma once

#include <cstdint>
#include <vector>

namespace h2sim::sim {

/// Deterministic PRNG (xoshiro256**, seeded via splitmix64). Every trial in
/// the reproduction is a pure function of its seed; we avoid std::mt19937 so
/// the stream is identical across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child generator; used to give each subsystem its
  /// own stream so adding a consumer does not perturb the others.
  Rng split();

  std::uint64_t next_u64();

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t uniform(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Gaussian via Box-Muller (mean, stddev).
  double gaussian(double mean, double stddev);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_cache_ = 0.0;
};

}  // namespace h2sim::sim
