#pragma once

#include <cstdarg>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace h2sim::sim {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5
};

/// Parses "trace" / "debug" / "info" / "warn" / "error" / "off"
/// (case-insensitive).
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Process-wide log sink with a simulated-time prefix. Off by default so test
/// and benchmark output stays clean; examples flip it on for narrative runs.
///
/// The environment variable H2SIM_LOG_LEVEL overrides the default at startup.
/// Its value is a comma-separated spec: a bare level name sets the global
/// threshold, `component=level` entries set per-component thresholds, e.g.
///   H2SIM_LOG_LEVEL=info                 # everything at info
///   H2SIM_LOG_LEVEL=tcp=trace            # only tcp, everything else off
///   H2SIM_LOG_LEVEL=warn,browser=debug   # warn globally, browser verbose
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Per-component threshold; overrides the global level for that component
  /// string (the `component` argument call sites pass to logf).
  void set_component_level(std::string component, LogLevel level) {
    component_levels_[std::move(component)] = level;
  }
  void clear_component_levels() { component_levels_.clear(); }

  /// Threshold in force for this component: its override if one is set,
  /// otherwise the global level.
  LogLevel effective_level(const char* component) const {
    if (component_levels_.empty()) return level_;  // common fast path
    const auto it = component_levels_.find(std::string_view(component));
    return it != component_levels_.end() ? it->second : level_;
  }
  bool should_log(LogLevel level, const char* component) const {
    return level >= effective_level(component);
  }

  /// Applies a H2SIM_LOG_LEVEL-style spec (see class comment). Unparseable
  /// entries are skipped; returns false if any entry was skipped.
  bool apply_spec(std::string_view spec);

  void log(LogLevel level, TimePoint t, const char* component, const std::string& msg);

 private:
  Logger();  // applies H2SIM_LOG_LEVEL when present
  LogLevel level_ = LogLevel::kOff;
  std::map<std::string, LogLevel, std::less<>> component_levels_;
};

/// printf-style convenience wrapper. Formatting is skipped entirely when the
/// component's effective level filters the message out.
void logf(LogLevel level, TimePoint t, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace h2sim::sim
