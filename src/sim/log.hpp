#pragma once

#include <cstdarg>
#include <string>

#include "sim/time.hpp"

namespace h2sim::sim {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide log sink with a simulated-time prefix. Off by default so test
/// and benchmark output stays clean; examples flip it on for narrative runs.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void log(LogLevel level, TimePoint t, const char* component, const std::string& msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kOff;
};

/// printf-style convenience wrapper.
void logf(LogLevel level, TimePoint t, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace h2sim::sim
