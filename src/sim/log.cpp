#include "sim/log.hpp"

#include <cstdio>

namespace h2sim::sim {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, TimePoint t, const char* component,
                 const std::string& msg) {
  if (level < level_) return;
  static const char* names[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  std::fprintf(stderr, "[%12.3fms] %-5s %-10s %s\n", t.to_millis(),
               names[static_cast<int>(level)], component, msg.c_str());
}

void logf(LogLevel level, TimePoint t, const char* component, const char* fmt, ...) {
  Logger& logger = Logger::instance();
  if (level < logger.level()) return;
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  logger.log(level, t, component, buf);
}

}  // namespace h2sim::sim
