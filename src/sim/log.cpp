#include "sim/log.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace h2sim::sim {

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

Logger::Logger() {
  if (const char* spec = std::getenv("H2SIM_LOG_LEVEL")) apply_spec(spec);
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

bool Logger::apply_spec(std::string_view spec) {
  bool all_ok = true;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view entry = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    // Trim surrounding whitespace.
    while (!entry.empty() && std::isspace(static_cast<unsigned char>(entry.front())))
      entry.remove_prefix(1);
    while (!entry.empty() && std::isspace(static_cast<unsigned char>(entry.back())))
      entry.remove_suffix(1);
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      const auto level = parse_log_level(entry);
      if (level) {
        level_ = *level;
      } else {
        all_ok = false;
      }
      continue;
    }
    const auto level = parse_log_level(entry.substr(eq + 1));
    if (level && eq > 0) {
      set_component_level(std::string(entry.substr(0, eq)), *level);
    } else {
      all_ok = false;
    }
  }
  return all_ok;
}

void Logger::log(LogLevel level, TimePoint t, const char* component,
                 const std::string& msg) {
  if (!should_log(level, component)) return;
  static const char* names[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  std::fprintf(stderr, "[%12.3fms] %-5s %-10s %s\n", t.to_millis(),
               names[static_cast<int>(level)], component, msg.c_str());
}

void logf(LogLevel level, TimePoint t, const char* component, const char* fmt, ...) {
  Logger& logger = Logger::instance();
  if (!logger.should_log(level, component)) return;
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  logger.log(level, t, component, buf);
}

}  // namespace h2sim::sim
