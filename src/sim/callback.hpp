#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace h2sim::sim {

/// Move-only callable with fixed inline storage, the event loop's callback
/// type. Callables up to kInlineBytes (the per-packet lambdas the simulator
/// schedules: a `this` pointer plus a Packet by value) live inside the event
/// slab slot and never touch the heap; larger callables fall back to a heap
/// box, which the loop counts so benchmarks can prove the steady-state path
/// stays allocation-free.
///
/// Unlike std::function this type is move-only (no copyability requirement on
/// the callable, so lambdas may capture move-only state) and invocation is
/// one indirect call through a per-type ops table.
class InlineCallback {
 public:
  static constexpr std::size_t kInlineBytes = 120;

  InlineCallback() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineCallback> &&
             std::is_invocable_v<std::decay_t<F>&>)
  InlineCallback(F&& f) {  // NOLINT(bugprone-forwarding-reference-overload)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void reset() {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the wrapped callable was too large for the inline buffer and
  /// lives in a heap box (one allocation the loop's AllocStats records).
  bool on_heap() const { return ops_ != nullptr && ops_->heap; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct into dst's storage from src's storage, destroying src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
    bool heap;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*static_cast<D*>(s))(); },
      [](void* dst, void* src) {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* s) { static_cast<D*>(s)->~D(); },
      false,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**static_cast<D**>(s))(); },
      [](void* dst, void* src) { *static_cast<D**>(dst) = *static_cast<D**>(src); },
      [](void* s) { delete *static_cast<D**>(s); },
      true,
  };

  void move_from(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace h2sim::sim
