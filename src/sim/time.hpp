#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace h2sim::sim {

/// Simulated time, measured in integer nanoseconds since the start of the
/// simulation. A strong type so that raw integers cannot be confused with
/// timestamps, and so that durations and instants do not mix accidentally.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  static constexpr Duration micros(std::int64_t u) { return Duration{u * 1000}; }
  static constexpr Duration millis(std::int64_t m) { return Duration{m * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) {
    return Duration{s * 1'000'000'000};
  }
  static constexpr Duration millis_f(double m) {
    return Duration{static_cast<std::int64_t>(m * 1e6)};
  }
  static constexpr Duration seconds_f(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_nanos() const { return ns_; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An instant on the simulated clock.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_nanos(std::int64_t n) { return TimePoint{n}; }
  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_nanos() const { return ns_; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint{ns_ + d.count_nanos()};
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint{ns_ - d.count_nanos()};
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::nanos(ns_ - o.ns_);
  }
  constexpr TimePoint& operator+=(Duration d) {
    ns_ += d.count_nanos();
    return *this;
  }

 private:
  explicit constexpr TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// Formats a time point as e.g. "12.345ms" for logs and traces.
std::string format_time(TimePoint t);
std::string format_duration(Duration d);

}  // namespace h2sim::sim
