#include "sim/random.hpp"

#include <cmath>

namespace h2sim::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng Rng::split() { return Rng(next_u64() ^ 0xdeadbeefcafef00dULL); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::gaussian(double mean, double stddev) {
  if (have_gauss_) {
    have_gauss_ = false;
    return mean + stddev * gauss_cache_;
  }
  double u1, u2;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  gauss_cache_ = mag * std::sin(two_pi * u2);
  have_gauss_ = true;
  return mean + stddev * mag * std::cos(two_pi * u2);
}

}  // namespace h2sim::sim
