#include "sim/event_loop.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>

namespace h2sim::sim {

std::string format_time(TimePoint t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fms", t.to_millis());
  return buf;
}

std::string format_duration(Duration d) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fms", d.to_millis());
  return buf;
}

namespace detail {

namespace {

inline std::uint64_t tick_of(std::int64_t at_ns) {
  return static_cast<std::uint64_t>(at_ns) >> SchedulerCore::kScaleShift;
}

/// Level of the highest 6-bit digit in which `tick` differs from the wheel
/// cursor. Events always land strictly ahead of the cursor's slot index at
/// their level, so bucket scans never wrap.
inline int level_for(std::uint64_t tick, std::uint64_t cur_tick) {
  const std::uint64_t diff = tick ^ cur_tick;
  if (diff == 0) return 0;
  const int high_bit = 63 - std::countl_zero(diff);
  return high_bit / SchedulerCore::kLevelBits;
}

}  // namespace

std::uint32_t SchedulerCore::acquire() {
  if (free_head == kNoIndex) {
    // Exhausted: add one chunk and thread its slots onto the free list so
    // indices are handed out ascending within the chunk.
    const auto base = static_cast<std::uint32_t>(chunks.size()) << kChunkShift;
    chunks.push_back(std::make_unique<Slot[]>(kChunkSize));
    ++chunk_allocs;
    for (std::uint32_t i = kChunkSize; i-- > 0;) {
      Slot& s = chunks.back()[i];
      s.next = free_head;
      free_head = base + i;
    }
  }
  const std::uint32_t index = free_head;
  Slot& s = slot(index);
  free_head = s.next;
  s.next = kNoIndex;
  s.prev = kNoIndex;
  s.cancelled = false;
  return index;
}

void SchedulerCore::release(std::uint32_t index) {
  Slot& s = slot(index);
  s.cb.reset();
  s.cancelled = false;
  s.bucket = kBucketFree;
  ++s.generation;  // invalidate every outstanding handle to this occupancy
  s.next = free_head;
  s.prev = kNoIndex;
  free_head = index;
}

void SchedulerCore::wheel_insert(std::uint32_t index) {
  Slot& s = slot(index);
  const std::uint64_t tick = tick_of(s.at_ns);
  assert(tick >= cur_tick && "wheel inserts must be at/after the cursor");
  const int level = level_for(tick, cur_tick);
  const auto slot_idx = static_cast<std::uint32_t>(
      (tick >> (level * kLevelBits)) & (kSlotsPerLevel - 1));
  const std::uint32_t bucket = static_cast<std::uint32_t>(level) * kSlotsPerLevel + slot_idx;

  s.bucket = static_cast<std::uint16_t>(bucket);
  s.next = kNoIndex;
  s.prev = tail[bucket];
  if (tail[bucket] != kNoIndex) {
    slot(tail[bucket]).next = index;
  } else {
    head[bucket] = index;
    occupied[static_cast<std::size_t>(level)] |= 1ull << slot_idx;
  }
  tail[bucket] = index;
  ++wheel_count;
}

void SchedulerCore::wheel_unlink(std::uint32_t index) {
  Slot& s = slot(index);
  if (s.bucket >= kBucketCount) return;  // near-heap or free: nothing linked
  const std::uint32_t bucket = s.bucket;
  if (s.prev != kNoIndex) {
    slot(s.prev).next = s.next;
  } else {
    head[bucket] = s.next;
  }
  if (s.next != kNoIndex) {
    slot(s.next).prev = s.prev;
  } else {
    tail[bucket] = s.prev;
  }
  if (head[bucket] == kNoIndex) {
    occupied[bucket >> kLevelBits] &=
        ~(1ull << (bucket & (kSlotsPerLevel - 1)));
  }
  s.next = kNoIndex;
  s.prev = kNoIndex;
  s.bucket = kBucketNear;  // unlinked; caller decides the next state
  --wheel_count;
}

void SchedulerCore::cancel(std::uint32_t index, std::uint32_t generation) {
  Slot& s = slot(index);
  if (s.generation != generation || s.cancelled) return;
  ++sched.cancels;
  --live;
  if (s.bucket < kBucketCount) {
    // Still in a wheel bucket: unlink and recycle the slot right away. No
    // heap entry exists anywhere, so nothing is left to tombstone.
    wheel_unlink(index);
    release(index);
    return;
  }
  // Already promoted to the near-heap: the heap entry pops later, so keep
  // the slot and mark it; the pop reaps it.
  s.cancelled = true;
  s.cb.reset();  // free captured resources now
}

}  // namespace detail

using detail::SchedulerCore;

TimerHandle EventLoop::schedule_at(TimePoint at, Callback cb) {
  if (at < now_) at = now_;
  if (cb.on_heap()) ++alloc_stats_.callback_heap;
  const std::uint64_t chunks_before = core_->chunk_allocs;
  const std::uint32_t index = core_->acquire();
  alloc_stats_.slab_chunks += core_->chunk_allocs - chunks_before;
  SchedulerCore::Slot& slot = core_->slot(index);
  slot.cb = std::move(cb);
  slot.at_ns = at.count_nanos();
  slot.seq = next_seq_++;
  ++core_->live;
  const std::uint64_t tick =
      static_cast<std::uint64_t>(slot.at_ns) >> SchedulerCore::kScaleShift;
  if (tick < core_->cur_tick) {
    // The event's granule has already been drained: it joins the near-heap
    // directly, where (at, seq) ordering against its contemporaries lives.
    slot.bucket = SchedulerCore::kBucketNear;
    near_push(at, slot.seq, index, slot.generation);
  } else {
    core_->wheel_insert(index);
  }
  return TimerHandle{core_, index, slot.generation};
}

bool EventLoop::reschedule_at(TimerHandle& h, TimePoint at) {
  if (h.core_.lock().get() != core_.get()) return false;
  SchedulerCore::Slot& slot = core_->slot(h.index_);
  if (slot.generation != h.generation_ || slot.cancelled) return false;
  if (at < now_) at = now_;
  if (slot.bucket < SchedulerCore::kBucketCount) {
    core_->wheel_unlink(h.index_);
  } else {
    // Near-heap resident: its old (at, seq) entry is still in the heap, so
    // tombstone this occupancy and move the callback to a fresh slot; the
    // stale entry reaps on pop. Same observable effect, no double fire.
    Callback cb = std::move(slot.cb);
    slot.cancelled = true;
    --core_->live;
    const std::uint32_t index = core_->acquire();
    SchedulerCore::Slot& fresh = core_->slot(index);
    fresh.cb = std::move(cb);
    fresh.at_ns = at.count_nanos();
    fresh.seq = next_seq_++;
    ++core_->live;
    const std::uint64_t tick =
        static_cast<std::uint64_t>(fresh.at_ns) >> SchedulerCore::kScaleShift;
    if (tick < core_->cur_tick) {
      fresh.bucket = SchedulerCore::kBucketNear;
      near_push(at, fresh.seq, index, fresh.generation);
    } else {
      core_->wheel_insert(index);
    }
    h = TimerHandle{core_, index, fresh.generation};
    return true;
  }
  slot.at_ns = at.count_nanos();
  slot.seq = next_seq_++;
  const std::uint64_t tick =
      static_cast<std::uint64_t>(slot.at_ns) >> SchedulerCore::kScaleShift;
  if (tick < core_->cur_tick) {
    slot.bucket = SchedulerCore::kBucketNear;
    near_push(at, slot.seq, h.index_, slot.generation);
  } else {
    core_->wheel_insert(h.index_);
  }
  return true;
}

void EventLoop::near_push(TimePoint at, std::uint64_t seq, std::uint32_t index,
                          std::uint32_t generation) {
  if (near_.size() == near_.capacity()) ++alloc_stats_.heap_growth;
  near_.push_back(NearEntry{at, seq, index, generation});
  std::push_heap(near_.begin(), near_.end(), Later{});
}

namespace {

/// Cascades every higher-level bucket sitting at the cursor's own digit
/// index down into the lower-level windows it now covers. See the call site
/// in refill_near() for when such buckets can exist.
void catch_up_own_index(SchedulerCore& core) {
  for (int level = 1; level < SchedulerCore::kLevels; ++level) {
    if (core.occupied[static_cast<std::size_t>(level)] == 0) continue;
    const auto idxk = static_cast<std::uint32_t>(
        (core.cur_tick >> (level * SchedulerCore::kLevelBits)) &
        (SchedulerCore::kSlotsPerLevel - 1));
    if ((core.occupied[static_cast<std::size_t>(level)] & (1ull << idxk)) == 0) {
      continue;
    }
    ++core.sched.slots_scanned;
    const std::uint32_t bucket =
        static_cast<std::uint32_t>(level) * SchedulerCore::kSlotsPerLevel + idxk;
    std::uint32_t index = core.head[bucket];
    core.head[bucket] = SchedulerCore::kNoIndex;
    core.tail[bucket] = SchedulerCore::kNoIndex;
    core.occupied[static_cast<std::size_t>(level)] &= ~(1ull << idxk);
    while (index != SchedulerCore::kNoIndex) {
      SchedulerCore::Slot& s = core.slot(index);
      const std::uint32_t next = s.next;
      s.next = SchedulerCore::kNoIndex;
      s.prev = SchedulerCore::kNoIndex;
      --core.wheel_count;
      core.wheel_insert(index);
      ++core.sched.cascades;
      index = next;
    }
  }
}

}  // namespace

bool EventLoop::refill_near() {
  if (core_->wheel_count == 0) return false;
  auto& core = *core_;
  for (;;) {
    // When the cursor carried across a 64^k boundary (cur_tick = tick+1 after
    // a drain), a level-k bucket at the cursor's *own* digit index covers the
    // window the cursor just entered — its events belong inside the current
    // lower-level windows, so cascade them down before trusting any scan.
    // Ascending order suffices: cascaded events land at a strictly greater
    // digit than the cursor's at their new (lower) level, never own-index.
    // Only a drain-advance carry can create own-index occupancy (inserts land
    // at a digit strictly above the cursor's, and cascade jumps only clear or
    // zero digits), so the pass is gated on carry_pending.
    if (core.carry_pending) {
      core.carry_pending = false;
      catch_up_own_index(core);
    }
    // Level 0 next: each bucket there is exactly one granule, and (with
    // own-index buckets cascaded above) every occupied higher-level bucket
    // lies beyond the current level-0 window, so the first occupied level-0
    // bucket at/after the cursor is globally earliest.
    const auto idx0 =
        static_cast<std::uint32_t>(core.cur_tick & (SchedulerCore::kSlotsPerLevel - 1));
    ++core.sched.slots_scanned;
    const std::uint64_t mask0 = core.occupied[0] & (~0ull << idx0);
    if (mask0 != 0) {
      const auto slot_idx = static_cast<std::uint32_t>(std::countr_zero(mask0));
      const std::uint64_t granule_tick =
          (core.cur_tick & ~static_cast<std::uint64_t>(SchedulerCore::kSlotsPerLevel - 1)) |
          slot_idx;
      // Drain the whole granule in one sweep: unlink the bucket list and
      // promote every event to the near-heap in insertion order.
      std::uint32_t index = core.head[slot_idx];
      std::uint64_t drained = 0;
      while (index != SchedulerCore::kNoIndex) {
        SchedulerCore::Slot& s = core.slot(index);
        const std::uint32_t next = s.next;
        s.next = SchedulerCore::kNoIndex;
        s.prev = SchedulerCore::kNoIndex;
        s.bucket = SchedulerCore::kBucketNear;
        near_push(TimePoint::from_nanos(s.at_ns), s.seq, index, s.generation);
        ++drained;
        index = next;
      }
      core.head[slot_idx] = SchedulerCore::kNoIndex;
      core.tail[slot_idx] = SchedulerCore::kNoIndex;
      core.occupied[0] &= ~(1ull << slot_idx);
      core.wheel_count -= drained;
      // Advancing past the last granule of a level-0 window carries into the
      // upper digits; the own-index catch-up must run before the next scan.
      if ((granule_tick & (SchedulerCore::kSlotsPerLevel - 1)) ==
          SchedulerCore::kSlotsPerLevel - 1) {
        core.carry_pending = true;
      }
      core.cur_tick = granule_tick + 1;
      return true;
    }
    // Level-0 window exhausted: cascade the first occupied bucket of the
    // lowest level that has one, jumping the cursor to that bucket's base
    // tick. Cascaded events land strictly below their old level.
    bool cascaded = false;
    for (int level = 1; level < SchedulerCore::kLevels; ++level) {
      const auto idxk = static_cast<std::uint32_t>(
          (core.cur_tick >> (level * SchedulerCore::kLevelBits)) &
          (SchedulerCore::kSlotsPerLevel - 1));
      ++core.sched.slots_scanned;
      const std::uint64_t mask =
          core.occupied[static_cast<std::size_t>(level)] & (~0ull << idxk);
      if (mask == 0) continue;
      const auto slot_idx = static_cast<std::uint32_t>(std::countr_zero(mask));
      const std::uint32_t bucket =
          static_cast<std::uint32_t>(level) * SchedulerCore::kSlotsPerLevel + slot_idx;
      const int span_bits = (level + 1) * SchedulerCore::kLevelBits;
      const std::uint64_t span_mask =
          span_bits >= 64 ? ~0ull : (1ull << span_bits) - 1;
      core.cur_tick = (core.cur_tick & ~span_mask) |
                      (static_cast<std::uint64_t>(slot_idx)
                       << (level * SchedulerCore::kLevelBits));
      std::uint32_t index = core.head[bucket];
      core.head[bucket] = SchedulerCore::kNoIndex;
      core.tail[bucket] = SchedulerCore::kNoIndex;
      core.occupied[static_cast<std::size_t>(level)] &= ~(1ull << slot_idx);
      while (index != SchedulerCore::kNoIndex) {
        SchedulerCore::Slot& s = core.slot(index);
        const std::uint32_t next = s.next;
        s.next = SchedulerCore::kNoIndex;
        s.prev = SchedulerCore::kNoIndex;
        --core.wheel_count;
        core.wheel_insert(index);  // re-links at a lower level
        ++core.sched.cascades;
        index = next;
      }
      cascaded = true;
      break;
    }
    if (!cascaded) {
      assert(core.wheel_count == 0 && "occupancy bitmaps out of sync");
      return false;
    }
  }
}

bool EventLoop::peek_next(TimePoint* at) {
  for (;;) {
    if (near_.empty() && !refill_near()) return false;
    const NearEntry& top = near_.front();
    SchedulerCore::Slot& s = core_->slot(top.index);
    if (s.generation == top.generation && !s.cancelled) {
      *at = top.at;
      return true;
    }
    // Tombstoned (cancelled or rescheduled while near): reap the entry.
    if (s.generation == top.generation) core_->release(top.index);
    std::pop_heap(near_.begin(), near_.end(), Later{});
    near_.pop_back();
  }
}

bool EventLoop::step() {
  TimePoint at;
  if (!peek_next(&at)) return false;
  const NearEntry top = near_.front();
  std::pop_heap(near_.begin(), near_.end(), Later{});
  near_.pop_back();
  SchedulerCore::Slot& slot = core_->slot(top.index);
  now_ = top.at;
  // Move the callback out and release the slot before invoking: a late
  // cancel() is then a no-op, and the callback may freely schedule new
  // events (possibly reusing this very slot).
  Callback cb = std::move(slot.cb);
  core_->release(top.index);
  --core_->live;
  ++executed_;
  cb();
  return true;
}

std::size_t EventLoop::run(TimePoint until) {
  stopped_ = false;
  std::size_t n = 0;
  TimePoint at;
  while (!stopped_ && peek_next(&at)) {
    if (at > until) break;
    if (step()) ++n;
  }
  if (now_ < until && until != TimePoint::max()) now_ = until;
  return n;
}

}  // namespace h2sim::sim
