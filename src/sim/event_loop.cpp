#include "sim/event_loop.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace h2sim::sim {

std::string format_time(TimePoint t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fms", t.to_millis());
  return buf;
}

std::string format_duration(Duration d) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fms", d.to_millis());
  return buf;
}

namespace detail {

std::uint32_t EventSlab::acquire() {
  if (free_head == kNoFree) {
    // Exhausted: add one chunk and thread its slots onto the free list so
    // indices are handed out ascending within the chunk.
    const auto base = static_cast<std::uint32_t>(chunks.size()) << kChunkShift;
    chunks.push_back(std::make_unique<Slot[]>(kChunkSize));
    ++chunk_allocs;
    for (std::uint32_t i = kChunkSize; i-- > 0;) {
      Slot& s = chunks.back()[i];
      s.next_free = free_head;
      free_head = base + i;
    }
  }
  const std::uint32_t index = free_head;
  Slot& s = slot(index);
  free_head = s.next_free;
  s.next_free = kNoFree;
  s.cancelled = false;
  return index;
}

void EventSlab::release(std::uint32_t index) {
  Slot& s = slot(index);
  s.cb.reset();
  s.cancelled = false;
  ++s.generation;  // invalidate every outstanding handle to this occupancy
  s.next_free = free_head;
  free_head = index;
}

}  // namespace detail

TimerHandle EventLoop::schedule_at(TimePoint at, Callback cb) {
  if (at < now_) at = now_;
  if (cb.on_heap()) ++alloc_stats_.callback_heap;
  const std::uint64_t chunks_before = slab_->chunk_allocs;
  const std::uint32_t index = slab_->acquire();
  alloc_stats_.slab_chunks += slab_->chunk_allocs - chunks_before;
  detail::EventSlab::Slot& slot = slab_->slot(index);
  slot.cb = std::move(cb);
  if (heap_.size() == heap_.capacity()) ++alloc_stats_.heap_growth;
  heap_.push_back(HeapEntry{at, next_seq_++, index, slot.generation});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return TimerHandle{slab_, index, slot.generation};
}

bool EventLoop::step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    detail::EventSlab::Slot& slot = slab_->slot(top.index);
    // Each heap entry corresponds 1:1 to a slot occupancy (slots are only
    // released when their entry pops), so the generation always matches here;
    // the check guards the invariant cheaply.
    if (slot.generation != top.generation) continue;
    if (slot.cancelled) {
      slab_->release(top.index);  // skip cancelled events cheaply
      continue;
    }
    now_ = top.at;
    // Move the callback out and release the slot before invoking: a late
    // cancel() is then a no-op, and the callback may freely schedule new
    // events (possibly reusing this very slot).
    Callback cb = std::move(slot.cb);
    slab_->release(top.index);
    ++executed_;
    cb();
    return true;
  }
  return false;
}

std::size_t EventLoop::run(TimePoint until) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && !heap_.empty()) {
    if (heap_.front().at > until) break;
    if (step()) ++n;
  }
  if (now_ < until && until != TimePoint::max()) now_ = until;
  return n;
}

}  // namespace h2sim::sim
