#include "sim/event_loop.hpp"

#include <cstdio>
#include <utility>

namespace h2sim::sim {

std::string format_time(TimePoint t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fms", t.to_millis());
  return buf;
}

std::string format_duration(Duration d) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fms", d.to_millis());
  return buf;
}

TimerHandle EventLoop::schedule_at(TimePoint at, Callback cb) {
  if (at < now_) at = now_;
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{at, next_seq_++, std::move(cb), cancelled});
  return TimerHandle{std::move(cancelled)};
}

bool EventLoop::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;  // skip cancelled events cheaply
    now_ = ev.at;
    *ev.cancelled = true;  // mark fired so late cancel() is a no-op
    ++executed_;
    ev.cb();
    return true;
  }
  return false;
}

std::size_t EventLoop::run(TimePoint until) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && !queue_.empty()) {
    if (queue_.top().at > until) break;
    if (step()) ++n;
  }
  if (now_ < until && until != TimePoint::max()) now_ = until;
  return n;
}

}  // namespace h2sim::sim
