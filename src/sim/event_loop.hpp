#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace h2sim::sim {

/// Handle to a scheduled event; allows cancellation. Handles are cheap,
/// copyable tokens. Cancelling an already-fired or already-cancelled event
/// is a harmless no-op, which keeps timer management in protocol code simple.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// True if the event has neither fired nor been cancelled.
  bool pending() const { return state_ && !*state_; }

  void cancel() {
    if (state_) *state_ = true;
  }

 private:
  friend class EventLoop;
  explicit TimerHandle(std::shared_ptr<bool> cancelled)
      : state_(std::move(cancelled)) {}
  // Shared with the queued event: set to true when cancelled or fired.
  std::shared_ptr<bool> state_;
};

/// Deterministic discrete-event loop. Events scheduled for the same instant
/// fire in insertion order (stable FIFO tie-break), which makes every run a
/// pure function of the schedule and keeps protocol traces reproducible.
class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimePoint now() const { return now_; }

  /// Schedules `cb` at absolute time `at`. Scheduling in the past is clamped
  /// to "now" (fires before any later event).
  TimerHandle schedule_at(TimePoint at, Callback cb);

  /// Schedules `cb` after `delay` from the current simulated time.
  TimerHandle schedule_after(Duration delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Runs until the event queue is empty or `until` is reached, whichever is
  /// first. Returns the number of events executed.
  std::size_t run(TimePoint until = TimePoint::max());

  /// Executes exactly one event if any is pending. Returns false when idle.
  bool step();

  bool empty() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

  /// Hard stop from inside a callback: run() returns after the current event.
  void stop() { stopped_ = true; }

  /// Monotonic id allocator for objects living in this simulated world
  /// (packet ids, notably). Scoping the counter to the loop keeps ids unique
  /// within a trial, deterministic for a given schedule, and free of shared
  /// state between concurrently running trials.
  std::uint64_t allocate_id() { return ++next_id_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;  // insertion order; ties broken FIFO
    Callback cb;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_id_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace h2sim::sim
