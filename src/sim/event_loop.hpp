#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/buffer_pool.hpp"
#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace h2sim::sim {

namespace detail {

/// Shared scheduler core: the event-slot slab plus the hierarchical timing
/// wheel built over it. Shared between the loop and its TimerHandles so a
/// handle can cancel in O(1) by unlinking its slot from the wheel bucket.
///
/// Slots are recycled through a free list; each slot carries a generation
/// counter that is bumped on every release, so a handle created for one
/// occupancy can never act on a later occupant (ABA-safe cancel). The core
/// is owned by a shared_ptr: handles hold a weak_ptr, which makes a handle
/// that outlives its EventLoop a harmless no-op instead of a use-after-free.
///
/// Slot storage grows in fixed chunks whose addresses never move, so slots
/// stay valid across growth triggered from inside a running callback.
///
/// Wheel geometry: kLevels levels of 64 slots over a 1024 ns granule
/// (kScaleShift). Level k buckets span 64^k granules, so nine levels cover
/// the whole non-negative int64 nanosecond range — there is no overflow
/// list, and a timer at TimePoint::max() is just a level-8 insert. An event
/// lands at the level of the highest 6-bit digit in which its granule tick
/// differs from the wheel cursor, which keeps every occupied bucket strictly
/// ahead of the cursor (no wraparound case). When the cursor reaches a
/// higher-level bucket, the bucket cascades: its events redistribute to
/// lower levels, each moving strictly downward, so an event cascades at most
/// kLevels-1 times over its whole lifetime.
struct SchedulerCore {
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;  // slots/chunk
  static constexpr std::uint32_t kNoIndex = 0xffffffffu;

  static constexpr int kScaleShift = 10;  // 1024 ns wheel granule
  static constexpr int kLevelBits = 6;    // 64 slots per level
  static constexpr int kLevels = 9;       // 64^9 granules > any int64 time
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kLevelBits;
  static constexpr std::uint32_t kBucketCount = kLevels * kSlotsPerLevel;

  /// Sentinels for Slot::bucket: not linked in any wheel bucket.
  static constexpr std::uint16_t kBucketNear = 0xfffe;  // drained to near-heap
  static constexpr std::uint16_t kBucketFree = 0xffff;  // on the free list

  struct Slot {
    InlineCallback cb;
    std::int64_t at_ns = 0;
    std::uint64_t seq = 0;
    std::uint32_t generation = 0;
    std::uint32_t next = kNoIndex;  // bucket list / free list
    std::uint32_t prev = kNoIndex;  // bucket list only
    std::uint16_t bucket = kBucketFree;
    bool cancelled = false;
  };

  /// O(1)-cancel and cascade counters, published as sim.sched.* metrics.
  struct SchedStats {
    std::uint64_t slots_scanned = 0;  // occupancy-bitmap words examined
    std::uint64_t cascades = 0;       // events redistributed to a lower level
    std::uint64_t cancels = 0;        // cancels that found a live event
  };

  std::vector<std::unique_ptr<Slot[]>> chunks;
  std::uint32_t free_head = kNoIndex;
  std::uint64_t chunk_allocs = 0;  // growth events, for AllocStats

  std::array<std::uint32_t, kBucketCount> head;
  std::array<std::uint32_t, kBucketCount> tail;
  std::array<std::uint64_t, kLevels> occupied{};  // bit per bucket, per level
  std::uint64_t cur_tick = 0;   // first granule not yet drained
  std::uint64_t wheel_count = 0;
  /// True when a drain advance carried the cursor across a 64^k boundary —
  /// the only way a higher-level bucket at the cursor's own digit index can
  /// come to cover the cursor's window. refill_near() runs its own-index
  /// catch-up cascade exactly when this is set.
  bool carry_pending = true;
  std::uint64_t live = 0;  // scheduled, not yet fired or cancelled
  SchedStats sched;

  SchedulerCore() {
    head.fill(kNoIndex);
    tail.fill(kNoIndex);
  }

  Slot& slot(std::uint32_t index) {
    return chunks[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  /// Pops a free slot, growing the slab by one chunk when exhausted.
  std::uint32_t acquire();
  /// Bumps the generation and returns the slot to the free list.
  void release(std::uint32_t index);

  /// Links `index` (at_ns/seq already set) into the wheel bucket its granule
  /// tick selects, FIFO at the bucket tail. Requires tick >= cur_tick.
  void wheel_insert(std::uint32_t index);
  /// Unlinks `index` from its wheel bucket (no-op for near/free slots).
  void wheel_unlink(std::uint32_t index);

  /// Cancel entry point shared by TimerHandle and EventLoop. Wheel-resident
  /// events are unlinked and released immediately (O(1)); events already
  /// drained to the near-heap are tombstoned and reaped when they pop.
  void cancel(std::uint32_t index, std::uint32_t generation);
};

}  // namespace detail

/// Handle to a scheduled event; allows cancellation. Handles are cheap,
/// copyable tokens. Cancelling an already-fired or already-cancelled event is
/// a harmless no-op, as is any use of a handle whose EventLoop has been
/// destroyed — the handle observes the scheduler core through a weak_ptr and
/// the slot through its generation counter, so stale handles can never touch
/// recycled state.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// True if the event has neither fired nor been cancelled.
  bool pending() const {
    const auto core = core_.lock();
    if (!core) return false;
    const auto& s = core->slot(index_);
    return s.generation == generation_ && !s.cancelled;
  }

  /// O(1): wheel-resident events unlink from their bucket immediately;
  /// events already promoted to the imminent-granule heap are tombstoned.
  void cancel() {
    const auto core = core_.lock();
    if (!core) return;
    core->cancel(index_, generation_);
  }

 private:
  friend class EventLoop;
  TimerHandle(std::weak_ptr<detail::SchedulerCore> core, std::uint32_t index,
              std::uint32_t generation)
      : core_(std::move(core)), index_(index), generation_(generation) {}

  std::weak_ptr<detail::SchedulerCore> core_;
  std::uint32_t index_ = 0;
  std::uint32_t generation_ = 0;
};

/// Deterministic discrete-event loop. Events scheduled for the same instant
/// fire in insertion order (stable FIFO tie-break), which makes every run a
/// pure function of the schedule and keeps protocol traces reproducible.
///
/// Scheduling is a hierarchical timing wheel (see detail::SchedulerCore):
/// schedule and cancel are O(1), and dequeue amortizes to O(1) per event —
/// the wheel cursor jumps straight to the next occupied granule via per-level
/// occupancy bitmaps and drains the whole granule in one sweep into a tiny
/// "near" heap, which restores the exact (at, seq) order *within* the 1024 ns
/// granule. Events across granules are ordered by construction, so the
/// dequeue order is bit-identical to the old global binary heap.
///
/// The steady-state path is allocation-free: callbacks live inline in
/// slab-recycled slots, the wheel's bucket lists are intrusive slot indices,
/// the near-heap holds 24-byte entries in a vector that only ever grows, and
/// the loop carries a BufferPool from which packet payloads are recycled.
/// AllocStats counts the residual heap traffic so tests and benchmarks can
/// assert it reaches zero.
class EventLoop {
 public:
  using Callback = InlineCallback;

  /// Heap-allocation events attributable to the scheduling hot path. In
  /// steady state (slab and near-heap warmed up, callbacks inline) all three
  /// stay constant while executed_events() keeps climbing.
  struct AllocStats {
    std::uint64_t slab_chunks = 0;    // event slab growth (kChunkSize slots each)
    std::uint64_t callback_heap = 0;  // callbacks too large for inline storage
    std::uint64_t heap_growth = 0;    // near-heap vector reallocations
  };

  using SchedStats = detail::SchedulerCore::SchedStats;

  EventLoop() : core_(std::make_shared<detail::SchedulerCore>()) {}
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimePoint now() const { return now_; }

  /// Schedules `cb` at absolute time `at`. Scheduling in the past is clamped
  /// to "now" (fires before any later event).
  TimerHandle schedule_at(TimePoint at, Callback cb);

  /// Schedules `cb` after `delay` from the current simulated time.
  TimerHandle schedule_after(Duration delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Moves a pending event to fire at `at` instead, keeping its callback.
  /// Equivalent to cancel() + schedule_at(at, same-callback) — including the
  /// FIFO seq the event is reassigned — but skips the callback teardown and
  /// rebuild, which makes high-churn rearm patterns (TCP RTO) cheap. Returns
  /// false when the handle is spent (fired/cancelled/foreign loop), in which
  /// case the caller schedules afresh.
  bool reschedule_at(TimerHandle& h, TimePoint at);
  bool reschedule_after(TimerHandle& h, Duration delay) {
    return reschedule_at(h, now_ + delay);
  }

  /// Runs until the event queue is empty or `until` is reached, whichever is
  /// first. Returns the number of events executed.
  std::size_t run(TimePoint until = TimePoint::max());

  /// Executes exactly one event if any is pending. Returns false when idle.
  bool step();

  bool empty() const { return core_->live == 0; }
  /// Number of scheduled events that have neither fired nor been cancelled.
  std::size_t pending_events() const {
    return static_cast<std::size_t>(core_->live);
  }
  std::uint64_t executed_events() const { return executed_; }

  /// Hard stop from inside a callback: run() returns after the current event.
  void stop() { stopped_ = true; }

  /// Monotonic id allocator for objects living in this simulated world
  /// (packet ids, notably). Scoping the counter to the loop keeps ids unique
  /// within a trial, deterministic for a given schedule, and free of shared
  /// state between concurrently running trials.
  std::uint64_t allocate_id() { return ++next_id_; }

  /// Recycler for packet payload buffers. Producers (TcpConnection::emit)
  /// acquire, the terminal consumer of a packet (TcpStack::deliver, drop
  /// paths) releases; scoping the pool to the loop keeps recycling
  /// deterministic and trial-private.
  BufferPool& payload_pool() { return payload_pool_; }

  const AllocStats& alloc_stats() const { return alloc_stats_; }
  /// Wheel work counters (bitmap scans, cascades, O(1) cancels).
  const SchedStats& sched_stats() const { return core_->sched; }

 private:
  /// An event promoted out of the wheel: its granule has been reached and
  /// only the sub-granule (at, seq) order remains to be resolved.
  struct NearEntry {
    TimePoint at;
    std::uint64_t seq;  // insertion order; ties broken FIFO
    std::uint32_t index;
    std::uint32_t generation;
  };
  /// std:: heap ordering predicate: "a fires later than b" puts the earliest
  /// (lowest at, then lowest seq) entry at the front of the max-heap.
  struct Later {
    bool operator()(const NearEntry& a, const NearEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void near_push(TimePoint at, std::uint64_t seq, std::uint32_t index,
                 std::uint32_t generation);
  /// Advances the wheel cursor to the next occupied granule and drains that
  /// granule's bucket into the near-heap. False when the wheel is empty.
  bool refill_near();
  /// Ensures the earliest live event sits at near_.front(), reaping
  /// tombstoned entries. False when no live event remains.
  bool peek_next(TimePoint* at);

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_id_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::shared_ptr<detail::SchedulerCore> core_;
  std::vector<NearEntry> near_;
  BufferPool payload_pool_;
  AllocStats alloc_stats_;
};

}  // namespace h2sim::sim
