#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/buffer_pool.hpp"
#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace h2sim::sim {

namespace detail {

/// Slab of event slots, shared between the loop and its TimerHandles.
///
/// Slots are recycled through a free list; each slot carries a generation
/// counter that is bumped on every release, so a handle created for one
/// occupancy can never act on a later occupant (ABA-safe cancel). The slab
/// itself is owned by a shared_ptr: handles hold a weak_ptr, which makes a
/// handle that outlives its EventLoop a harmless no-op instead of a
/// use-after-free.
///
/// Storage grows in fixed chunks whose slot addresses never move, so slots
/// stay valid across growth triggered from inside a running callback.
struct EventSlab {
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;  // slots/chunk
  static constexpr std::uint32_t kNoFree = 0xffffffffu;

  struct Slot {
    InlineCallback cb;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoFree;
    bool cancelled = false;
  };

  std::vector<std::unique_ptr<Slot[]>> chunks;
  std::uint32_t free_head = kNoFree;
  std::uint64_t chunk_allocs = 0;  // growth events, for AllocStats

  Slot& slot(std::uint32_t index) {
    return chunks[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  /// Pops a free slot, growing the slab by one chunk when exhausted.
  std::uint32_t acquire();
  /// Bumps the generation and returns the slot to the free list.
  void release(std::uint32_t index);
};

}  // namespace detail

/// Handle to a scheduled event; allows cancellation. Handles are cheap,
/// copyable tokens. Cancelling an already-fired or already-cancelled event is
/// a harmless no-op, as is any use of a handle whose EventLoop has been
/// destroyed — the handle observes the slab through a weak_ptr and the slot
/// through its generation counter, so stale handles can never touch recycled
/// state.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// True if the event has neither fired nor been cancelled.
  bool pending() const {
    const auto slab = slab_.lock();
    if (!slab) return false;
    const auto& s = slab->slot(index_);
    return s.generation == generation_ && !s.cancelled;
  }

  void cancel() {
    const auto slab = slab_.lock();
    if (!slab) return;
    auto& s = slab->slot(index_);
    if (s.generation != generation_) return;  // slot recycled: not our event
    s.cancelled = true;
    s.cb.reset();  // free captured resources now; the heap entry pops later
  }

 private:
  friend class EventLoop;
  TimerHandle(std::weak_ptr<detail::EventSlab> slab, std::uint32_t index,
              std::uint32_t generation)
      : slab_(std::move(slab)), index_(index), generation_(generation) {}

  std::weak_ptr<detail::EventSlab> slab_;
  std::uint32_t index_ = 0;
  std::uint32_t generation_ = 0;
};

/// Deterministic discrete-event loop. Events scheduled for the same instant
/// fire in insertion order (stable FIFO tie-break), which makes every run a
/// pure function of the schedule and keeps protocol traces reproducible.
///
/// The steady-state path is allocation-free: callbacks live inline in
/// slab-recycled slots (see EventSlab), the time-ordered binary heap holds
/// 24-byte entries in a vector that only ever grows, and the loop carries a
/// BufferPool from which packet payloads are recycled. AllocStats counts the
/// residual heap traffic (slab growth, oversized callbacks, heap-array
/// growth) so tests and benchmarks can assert it reaches zero.
class EventLoop {
 public:
  using Callback = InlineCallback;

  /// Heap-allocation events attributable to the scheduling hot path. In
  /// steady state (slab and heap warmed up, callbacks inline) all three stay
  /// constant while executed_events() keeps climbing.
  struct AllocStats {
    std::uint64_t slab_chunks = 0;    // event slab growth (kChunkSize slots each)
    std::uint64_t callback_heap = 0;  // callbacks too large for inline storage
    std::uint64_t heap_growth = 0;    // binary-heap vector reallocations
  };

  EventLoop() : slab_(std::make_shared<detail::EventSlab>()) {}
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimePoint now() const { return now_; }

  /// Schedules `cb` at absolute time `at`. Scheduling in the past is clamped
  /// to "now" (fires before any later event).
  TimerHandle schedule_at(TimePoint at, Callback cb);

  /// Schedules `cb` after `delay` from the current simulated time.
  TimerHandle schedule_after(Duration delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Runs until the event queue is empty or `until` is reached, whichever is
  /// first. Returns the number of events executed.
  std::size_t run(TimePoint until = TimePoint::max());

  /// Executes exactly one event if any is pending. Returns false when idle.
  bool step();

  bool empty() const { return heap_.empty(); }
  std::size_t pending_events() const { return heap_.size(); }
  std::uint64_t executed_events() const { return executed_; }

  /// Hard stop from inside a callback: run() returns after the current event.
  void stop() { stopped_ = true; }

  /// Monotonic id allocator for objects living in this simulated world
  /// (packet ids, notably). Scoping the counter to the loop keeps ids unique
  /// within a trial, deterministic for a given schedule, and free of shared
  /// state between concurrently running trials.
  std::uint64_t allocate_id() { return ++next_id_; }

  /// Recycler for packet payload buffers. Producers (TcpConnection::emit)
  /// acquire, the terminal consumer of a packet (TcpStack::deliver, drop
  /// paths) releases; scoping the pool to the loop keeps recycling
  /// deterministic and trial-private.
  BufferPool& payload_pool() { return payload_pool_; }

  const AllocStats& alloc_stats() const { return alloc_stats_; }

 private:
  struct HeapEntry {
    TimePoint at;
    std::uint64_t seq;  // insertion order; ties broken FIFO
    std::uint32_t index;
    std::uint32_t generation;
  };
  /// std:: heap ordering predicate: "a fires later than b" puts the earliest
  /// (lowest at, then lowest seq) entry at the front of the max-heap.
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_id_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::shared_ptr<detail::EventSlab> slab_;
  std::vector<HeapEntry> heap_;
  BufferPool payload_pool_;
  AllocStats alloc_stats_;
};

}  // namespace h2sim::sim
