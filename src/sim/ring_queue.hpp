#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace h2sim::sim {

/// FIFO queue over a circular buffer. Unlike std::deque — whose block map
/// allocates and frees nodes as the head crosses block boundaries even at
/// constant size — a warmed-up RingQueue performs no allocation at all, which
/// the simulator's hot paths (link transmit queues) rely on.
///
/// T must be default-constructible and move-assignable; callers take
/// ownership of an element by moving out of front() before pop_front().
template <typename T>
class RingQueue {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }

  void push_back(T&& v) {
    if (count_ == slots_.size()) grow();
    slots_[wrap(head_ + count_)] = std::move(v);
    ++count_;
  }

  void pop_front() {
    slots_[head_] = T{};  // drop resources now, not at overwrite time
    head_ = wrap(head_ + 1);
    --count_;
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  std::size_t wrap(std::size_t i) const {
    return i >= slots_.size() ? i - slots_.size() : i;
  }

  void grow() {
    const std::size_t new_cap = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(slots_[wrap(head_ + i)]);
    }
    slots_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace h2sim::sim
