#pragma once

#include <cstdint>
#include <vector>

namespace h2sim::sim {

/// Recycler for byte buffers (packet payloads, reassembly scratch). Buffers
/// returned through release() keep their capacity and are handed back by
/// acquire(), so a steady-state simulation stops allocating payload storage
/// once the pool has warmed up to the working set.
///
/// The pool belongs to one EventLoop (one trial): it is single-threaded by
/// construction and its hit/miss history is a pure function of the schedule,
/// which keeps same-seed trials bit-identical.
class BufferPool {
 public:
  struct Stats {
    std::uint64_t hits = 0;      // acquire served from the free list
    std::uint64_t misses = 0;    // acquire with an empty free list (caller
                                 // allocates on first use of the buffer)
    std::uint64_t recycled = 0;  // buffers accepted back
    std::uint64_t discarded = 0;  // buffers dropped because the pool was full
  };

  /// Bound on pooled buffers; beyond it release() frees instead of caching,
  /// capping the pool's memory at roughly kMaxPooled * MSS bytes.
  static constexpr std::size_t kMaxPooled = 1024;

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// An empty buffer, with recycled capacity when available. A miss returns a
  /// default-constructed vector; the caller's first assign/resize allocates.
  std::vector<std::uint8_t> acquire() {
    if (free_.empty()) {
      ++stats_.misses;
      return {};
    }
    ++stats_.hits;
    std::vector<std::uint8_t> v = std::move(free_.back());
    free_.pop_back();
    v.clear();
    return v;
  }

  /// Returns a buffer's storage to the pool. Buffers that never allocated
  /// (empty payloads, pure-ACK packets) are ignored.
  void release(std::vector<std::uint8_t>&& v) {
    if (v.capacity() == 0) return;
    if (free_.size() >= kMaxPooled) {
      ++stats_.discarded;
      return;  // v frees on scope exit
    }
    ++stats_.recycled;
    free_.push_back(std::move(v));
  }

  std::size_t size() const { return free_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  std::vector<std::vector<std::uint8_t>> free_;
  Stats stats_;
};

}  // namespace h2sim::sim
