#include "defense/defenses.hpp"

#include <cmath>
#include <string>
#include <vector>

namespace h2sim::defense {

web::Website pad_site(const web::Website& site, std::size_t quantum) {
  web::Website padded;
  for (const auto& [path, obj] : site.objects()) {
    web::WebObject p = obj;
    if (quantum > 1) {
      p.size = (p.size + quantum - 1) / quantum * quantum;
    }
    padded.add_object(p);
  }
  padded.schedule = site.schedule;
  padded.html_path = site.html_path;
  padded.emblem_paths = site.emblem_paths;
  return padded;
}

double padding_overhead(const web::Website& original, const web::Website& padded) {
  std::size_t before = 0, after = 0;
  for (const auto& [path, obj] : original.objects()) before += obj.size;
  for (const auto& [path, obj] : padded.objects()) after += obj.size;
  if (before == 0) return 0.0;
  return static_cast<double>(after) / static_cast<double>(before) - 1.0;
}

int distinguishable_emblems(const web::Website& site, double tolerance) {
  int unique = 0;
  for (const std::string& epath : site.emblem_paths) {
    const web::WebObject* emblem = site.find(epath);
    if (!emblem) continue;
    bool collides = false;
    for (const auto& [path, obj] : site.objects()) {
      if (path == epath) continue;
      const double rel = std::abs(static_cast<double>(obj.size) -
                                  static_cast<double>(emblem->size)) /
                         static_cast<double>(emblem->size);
      if (rel <= tolerance) {
        collides = true;
        break;
      }
    }
    if (!collides) ++unique;
  }
  return unique;
}

void inject_dummies(web::Website& site, sim::Rng& rng, const DummyConfig& cfg) {
  // Dummy objects go live on the server...
  std::vector<std::string> paths;
  for (int i = 0; i < cfg.count; ++i) {
    web::WebObject o;
    o.path = "/pad/cover" + std::to_string(i) + ".bin";
    o.content_type = "application/octet-stream";
    o.size = cfg.min_size + rng.uniform(cfg.max_size - cfg.min_size + 1);
    o.label = "dummy" + std::to_string(i);
    site.add_object(o);
    paths.push_back(o.path);
  }
  // ...and their requests interleave with the post-HTML phase, where the
  // objects of interest live.
  std::vector<web::RequestStep> steps;
  std::size_t injected = 0;
  for (const web::RequestStep& s : site.schedule) {
    steps.push_back(s);
    if (s.gate == web::Gate::kHtmlComplete && injected < paths.size() &&
        rng.bernoulli(0.5)) {
      web::RequestStep dummy;
      dummy.path = paths[injected++];
      dummy.gap_from_prev = sim::Duration::millis_f(cfg.gap_ms);
      dummy.gate = web::Gate::kHtmlComplete;
      steps.push_back(dummy);
    }
  }
  // Any leftovers trail the load.
  for (; injected < paths.size(); ++injected) {
    web::RequestStep dummy;
    dummy.path = paths[injected];
    dummy.gap_from_prev = sim::Duration::millis_f(cfg.gap_ms);
    dummy.gate = web::Gate::kHtmlComplete;
    steps.push_back(dummy);
  }
  site.schedule = std::move(steps);
}

}  // namespace h2sim::defense
