#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/random.hpp"
#include "web/website.hpp"

namespace h2sim::defense {

/// Classic size-channel defenses from the literature the paper's
/// introduction surveys (traffic morphing / padding / cover traffic), plus
/// the paper's own §VII suggestion (client-side order randomization, which
/// lives in web::BrowserConfig::randomize_embedded_order). These let the
/// benches quantify the trade-off the paper calls "unreasonable CPU and
/// bandwidth overheads".

/// Pads every object's size up to a multiple of `quantum` bytes: objects
/// that shared no size class before may collide after, destroying the
/// attacker's size->identity mapping. Returns the padded copy.
web::Website pad_site(const web::Website& site, std::size_t quantum);

/// Bandwidth overhead of padding: (padded total / original total) - 1.
double padding_overhead(const web::Website& original, const web::Website& padded);

/// How many of the site's party emblems still have a unique size class
/// (within `tolerance`) after a defense transformed the site. 8 means the
/// attack's premise fully holds; 0 means identification is hopeless.
int distinguishable_emblems(const web::Website& site, double tolerance = 0.02);

/// Injects `count` dummy objects (cover traffic) with sizes drawn uniformly
/// from [min_size, max_size] and schedule steps interleaved into the
/// embedded-request phase. The extra transmissions feed the attacker's
/// detector junk that is indistinguishable from real objects.
struct DummyConfig {
  int count = 8;
  std::size_t min_size = 4000;
  std::size_t max_size = 18000;
  double gap_ms = 6.0;
};
void inject_dummies(web::Website& site, sim::Rng& rng, const DummyConfig& cfg = {});

}  // namespace h2sim::defense
