#include "tls/session.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "obs/profiler.hpp"

namespace h2sim::tls {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

void store64(std::uint8_t* p, std::uint64_t w) { std::memcpy(p, &w, sizeof(w)); }

/// Keyed checksum over the ciphertext, standing in for the AEAD tag. Two
/// chained mix64 lanes consume the body one 64-bit word at a time (the last
/// partial word zero-padded), then the length is folded in so padding cannot
/// collide with genuine zero bytes. Word-at-a-time keeps record protection
/// off the trial profile — it was 2 mix64 per *byte* when computed bytewise,
/// which dominated whole-trial runtime.
struct TagWords {
  std::uint64_t t1;
  std::uint64_t t2;
};

TagWords tag_words(std::uint64_t key, std::uint64_t counter,
                   const std::uint8_t* body, std::size_t n) {
  std::uint64_t t1 = key ^ counter;
  std::uint64_t t2 = ~key;
  std::size_t i = 0;
  std::uint64_t j = 0;
  for (; i + 8 <= n; i += 8, ++j) {
    t1 = mix64(t1 + load64(body + i));
    t2 = mix64(t2 ^ (t1 + j));
  }
  if (i < n) {
    std::uint64_t w = 0;
    std::memcpy(&w, body + i, n - i);
    t1 = mix64(t1 + w);
    t2 = mix64(t2 ^ (t1 + j));
  }
  t1 = mix64(t1 + n);
  t2 = mix64(t2 ^ t1);
  return {t1, t2};
}

constexpr std::size_t kClientHelloBytes = 512;
constexpr std::size_t kServerFlightBytes = 2500;  // hello + cert + finished
constexpr std::size_t kClientFinishedBytes = 64;

/// Sender-parked record cache: verification normally recomputes the keyed
/// checksum over the whole ciphertext and then runs a keystream pass to
/// decrypt — together the largest item on the trial profile. Both ends of a
/// simulated connection live on the same thread, so the sender parks each
/// protected record's ciphertext, plaintext and tag under (direction key,
/// stream counter); the receiver memcmps the received bytes against the
/// parked ciphertext and on an exact match reuses the parked tag and moves
/// the parked plaintext out, skipping both the checksum and the keystream
/// pass. Any mismatch — in-flight corruption, a stale entry from an earlier
/// connection on the same ports — falls back to full recomputation, so
/// accept/reject behavior (bad_record_mac semantics included) and the
/// delivered plaintext are byte-for-byte identical, just cheaper on the
/// by-far-common untampered path.
struct ParkedRecord {
  std::vector<std::uint8_t> body;
  std::vector<std::uint8_t> plain;
  TagWords tag{};
};
thread_local std::unordered_map<std::uint64_t, ParkedRecord> parked_records;

std::uint64_t park_key(std::uint64_t key, std::uint64_t counter) {
  // A collision only causes an overwrite and a later memcmp miss (fallback
  // to recomputation), never a wrong accept.
  return mix64(key ^ counter * 0x9e3779b97f4a7c15ULL);
}

void park_record(std::uint64_t key, std::uint64_t counter,
                 const std::uint8_t* body, const std::uint8_t* plain,
                 std::size_t n, TagWords tag) {
  // Records that die in flight leave entries behind; cap the cache so a long
  // sweep cannot accumulate them (dropping parked state is always safe).
  if (parked_records.size() > 4096) parked_records.clear();
  ParkedRecord& slot = parked_records[park_key(key, counter)];
  slot.body.assign(body, body + n);
  slot.plain.assign(plain, plain + n);
  slot.tag = tag;
}

}  // namespace

TlsSession::TlsSession(tcp::TcpConnection& conn, Role role)
    : conn_(conn), role_(role) {
  // Both endpoints derive the same session key from the 4-tuple; stands in
  // for the key agreement the real handshake would perform.
  const std::uint64_t lo = std::min(conn.local_port(), conn.remote_port());
  const std::uint64_t hi = std::max(conn.local_port(), conn.remote_port());
  session_key_ = mix64((lo << 32) | (hi << 16) | 0x7153u);

  tcp::TcpConnection::Callbacks cbs;
  cbs.on_connected = [this] { on_tcp_connected(); };
  cbs.on_data = [this](std::span<const std::uint8_t> b) { on_tcp_data(b); };
  cbs.on_remote_close = [this] {
    if (cbs_.on_peer_close) cbs_.on_peer_close();
  };
  cbs.on_aborted = [this](std::string_view reason) {
    if (cbs_.on_aborted) cbs_.on_aborted(reason);
  };
  cbs.on_writable = [this] {
    if (cbs_.on_writable) cbs_.on_writable();
  };
  conn_.set_callbacks(std::move(cbs));
}

void TlsSession::start() {
  if (role_ == Role::kClient && conn_.established()) {
    send_handshake_flight(kClientHelloBytes);
  }
}

void TlsSession::on_tcp_connected() {
  if (role_ == Role::kClient) send_handshake_flight(kClientHelloBytes);
}

void TlsSession::send_handshake_flight(std::size_t size) {
  std::vector<std::uint8_t> body(size);
  for (std::size_t i = 0; i < size; ++i) {
    body[i] = static_cast<std::uint8_t>(mix64(session_key_ + i) & 0xff);
  }
  send_record(ContentType::kHandshake, body);
}

void TlsSession::send_record(ContentType type, std::span<const std::uint8_t> body) {
  RecordHeader h;
  h.type = type;
  h.length = static_cast<std::uint16_t>(body.size());
  const std::vector<std::uint8_t> wire = serialize_record(h, body);
  ++records_sent_;
  conn_.send(wire);
}

std::uint64_t TlsSession::direction_key(bool encrypt) const {
  // Client-to-server traffic uses key A, server-to-client key B; "encrypt"
  // refers to this endpoint's sending direction.
  const bool c2s = (role_ == Role::kClient) == encrypt;
  return session_key_ ^ (c2s ? 0xa5a5a5a5a5a5a5a5ULL : 0x5a5a5a5a5a5a5a5aULL);
}

std::uint64_t TlsSession::keystream_word(std::uint64_t dir_key,
                                         std::uint64_t counter) const {
  return mix64(dir_key + 0x9e3779b97f4a7c15ULL * (counter + 1));
}

void TlsSession::apply_keystream(std::uint64_t key, std::uint64_t stream_off,
                                 const std::uint8_t* src, std::uint8_t* dst,
                                 std::size_t n) const {
  // The keystream byte at stream offset `o` is byte (o % 8) of
  // keystream_word(key, o / 8) — identical to the original bytewise
  // formulation, but each word is derived once per 8 bytes instead of once
  // per byte, and aligned runs XOR whole words.
  std::uint64_t off = stream_off;
  std::size_t i = 0;
  // Head: unaligned bytes up to the next keystream-word boundary.
  if (i < n && off % 8 != 0) {
    const std::uint64_t word = keystream_word(key, off / 8);
    while (i < n && off % 8 != 0) {
      dst[i] = src[i] ^ static_cast<std::uint8_t>(word >> ((off % 8) * 8));
      ++i;
      ++off;
    }
  }
  // Body: whole words. A little-endian word XOR equals eight byte XORs in
  // keystream order; big-endian targets take the bytewise tail loop instead.
  if constexpr (std::endian::native == std::endian::little) {
    for (; i + 8 <= n; i += 8, off += 8) {
      store64(dst + i, load64(src + i) ^ keystream_word(key, off / 8));
    }
  }
  // Tail: the final partial word (or everything after the head on
  // big-endian targets), one keystream word per 8 bytes.
  while (i < n) {
    const std::uint64_t word = keystream_word(key, off / 8);
    do {
      dst[i] = src[i] ^ static_cast<std::uint8_t>(word >> ((off % 8) * 8));
      ++i;
      ++off;
    } while (i < n && off % 8 != 0);
  }
}

void TlsSession::send_protected(std::span<const std::uint8_t> plaintext) {
  obs::ProfileScope prof(obs::Component::kTls);
  const std::uint64_t key = direction_key(/*encrypt=*/true);
  const std::size_t n = plaintext.size();
  const std::size_t body_len = n + kAeadTagBytes;
  wire_scratch_.resize(kRecordHeaderBytes + body_len);
  std::uint8_t* wire = wire_scratch_.data();
  wire[0] = static_cast<std::uint8_t>(ContentType::kApplicationData);
  wire[1] = static_cast<std::uint8_t>(kTlsVersion >> 8);
  wire[2] = static_cast<std::uint8_t>(kTlsVersion & 0xff);
  wire[3] = static_cast<std::uint8_t>(body_len >> 8);
  wire[4] = static_cast<std::uint8_t>(body_len & 0xff);
  std::uint8_t* body = wire + kRecordHeaderBytes;
  apply_keystream(key, encrypt_counter_, plaintext.data(), body, n);
  const TagWords tag = tag_words(key, encrypt_counter_, body, n);
  park_record(key, encrypt_counter_, body, plaintext.data(), n, tag);
  store64(body + n, tag.t1);
  store64(body + n + 8, tag.t2);
  encrypt_counter_ += n;
  ++records_sent_;
  conn_.send(wire_scratch_);
}

bool TlsSession::unprotect(std::span<const std::uint8_t> body,
                           std::vector<std::uint8_t>& plaintext_out) {
  if (body.size() < kAeadTagBytes) return false;
  const std::size_t n = body.size() - kAeadTagBytes;
  const std::uint64_t key = direction_key(/*encrypt=*/false);

  // Parked fast path: the sender's exact ciphertext means the parked tag and
  // plaintext are what recomputation would produce, so reuse both. A record
  // whose trailing tag bytes were tampered with still fails the tag memcmp
  // below, exactly as the recomputing path would.
  const auto it = parked_records.find(park_key(key, decrypt_counter_));
  if (it != parked_records.end() && it->second.body.size() == n &&
      std::memcmp(it->second.body.data(), body.data(), n) == 0) {
    std::uint8_t expected[kAeadTagBytes];
    store64(expected, it->second.tag.t1);
    store64(expected + 8, it->second.tag.t2);
    if (std::memcmp(expected, body.data() + n, kAeadTagBytes) != 0) {
      return false;
    }
    plaintext_out = std::move(it->second.plain);
    parked_records.erase(it);
    decrypt_counter_ += n;
    return true;
  }

  const TagWords tag = tag_words(key, decrypt_counter_, body.data(), n);
  std::uint8_t expected[kAeadTagBytes];
  store64(expected, tag.t1);
  store64(expected + 8, tag.t2);
  if (std::memcmp(expected, body.data() + n, kAeadTagBytes) != 0) return false;

  plaintext_out.resize(n);
  apply_keystream(key, decrypt_counter_, body.data(), plaintext_out.data(), n);
  decrypt_counter_ += n;
  return true;
}

void TlsSession::write(std::span<const std::uint8_t> plaintext) {
  if (failed_) return;
  std::size_t pos = 0;
  while (pos < plaintext.size()) {
    const std::size_t n = std::min(kMaxPlaintextPerRecord, plaintext.size() - pos);
    send_protected(plaintext.subspan(pos, n));
    pos += n;
  }
}

void TlsSession::close() {
  if (!failed_ && conn_.established()) {
    const std::uint8_t close_notify[2] = {1, 0};  // warning, close_notify
    send_record(ContentType::kAlert, close_notify);
  }
  conn_.close();
}

void TlsSession::fail(std::string_view reason) {
  if (failed_) return;
  failed_ = true;
  conn_.abort(reason);
}

void TlsSession::on_tcp_data(std::span<const std::uint8_t> bytes) {
  obs::ProfileScope prof(obs::Component::kTls);
  parser_.feed(bytes);
  RecordParser::Record rec;  // body capacity reused across iterations
  while (parser_.next(rec)) {
    ++records_received_;
    handle_record(rec);
    if (failed_) return;
  }
}

void TlsSession::handle_record(const RecordParser::Record& rec) {
  switch (rec.header.type) {
    case ContentType::kHandshake:
      handle_handshake_record(rec);
      return;
    case ContentType::kApplicationData: {
      if (!unprotect(rec.body, plain_scratch_)) {
        fail("tls-bad-record-mac");
        return;
      }
      if (cbs_.on_plaintext) cbs_.on_plaintext(std::span(plain_scratch_));
      return;
    }
    case ContentType::kAlert:
      // close_notify; the TCP FIN that follows drives teardown.
      return;
    case ContentType::kChangeCipherSpec:
      return;
  }
}

void TlsSession::handle_handshake_record(const RecordParser::Record&) {
  ++handshake_flights_seen_;
  if (role_ == Role::kServer) {
    if (handshake_flights_seen_ == 1) {
      // ClientHello received: answer with the full server flight.
      send_handshake_flight(kServerFlightBytes);
    } else if (handshake_flights_seen_ == 2 && !established_) {
      established_ = true;  // client Finished received
      if (cbs_.on_established) cbs_.on_established();
    }
  } else {
    if (handshake_flights_seen_ == 1 && !established_) {
      send_handshake_flight(kClientFinishedBytes);
      established_ = true;
      if (cbs_.on_established) cbs_.on_established();
    }
  }
}

}  // namespace h2sim::tls
