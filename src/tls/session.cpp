#include "tls/session.hpp"

#include <algorithm>

namespace h2sim::tls {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

constexpr std::size_t kClientHelloBytes = 512;
constexpr std::size_t kServerFlightBytes = 2500;  // hello + cert + finished
constexpr std::size_t kClientFinishedBytes = 64;

}  // namespace

TlsSession::TlsSession(tcp::TcpConnection& conn, Role role)
    : conn_(conn), role_(role) {
  // Both endpoints derive the same session key from the 4-tuple; stands in
  // for the key agreement the real handshake would perform.
  const std::uint64_t lo = std::min(conn.local_port(), conn.remote_port());
  const std::uint64_t hi = std::max(conn.local_port(), conn.remote_port());
  session_key_ = mix64((lo << 32) | (hi << 16) | 0x7153u);

  tcp::TcpConnection::Callbacks cbs;
  cbs.on_connected = [this] { on_tcp_connected(); };
  cbs.on_data = [this](std::span<const std::uint8_t> b) { on_tcp_data(b); };
  cbs.on_remote_close = [this] {
    if (cbs_.on_peer_close) cbs_.on_peer_close();
  };
  cbs.on_aborted = [this](std::string_view reason) {
    if (cbs_.on_aborted) cbs_.on_aborted(reason);
  };
  cbs.on_writable = [this] {
    if (cbs_.on_writable) cbs_.on_writable();
  };
  conn_.set_callbacks(std::move(cbs));
}

void TlsSession::start() {
  if (role_ == Role::kClient && conn_.established()) {
    send_handshake_flight(kClientHelloBytes);
  }
}

void TlsSession::on_tcp_connected() {
  if (role_ == Role::kClient) send_handshake_flight(kClientHelloBytes);
}

void TlsSession::send_handshake_flight(std::size_t size) {
  std::vector<std::uint8_t> body(size);
  for (std::size_t i = 0; i < size; ++i) {
    body[i] = static_cast<std::uint8_t>(mix64(session_key_ + i) & 0xff);
  }
  send_record(ContentType::kHandshake, body);
}

void TlsSession::send_record(ContentType type, std::span<const std::uint8_t> body) {
  RecordHeader h;
  h.type = type;
  h.length = static_cast<std::uint16_t>(body.size());
  const std::vector<std::uint8_t> wire = serialize_record(h, body);
  ++records_sent_;
  conn_.send(wire);
}

std::uint64_t TlsSession::direction_key(bool encrypt) const {
  // Client-to-server traffic uses key A, server-to-client key B; "encrypt"
  // refers to this endpoint's sending direction.
  const bool c2s = (role_ == Role::kClient) == encrypt;
  return session_key_ ^ (c2s ? 0xa5a5a5a5a5a5a5a5ULL : 0x5a5a5a5a5a5a5a5aULL);
}

std::uint64_t TlsSession::keystream_word(std::uint64_t dir_key,
                                         std::uint64_t counter) const {
  return mix64(dir_key + 0x9e3779b97f4a7c15ULL * (counter + 1));
}

std::vector<std::uint8_t> TlsSession::protect(std::span<const std::uint8_t> plaintext) {
  const std::uint64_t key = direction_key(/*encrypt=*/true);
  std::vector<std::uint8_t> out(plaintext.size() + kAeadTagBytes);
  std::uint64_t off = encrypt_counter_;
  for (std::size_t i = 0; i < plaintext.size(); ++i, ++off) {
    const std::uint64_t word = keystream_word(key, off / 8);
    out[i] = plaintext[i] ^ static_cast<std::uint8_t>(word >> ((off % 8) * 8));
  }
  // Keyed checksum over ciphertext in place of an AEAD tag.
  std::uint64_t t1 = key ^ encrypt_counter_;
  std::uint64_t t2 = ~key;
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    t1 = mix64(t1 + out[i]);
    t2 = mix64(t2 ^ (t1 + i));
  }
  for (int i = 0; i < 8; ++i) {
    out[plaintext.size() + i] = static_cast<std::uint8_t>(t1 >> (i * 8));
    out[plaintext.size() + 8 + i] = static_cast<std::uint8_t>(t2 >> (i * 8));
  }
  encrypt_counter_ += plaintext.size();
  return out;
}

bool TlsSession::unprotect(std::span<const std::uint8_t> body,
                           std::vector<std::uint8_t>& plaintext_out) {
  if (body.size() < kAeadTagBytes) return false;
  const std::size_t n = body.size() - kAeadTagBytes;
  const std::uint64_t key = direction_key(/*encrypt=*/false);

  std::uint64_t t1 = key ^ decrypt_counter_;
  std::uint64_t t2 = ~key;
  for (std::size_t i = 0; i < n; ++i) {
    t1 = mix64(t1 + body[i]);
    t2 = mix64(t2 ^ (t1 + i));
  }
  for (int i = 0; i < 8; ++i) {
    if (body[n + i] != static_cast<std::uint8_t>(t1 >> (i * 8))) return false;
    if (body[n + 8 + i] != static_cast<std::uint8_t>(t2 >> (i * 8))) return false;
  }

  plaintext_out.resize(n);
  std::uint64_t off = decrypt_counter_;
  for (std::size_t i = 0; i < n; ++i, ++off) {
    const std::uint64_t word = keystream_word(key, off / 8);
    plaintext_out[i] = body[i] ^ static_cast<std::uint8_t>(word >> ((off % 8) * 8));
  }
  decrypt_counter_ += n;
  return true;
}

void TlsSession::write(std::span<const std::uint8_t> plaintext) {
  if (failed_) return;
  std::size_t pos = 0;
  while (pos < plaintext.size()) {
    const std::size_t n = std::min(kMaxPlaintextPerRecord, plaintext.size() - pos);
    const std::vector<std::uint8_t> body = protect(plaintext.subspan(pos, n));
    send_record(ContentType::kApplicationData, body);
    pos += n;
  }
}

void TlsSession::close() {
  if (!failed_ && conn_.established()) {
    const std::uint8_t close_notify[2] = {1, 0};  // warning, close_notify
    send_record(ContentType::kAlert, close_notify);
  }
  conn_.close();
}

void TlsSession::fail(std::string_view reason) {
  if (failed_) return;
  failed_ = true;
  conn_.abort(reason);
}

void TlsSession::on_tcp_data(std::span<const std::uint8_t> bytes) {
  parser_.feed(bytes);
  while (auto rec = parser_.next()) {
    ++records_received_;
    handle_record(std::move(*rec));
    if (failed_) return;
  }
}

void TlsSession::handle_record(RecordParser::Record&& rec) {
  switch (rec.header.type) {
    case ContentType::kHandshake:
      handle_handshake_record(rec);
      return;
    case ContentType::kApplicationData: {
      std::vector<std::uint8_t> plaintext;
      if (!unprotect(rec.body, plaintext)) {
        fail("tls-bad-record-mac");
        return;
      }
      if (cbs_.on_plaintext) cbs_.on_plaintext(std::span(plaintext));
      return;
    }
    case ContentType::kAlert:
      // close_notify; the TCP FIN that follows drives teardown.
      return;
    case ContentType::kChangeCipherSpec:
      return;
  }
}

void TlsSession::handle_handshake_record(const RecordParser::Record&) {
  ++handshake_flights_seen_;
  if (role_ == Role::kServer) {
    if (handshake_flights_seen_ == 1) {
      // ClientHello received: answer with the full server flight.
      send_handshake_flight(kServerFlightBytes);
    } else if (handshake_flights_seen_ == 2 && !established_) {
      established_ = true;  // client Finished received
      if (cbs_.on_established) cbs_.on_established();
    }
  } else {
    if (handshake_flights_seen_ == 1 && !established_) {
      send_handshake_flight(kClientFinishedBytes);
      established_ = true;
      if (cbs_.on_established) cbs_.on_established();
    }
  }
}

}  // namespace h2sim::tls
