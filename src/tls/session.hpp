#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "tcp/tcp_connection.hpp"
#include "tls/record.hpp"

namespace h2sim::tls {

/// Simulated TLS session over a TcpConnection.
///
/// Fidelity notes (documented substitution, see DESIGN.md): the handshake is
/// a fixed-shape record exchange with realistic sizes, and record protection
/// is a keystream XOR plus a 16-byte keyed checksum standing in for an AEAD
/// tag. This is NOT cryptography — it exists so that (a) payload bytes on the
/// wire differ from plaintext, (b) records carry the authentic +21-byte
/// overhead the paper's size side-channel sees, and (c) the checksum detects
/// any byte-stream corruption, turning the TLS layer into a running
/// integrity check on the TCP implementation underneath.
class TlsSession {
 public:
  enum class Role { kClient, kServer };

  struct Callbacks {
    std::function<void()> on_established;
    std::function<void(std::span<const std::uint8_t>)> on_plaintext;
    std::function<void()> on_peer_close;
    std::function<void(std::string_view reason)> on_aborted;
    /// Forwarded TCP send-buffer-drained signal (socket backpressure).
    std::function<void()> on_writable;
  };

  /// Installs itself as the TCP connection's callback owner. The connection
  /// must outlive the session.
  TlsSession(tcp::TcpConnection& conn, Role role);

  TlsSession(const TlsSession&) = delete;
  TlsSession& operator=(const TlsSession&) = delete;

  void set_callbacks(Callbacks cbs) { cbs_ = std::move(cbs); }

  /// Client only: begins the handshake once TCP connects (automatic if TCP
  /// is already established).
  void start();

  bool established() const { return established_; }

  /// Protects and sends application plaintext. Each call produces one record
  /// per `kMaxPlaintextPerRecord` chunk; callers control record boundaries by
  /// the granularity of their writes (HTTP/2 writes one frame per call, so
  /// frame sizes are visible as record sizes — exactly the side channel the
  /// paper studies).
  void write(std::span<const std::uint8_t> plaintext);

  /// Graceful close (close_notify alert + TCP FIN).
  void close();

  tcp::TcpConnection& connection() { return conn_; }

  std::uint64_t records_sent() const { return records_sent_; }
  std::uint64_t records_received() const { return records_received_; }

 private:
  void on_tcp_connected();
  void on_tcp_data(std::span<const std::uint8_t> bytes);
  void handle_record(const RecordParser::Record& rec);
  void handle_handshake_record(const RecordParser::Record& rec);
  void send_record(ContentType type, std::span<const std::uint8_t> body);
  /// Protects one plaintext chunk and sends it as a single ApplicationData
  /// record, assembling header, ciphertext and tag in place in a reused
  /// scratch buffer (no intermediate body vector).
  void send_protected(std::span<const std::uint8_t> plaintext);
  void send_handshake_flight(std::size_t size);
  /// XORs the deterministic keystream over [src, src+n) into dst, starting
  /// at absolute keystream offset `stream_off`. Word-at-a-time on the aligned
  /// middle; bit-identical to the bytewise definition.
  void apply_keystream(std::uint64_t key, std::uint64_t stream_off,
                       const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) const;
  bool unprotect(std::span<const std::uint8_t> body,
                 std::vector<std::uint8_t>& plaintext_out);
  void fail(std::string_view reason);

  // Deterministic keystream both endpoints derive identically.
  std::uint64_t keystream_word(std::uint64_t direction_key, std::uint64_t counter) const;
  std::uint64_t direction_key(bool encrypt) const;

  tcp::TcpConnection& conn_;
  Role role_;
  Callbacks cbs_;
  RecordParser parser_;
  bool established_ = false;
  bool failed_ = false;
  int handshake_flights_seen_ = 0;
  std::uint64_t session_key_ = 0;
  std::uint64_t encrypt_counter_ = 0;
  std::uint64_t decrypt_counter_ = 0;
  std::uint64_t records_sent_ = 0;
  std::uint64_t records_received_ = 0;
  std::vector<std::uint8_t> wire_scratch_;   // reused by send_protected
  std::vector<std::uint8_t> plain_scratch_;  // reused by handle_record
};

}  // namespace h2sim::tls
