#include "tls/record.hpp"

namespace h2sim::tls {

std::vector<std::uint8_t> serialize_record(const RecordHeader& h,
                                           std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(kRecordHeaderBytes + body.size());
  out.push_back(static_cast<std::uint8_t>(h.type));
  out.push_back(static_cast<std::uint8_t>(h.version >> 8));
  out.push_back(static_cast<std::uint8_t>(h.version & 0xff));
  const auto len = static_cast<std::uint16_t>(body.size());
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len & 0xff));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

void RecordParser::feed(std::span<const std::uint8_t> bytes) {
  if (head_ == buf_.size()) {
    buf_.clear();
    head_ = 0;
  } else if (head_ >= 4096 && head_ >= buf_.size() - head_) {
    // Reclaim the consumed prefix once it dominates the buffer, so the
    // buffer never grows unbounded across a long connection.
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<RecordParser::Record> RecordParser::next() {
  Record r;
  if (!next(r)) return std::nullopt;
  return r;
}

bool RecordParser::next(Record& out) {
  const std::uint8_t* p = buf_.data() + head_;
  const std::size_t avail = buf_.size() - head_;
  if (avail < kRecordHeaderBytes) return false;
  const std::uint16_t len =
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[3]) << 8 | p[4]);
  if (avail < kRecordHeaderBytes + len) return false;

  out.header.type = static_cast<ContentType>(p[0]);
  out.header.version =
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[1]) << 8 | p[2]);
  out.header.length = len;
  out.body.assign(p + kRecordHeaderBytes, p + kRecordHeaderBytes + len);
  head_ += kRecordHeaderBytes + len;
  return true;
}

bool RecordParser::next_header(RecordHeader& out) {
  const std::uint8_t* p = buf_.data() + head_;
  const std::size_t avail = buf_.size() - head_;
  if (avail < kRecordHeaderBytes) return false;
  const std::uint16_t len =
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[3]) << 8 | p[4]);
  if (avail < kRecordHeaderBytes + len) return false;

  out.type = static_cast<ContentType>(p[0]);
  out.version =
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[1]) << 8 | p[2]);
  out.length = len;
  head_ += kRecordHeaderBytes + len;
  return true;
}

}  // namespace h2sim::tls
