#include "tls/record.hpp"

namespace h2sim::tls {

std::vector<std::uint8_t> serialize_record(const RecordHeader& h,
                                           std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(kRecordHeaderBytes + body.size());
  out.push_back(static_cast<std::uint8_t>(h.type));
  out.push_back(static_cast<std::uint8_t>(h.version >> 8));
  out.push_back(static_cast<std::uint8_t>(h.version & 0xff));
  const auto len = static_cast<std::uint16_t>(body.size());
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len & 0xff));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

void RecordParser::feed(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<RecordParser::Record> RecordParser::next() {
  if (buf_.size() < kRecordHeaderBytes) return std::nullopt;
  const std::uint16_t len =
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(buf_[3]) << 8 | buf_[4]);
  if (buf_.size() < kRecordHeaderBytes + len) return std::nullopt;

  Record r;
  r.header.type = static_cast<ContentType>(buf_[0]);
  r.header.version =
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(buf_[1]) << 8 | buf_[2]);
  r.header.length = len;
  buf_.erase(buf_.begin(), buf_.begin() + kRecordHeaderBytes);
  r.body.assign(buf_.begin(), buf_.begin() + len);
  buf_.erase(buf_.begin(), buf_.begin() + len);
  return r;
}

}  // namespace h2sim::tls
