#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

namespace h2sim::tls {

/// TLS record content types — cleartext on the wire. The paper's adversary
/// filters on `ssl.record.content_type == 23` to spot application data.
enum class ContentType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

inline constexpr std::uint16_t kTlsVersion = 0x0303;  // TLS 1.2 on the wire
inline constexpr std::size_t kRecordHeaderBytes = 5;
inline constexpr std::size_t kMaxPlaintextPerRecord = 16384;
/// AEAD tag appended to every protected record.
inline constexpr std::size_t kAeadTagBytes = 16;

struct RecordHeader {
  ContentType type = ContentType::kApplicationData;
  std::uint16_t version = kTlsVersion;
  std::uint16_t length = 0;  // bytes following the 5-byte header
};

/// Serializes header + body into wire bytes.
std::vector<std::uint8_t> serialize_record(const RecordHeader& h,
                                           std::span<const std::uint8_t> body);

/// Incremental record-stream parser. Feed raw TCP bytes in order; records pop
/// out complete. Used both by the legitimate endpoints and by the adversary's
/// traffic monitor (which can parse headers because they are never encrypted).
class RecordParser {
 public:
  struct Record {
    RecordHeader header;
    std::vector<std::uint8_t> body;
  };

  void feed(std::span<const std::uint8_t> bytes);

  /// Pops the next complete record, if any.
  std::optional<Record> next();

  /// Pops the next complete record into `out`, reusing its body capacity.
  /// The allocation-free variant for per-record hot loops.
  bool next(Record& out);

  /// Pops the next complete record's header, discarding the body without
  /// copying it. For observers that only need record framing.
  bool next_header(RecordHeader& out);

  /// Bytes buffered but not yet forming a complete record.
  std::size_t pending_bytes() const { return buf_.size() - head_; }

 private:
  // Flat buffer with a consumed-prefix offset: records are parsed from
  // contiguous storage (one memcpy per body) and the prefix is reclaimed
  // lazily, instead of paying deque segment walks on every record.
  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;
};

}  // namespace h2sim::tls
