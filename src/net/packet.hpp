#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace h2sim::net {

using NodeId = std::uint32_t;
using Port = std::uint16_t;

/// IPv4 (20 B) + TCP (20 B) header overhead carried by every packet on the
/// wire. TLS record headers live inside the payload.
inline constexpr std::size_t kIpTcpHeaderBytes = 40;

/// Standard Ethernet-derived MTU: what fits in one packet including IP+TCP
/// headers. The paper's adversary exploits sub-MTU "delimiter" packets.
inline constexpr std::size_t kMtuBytes = 1500;
inline constexpr std::size_t kMssBytes = kMtuBytes - kIpTcpHeaderBytes;  // 1460

namespace tcpflag {
inline constexpr std::uint8_t kSyn = 0x01;
inline constexpr std::uint8_t kAck = 0x02;
inline constexpr std::uint8_t kFin = 0x04;
inline constexpr std::uint8_t kRst = 0x08;
}  // namespace tcpflag

/// The unencrypted TCP header: exactly what the paper's on-path adversary can
/// read (capability (1) in Section III).
struct TcpHeader {
  Port src_port = 0;
  Port dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint32_t wnd = 65535;

  bool syn() const { return flags & tcpflag::kSyn; }
  bool ack_flag() const { return flags & tcpflag::kAck; }
  bool fin() const { return flags & tcpflag::kFin; }
  bool rst() const { return flags & tcpflag::kRst; }
};

/// A packet in flight. Payload bytes are opaque (TLS-protected) above the
/// TCP layer; only sizes and the TLS record headers inside are observable.
struct Packet {
  std::uint64_t id = 0;  // globally unique, for tracing
  NodeId src = 0;
  NodeId dst = 0;
  TcpHeader tcp;
  std::vector<std::uint8_t> payload;
  sim::TimePoint sent_at;        // stamped when handed to the first link
  bool is_retransmission = false;  // ground-truth annotation for evaluation

  std::size_t wire_size() const { return kIpTcpHeaderBytes + payload.size(); }

  std::string describe() const;
};

/// Direction of travel through the middlebox, from the adversary's viewpoint.
enum class Direction { kClientToServer, kServerToClient };

const char* to_string(Direction dir);

}  // namespace h2sim::net
