#include "net/topology.hpp"

namespace h2sim::net {

namespace {
net::Link::Config reseed(net::Link::Config cfg, std::uint64_t salt) {
  cfg.loss_seed ^= salt * 0x9e3779b97f4a7c15ULL;
  return cfg;
}
}  // namespace

Path::Path(sim::EventLoop& loop, const Config& cfg)
    : c2m_(loop, reseed(cfg.client_side, 1), "link.c2m"),
      m2s_(loop, reseed(cfg.server_side, 2), "link.m2s"),
      s2m_(loop, reseed(cfg.server_side, 3), "link.s2m"),
      m2c_(loop, reseed(cfg.client_side, 4), "link.m2c"),
      mb_(loop) {
  c2m_.set_sink([this](Packet&& p) { mb_.on_from_client(std::move(p)); });
  s2m_.set_sink([this](Packet&& p) { mb_.on_from_server(std::move(p)); });
  mb_.attach([this](Packet&& p) { m2s_.send(std::move(p)); },
             [this](Packet&& p) { m2c_.send(std::move(p)); });
}

}  // namespace h2sim::net
