#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>
// std::optional is used for RateLimiter::admit's drop signalling.

#include "net/packet.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"

namespace h2sim::net {

/// What the adversary (or any policy) may do with a transiting packet.
/// These are exactly the paper's Section-III capabilities (3)-(5): delay,
/// throttle (modelled separately via RateLimiter), and drop.
struct Decision {
  enum class Action { kForward, kDrop, kHold };
  Action action = Action::kForward;
  sim::Duration hold_for = sim::Duration::zero();  // used when action == kHold

  static Decision forward() { return {}; }
  static Decision drop() { return {Action::kDrop, sim::Duration::zero()}; }
  static Decision hold(sim::Duration d) { return {Action::kHold, d}; }
};

/// Per-packet policy consulted by the middlebox. Implementations must not
/// mutate the packet (the adversary is non-intrusive: it never rewrites
/// bytes, only times/drops them).
class PacketPolicy {
 public:
  virtual ~PacketPolicy() = default;
  virtual Decision on_packet(const Packet& p, Direction dir, sim::TimePoint now) = 0;
};

/// Token-bucket shaper used for the adversary's bandwidth throttling. A
/// packet may depart once the bucket holds its size in bits; otherwise its
/// departure is delayed to the time the tokens will have accumulated.
class RateLimiter {
 public:
  explicit RateLimiter(double rate_bps, double burst_bits = 12000.0)
      : rate_bps_(rate_bps), burst_bits_(burst_bits), tokens_(burst_bits) {}

  void set_rate(double rate_bps) { rate_bps_ = rate_bps; }
  double rate() const { return rate_bps_; }

  /// Returns the delay before the packet of `bits` may be released, updating
  /// internal token state as of `now`. Zero when the bucket has room;
  /// nullopt when the shaping queue is full (drop, like a real shaper).
  std::optional<sim::Duration> admit(double bits, sim::TimePoint now);

  /// Maximum queueing delay the shaper will buffer before dropping (real
  /// tbf-style shapers buffer generously; drops only under sustained
  /// overload).
  sim::Duration max_queue_delay = sim::Duration::millis(1500);

 private:
  double rate_bps_;
  double burst_bits_;
  double tokens_;
  sim::TimePoint last_ = sim::TimePoint::origin();
  sim::TimePoint next_free_ = sim::TimePoint::origin();
};

/// The compromised on-path device. Every packet in either direction passes
/// through: tap (pure observation, the traffic monitor) -> policy (delay /
/// drop) -> optional rate limiter -> forwarding. The tap always sees the
/// packet even if the policy later drops it, mirroring a tshark capture on
/// the gateway itself.
class Middlebox {
 public:
  struct Stats {
    std::uint64_t forwarded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t held = 0;
  };

  explicit Middlebox(sim::EventLoop& loop) : loop_(loop) {
    auto& reg = obs::metrics();
    metrics_.forwarded = reg.counter("net.mb_forwarded");
    metrics_.dropped = reg.counter("net.mb_dropped");
    metrics_.held = reg.counter("net.mb_held");
  }

  Middlebox(const Middlebox&) = delete;
  Middlebox& operator=(const Middlebox&) = delete;

  void attach(std::function<void(Packet&&)> to_server,
              std::function<void(Packet&&)> to_client) {
    to_server_ = std::move(to_server);
    to_client_ = std::move(to_client);
  }

  /// Ingress from the client-side link.
  void on_from_client(Packet&& p) { process(std::move(p), Direction::kClientToServer); }
  /// Ingress from the server-side link.
  void on_from_server(Packet&& p) { process(std::move(p), Direction::kServerToClient); }

  /// Non-owning; pass nullptr to remove. The policy must outlive the run.
  void set_policy(PacketPolicy* policy) { policy_ = policy; }

  using Tap = std::function<void(const Packet&, Direction, sim::TimePoint)>;

  /// Observation-only hook (the traffic monitor). Sees every packet on
  /// arrival, before any policy action. Replaces all previously installed
  /// taps (the historical single-tap semantics).
  void set_tap(Tap tap) {
    taps_.clear();
    taps_.push_back(std::move(tap));
  }

  /// Installs an additional tap alongside any existing ones; taps run in
  /// installation order. Wire capture attaches here so the adversary's
  /// monitor and a pcap writer can observe the same gateway concurrently.
  void add_tap(Tap tap) { taps_.push_back(std::move(tap)); }

  /// Enables/disables throttling. rate_bps <= 0 disables. Applied to both
  /// directions independently (the paper limits incoming and outgoing).
  void set_rate_limit(double rate_bps);

  const Stats& stats() const { return stats_; }

 private:
  void process(Packet&& p, Direction dir);
  void forward(Packet&& p, Direction dir);

  sim::EventLoop& loop_;
  std::function<void(Packet&&)> to_server_;
  std::function<void(Packet&&)> to_client_;
  PacketPolicy* policy_ = nullptr;
  std::vector<Tap> taps_;
  std::optional<RateLimiter> limiter_c2s_;
  std::optional<RateLimiter> limiter_s2c_;
  Stats stats_;

  struct Metrics {
    obs::Counter forwarded;
    obs::Counter dropped;
    obs::Counter held;
  };
  Metrics metrics_;
};

}  // namespace h2sim::net
