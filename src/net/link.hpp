#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"
#include "sim/ring_queue.hpp"

namespace h2sim::net {

/// Unidirectional point-to-point link: a drop-tail byte-bounded queue feeding
/// a serializer (transmission at `bandwidth_bps`) followed by fixed
/// propagation delay. Matches the classic store-and-forward model, so the
/// bandwidth-delay-product effects the paper relies on (Section IV-C) emerge
/// naturally.
///
/// The serializer is modelled as a busy-until horizon rather than a chain of
/// per-packet transmit-complete events: send() computes the packet's start of
/// transmission (max(now, busy_until)), advances the horizon by the
/// serialization time, and schedules a single delivery event at
/// tx_end + delay. An admitted packet therefore costs exactly one scheduler
/// event instead of two, and a burst of sends never re-enters the scheduler
/// to hand the serializer its next packet. Queue accounting uses a departure
/// ledger (a RingQueue of {tx_start, bytes}) aged at each send(), which
/// reproduces the drop-tail "waiting bytes" limit of the explicit queue.
class Link {
 public:
  struct Config {
    sim::Duration delay = sim::Duration::millis(5);
    double bandwidth_bps = 1e9;        // 1 Gbps default (the paper's lab link)
    std::size_t queue_limit_bytes = 256 * 1024;
    /// Random per-packet loss (Internet-path background loss); gives the
    /// baseline TCP retransmission rate that Table I measures increases
    /// against.
    double loss_rate = 0.0;
    std::uint64_t loss_seed = 0x10552aULL;
  };

  struct Stats {
    std::uint64_t delivered_packets = 0;
    std::uint64_t delivered_bytes = 0;
    std::uint64_t dropped_packets = 0;
    std::uint64_t random_losses = 0;
  };

  Link(sim::EventLoop& loop, Config cfg, std::string name);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Downstream receiver; must be set before the first send().
  void set_sink(std::function<void(Packet&&)> sink) { sink_ = std::move(sink); }

  /// Observation-only hooks for wire capture (src/capture). The send tap
  /// fires at the top of send() — every packet the upstream endpoint hands
  /// to the wire, before loss/queue admission, like tcpdump on the sending
  /// host's NIC. The deliver tap fires right before the sink — what the
  /// receiving host's NIC sees. Both default unset and cost one branch.
  void set_send_tap(std::function<void(const Packet&, sim::TimePoint)> tap) {
    send_tap_ = std::move(tap);
  }
  void set_deliver_tap(std::function<void(const Packet&, sim::TimePoint)> tap) {
    deliver_tap_ = std::move(tap);
  }

  /// Enqueues a packet for transmission; drops when the queue is full.
  void send(Packet&& p);

  /// Adjusts the serialization rate / propagation delay. Applies to packets
  /// sent from now on; packets already handed to the serializer keep the
  /// timing they were admitted with.
  void set_bandwidth(double bps) { cfg_.bandwidth_bps = bps; }
  void set_delay(sim::Duration d) { cfg_.delay = d; }

  const Config& config() const { return cfg_; }
  const Stats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

 private:
  /// A packet waiting for the serializer: it stops counting against the
  /// queue limit the moment its transmission starts.
  struct Departure {
    sim::TimePoint depart;  // start of transmission
    std::size_t bytes = 0;
  };

  void deliver(Packet&& p);

  sim::EventLoop& loop_;
  Config cfg_;
  std::string name_;
  std::function<void(Packet&&)> sink_;
  std::function<void(const Packet&, sim::TimePoint)> send_tap_;
  std::function<void(const Packet&, sim::TimePoint)> deliver_tap_;

  sim::RingQueue<Departure> ledger_;
  std::size_t queued_bytes_ = 0;
  sim::TimePoint busy_until_ = sim::TimePoint::origin();
  sim::Rng loss_rng_;
  Stats stats_;

  struct Metrics {
    obs::Counter delivered;       // net.link_delivered (all links)
    obs::Counter dropped;         // net.link_drops (all links)
    obs::Counter random_losses;   // net.link_random_losses (all links)
    obs::Histogram queue_depth;   // net.<name>.queue_depth_bytes (per link)
  };
  Metrics metrics_;
};

}  // namespace h2sim::net
