#include "net/link.hpp"

#include <cassert>
#include <utility>

#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "sim/log.hpp"

namespace h2sim::net {

Link::Link(sim::EventLoop& loop, Config cfg, std::string name)
    : loop_(loop), cfg_(cfg), name_(std::move(name)), loss_rng_(cfg.loss_seed) {
  auto& reg = obs::metrics();
  metrics_.delivered = reg.counter("net.link_delivered");
  metrics_.dropped = reg.counter("net.link_drops");
  metrics_.random_losses = reg.counter("net.link_random_losses");
  metrics_.queue_depth = reg.histogram("net." + name_ + ".queue_depth_bytes",
                                       obs::exponential_buckets(1024, 2.0, 10));
}

void Link::send(Packet&& p) {
  if (send_tap_) send_tap_(p, loop_.now());
  if (cfg_.loss_rate > 0 && loss_rng_.bernoulli(cfg_.loss_rate)) {
    ++stats_.random_losses;
    metrics_.random_losses.inc();
    sim::logf(sim::LogLevel::kDebug, loop_.now(), name_.c_str(),
              "random loss of %s", p.describe().c_str());
    auto& tr = obs::tracer();
    if (tr.enabled(obs::Component::kNet)) {
      tr.instant(obs::Component::kNet, "loss:" + name_, loop_.now(),
                 obs::track::kNetwork, p.tcp.src_port,
                 obs::TraceArgs().add("packet", p.describe()).take());
    }
    loop_.payload_pool().release(std::move(p.payload));
    return;
  }
  if (queued_bytes_ + p.wire_size() > cfg_.queue_limit_bytes) {
    ++stats_.dropped_packets;
    metrics_.dropped.inc();
    sim::logf(sim::LogLevel::kDebug, loop_.now(), name_.c_str(),
              "queue overflow, dropping %s", p.describe().c_str());
    auto& tr = obs::tracer();
    if (tr.enabled(obs::Component::kNet)) {
      tr.instant(obs::Component::kNet, "drop:" + name_, loop_.now(),
                 obs::track::kNetwork, p.tcp.src_port,
                 obs::TraceArgs()
                     .add("queued_bytes", queued_bytes_)
                     .add("packet", p.describe())
                     .take());
    }
    loop_.payload_pool().release(std::move(p.payload));
    return;
  }
  queued_bytes_ += p.wire_size();
  metrics_.queue_depth.observe(static_cast<double>(queued_bytes_));
  queue_.push_back(std::move(p));
  if (!transmitting_) try_transmit();
}

void Link::try_transmit() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  // Pop now so the serializer owns the packet during transmission; the queue
  // limit applies to waiting packets only, which is close enough to drop-tail.
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= p.wire_size();

  const double bits = static_cast<double>(p.wire_size()) * 8.0;
  const double tx_seconds =
      cfg_.bandwidth_bps > 0 ? bits / cfg_.bandwidth_bps : 0.0;
  const sim::Duration tx = sim::Duration::seconds_f(tx_seconds);

  // Transmission completes after `tx`; the packet then propagates for
  // `delay`. The serializer is busy only for `tx`.
  loop_.schedule_after(tx, [this, p = std::move(p)]() mutable {
    const sim::Duration prop = cfg_.delay;
    ++stats_.delivered_packets;
    stats_.delivered_bytes += p.wire_size();
    metrics_.delivered.inc();
    loop_.schedule_after(prop, [this, p = std::move(p)]() mutable {
      assert(sink_ && "link sink not attached");
      if (deliver_tap_) deliver_tap_(p, loop_.now());
      sink_(std::move(p));
    });
    try_transmit();
  });
}

}  // namespace h2sim::net
