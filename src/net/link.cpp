#include "net/link.hpp"

#include <cassert>
#include <utility>

#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "sim/log.hpp"

namespace h2sim::net {

Link::Link(sim::EventLoop& loop, Config cfg, std::string name)
    : loop_(loop), cfg_(cfg), name_(std::move(name)), loss_rng_(cfg.loss_seed) {
  auto& reg = obs::metrics();
  metrics_.delivered = reg.counter("net.link_delivered");
  metrics_.dropped = reg.counter("net.link_drops");
  metrics_.random_losses = reg.counter("net.link_random_losses");
  metrics_.queue_depth = reg.histogram("net." + name_ + ".queue_depth_bytes",
                                       obs::exponential_buckets(1024, 2.0, 10));
}

void Link::send(Packet&& p) {
  if (send_tap_) send_tap_(p, loop_.now());
  if (cfg_.loss_rate > 0 && loss_rng_.bernoulli(cfg_.loss_rate)) {
    ++stats_.random_losses;
    metrics_.random_losses.inc();
    sim::logf(sim::LogLevel::kDebug, loop_.now(), name_.c_str(),
              "random loss of %s", p.describe().c_str());
    auto& tr = obs::tracer();
    if (tr.enabled(obs::Component::kNet)) {
      tr.instant(obs::Component::kNet, "loss:" + name_, loop_.now(),
                 obs::track::kNetwork, p.tcp.src_port,
                 obs::TraceArgs().add("packet", p.describe()).take());
    }
    loop_.payload_pool().release(std::move(p.payload));
    return;
  }
  const sim::TimePoint now = loop_.now();
  // Age the departure ledger: packets whose transmission has started no
  // longer count against the drop-tail limit (the old explicit queue popped
  // a packet when the serializer took it).
  while (!ledger_.empty() && ledger_.front().depart <= now) {
    queued_bytes_ -= ledger_.front().bytes;
    ledger_.pop_front();
  }
  if (queued_bytes_ + p.wire_size() > cfg_.queue_limit_bytes) {
    ++stats_.dropped_packets;
    metrics_.dropped.inc();
    sim::logf(sim::LogLevel::kDebug, loop_.now(), name_.c_str(),
              "queue overflow, dropping %s", p.describe().c_str());
    auto& tr = obs::tracer();
    if (tr.enabled(obs::Component::kNet)) {
      tr.instant(obs::Component::kNet, "drop:" + name_, loop_.now(),
                 obs::track::kNetwork, p.tcp.src_port,
                 obs::TraceArgs()
                     .add("queued_bytes", queued_bytes_)
                     .add("packet", p.describe())
                     .take());
    }
    loop_.payload_pool().release(std::move(p.payload));
    return;
  }
  const std::size_t wire = p.wire_size();
  queued_bytes_ += wire;
  metrics_.queue_depth.observe(static_cast<double>(queued_bytes_));

  // Serialize behind everything already admitted, then propagate. One
  // delivery event per packet; the serializer never re-enters the scheduler
  // to fetch its next packet.
  const sim::TimePoint start = busy_until_ > now ? busy_until_ : now;
  const double bits = static_cast<double>(wire) * 8.0;
  const double tx_seconds =
      cfg_.bandwidth_bps > 0 ? bits / cfg_.bandwidth_bps : 0.0;
  busy_until_ = start + sim::Duration::seconds_f(tx_seconds);

  if (start > now) {
    ledger_.push_back({start, wire});
  } else {
    queued_bytes_ -= wire;  // straight into the serializer, never waits
  }

  loop_.schedule_at(busy_until_ + cfg_.delay,
                    [this, p = std::move(p)]() mutable { deliver(std::move(p)); });
}

void Link::deliver(Packet&& p) {
  obs::ProfileScope prof(obs::Component::kNet);
  ++stats_.delivered_packets;
  stats_.delivered_bytes += p.wire_size();
  metrics_.delivered.inc();
  assert(sink_ && "link sink not attached");
  if (deliver_tap_) deliver_tap_(p, loop_.now());
  sink_(std::move(p));
}

}  // namespace h2sim::net
