#include "net/packet.hpp"

#include <cstdio>

namespace h2sim::net {

std::string Packet::describe() const {
  char buf[160];
  std::string flags;
  if (tcp.syn()) flags += "SYN,";
  if (tcp.ack_flag()) flags += "ACK,";
  if (tcp.fin()) flags += "FIN,";
  if (tcp.rst()) flags += "RST,";
  if (!flags.empty()) flags.pop_back();
  std::snprintf(buf, sizeof(buf), "pkt#%llu %u:%u->%u:%u seq=%u ack=%u [%s] len=%zu",
                static_cast<unsigned long long>(id), src, tcp.src_port, dst,
                tcp.dst_port, tcp.seq, tcp.ack, flags.c_str(), payload.size());
  return buf;
}

const char* to_string(Direction dir) {
  return dir == Direction::kClientToServer ? "client->server" : "server->client";
}

}  // namespace h2sim::net
