#pragma once

#include <functional>
#include <memory>

#include "net/link.hpp"
#include "net/middlebox.hpp"

namespace h2sim::net {

/// The experiment topology from the paper (Figure 2): a client and a server
/// joined by a compromised gateway. Four unidirectional links model the two
/// duplex segments; the middlebox sits between them.
///
///   client --c2m--> [middlebox] --m2s--> server
///   client <--m2c-- [middlebox] <--s2m-- server
class Path {
 public:
  struct Config {
    Link::Config client_side;  // client <-> middlebox (both directions)
    Link::Config server_side;  // middlebox <-> server (both directions)
  };

  static constexpr NodeId kClientNode = 1;
  static constexpr NodeId kServerNode = 2;

  Path(sim::EventLoop& loop, const Config& cfg);

  Path(const Path&) = delete;
  Path& operator=(const Path&) = delete;

  /// Endpoint transmit entry points (wired into the TCP stacks).
  void send_from_client(Packet&& p) { c2m_.send(std::move(p)); }
  void send_from_server(Packet&& p) { s2m_.send(std::move(p)); }

  /// Endpoint delivery sinks (the TCP stacks' receive paths).
  void set_client_sink(std::function<void(Packet&&)> sink) {
    m2c_.set_sink(std::move(sink));
  }
  void set_server_sink(std::function<void(Packet&&)> sink) {
    m2s_.set_sink(std::move(sink));
  }

  Middlebox& middlebox() { return mb_; }
  Link& client_to_mb() { return c2m_; }
  Link& mb_to_server() { return m2s_; }
  Link& server_to_mb() { return s2m_; }
  Link& mb_to_client() { return m2c_; }

  /// Sum of drops across all four links (congestion losses, not adversary).
  std::uint64_t link_drops() const {
    return c2m_.stats().dropped_packets + m2s_.stats().dropped_packets +
           s2m_.stats().dropped_packets + m2c_.stats().dropped_packets;
  }

 private:
  Link c2m_;
  Link m2s_;
  Link s2m_;
  Link m2c_;
  Middlebox mb_;
};

}  // namespace h2sim::net
