#include "net/middlebox.hpp"

#include <cassert>

#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "sim/log.hpp"

namespace h2sim::net {

std::optional<sim::Duration> RateLimiter::admit(double bits, sim::TimePoint now) {
  // Refill tokens since the last admit.
  const double elapsed = (now - last_).count_nanos() / 1e9;
  if (elapsed > 0) {
    tokens_ = std::min(burst_bits_, tokens_ + elapsed * rate_bps_);
    last_ = now;
  }
  if (tokens_ >= bits && now >= next_free_) {
    tokens_ -= bits;
    return sim::Duration::zero();
  }
  // Not enough tokens: schedule after the deficit refills. Serialize behind
  // any previously delayed packet so ordering is preserved; drop when the
  // shaping queue exceeds its delay budget (tail drop, like tbf).
  const double deficit = bits > tokens_ ? bits - tokens_ : 0.0;
  sim::TimePoint release = now + sim::Duration::seconds_f(deficit / rate_bps_);
  if (release < next_free_) release = next_free_;
  if (release - now > max_queue_delay) return std::nullopt;
  tokens_ = 0;
  last_ = now;
  next_free_ = release + sim::Duration::seconds_f(bits / rate_bps_);
  return release - now;
}

void Middlebox::set_rate_limit(double rate_bps) {
  if (rate_bps <= 0) {
    limiter_c2s_.reset();
    limiter_s2c_.reset();
    return;
  }
  limiter_c2s_.emplace(rate_bps);
  limiter_s2c_.emplace(rate_bps);
}

void Middlebox::process(Packet&& p, Direction dir) {
  const sim::TimePoint now = loop_.now();
  for (const Tap& tap : taps_) tap(p, dir, now);

  Decision d = policy_ ? policy_->on_packet(p, dir, now) : Decision::forward();
  auto& tr = obs::tracer();
  switch (d.action) {
    case Decision::Action::kDrop:
      ++stats_.dropped;
      metrics_.dropped.inc();
      sim::logf(sim::LogLevel::kDebug, now, "middlebox", "drop %s (%s)",
                p.describe().c_str(), to_string(dir));
      if (tr.enabled(obs::Component::kNet)) {
        tr.instant(obs::Component::kNet, "mb-drop", now, obs::track::kNetwork,
                   p.tcp.src_port,
                   obs::TraceArgs()
                       .add("dir", to_string(dir))
                       .add("packet", p.describe())
                       .take());
      }
      loop_.payload_pool().release(std::move(p.payload));
      return;
    case Decision::Action::kHold: {
      ++stats_.held;
      metrics_.held.inc();
      sim::logf(sim::LogLevel::kDebug, now, "middlebox", "hold %.3fms %s",
                d.hold_for.to_millis(), p.describe().c_str());
      if (tr.enabled(obs::Component::kNet)) {
        tr.complete(obs::Component::kNet, "mb-hold", now, now + d.hold_for,
                    obs::track::kNetwork, p.tcp.src_port,
                    obs::TraceArgs()
                        .add("dir", to_string(dir))
                        .add("packet", p.describe())
                        .take());
      }
      loop_.schedule_after(d.hold_for, [this, p = std::move(p), dir]() mutable {
        forward(std::move(p), dir);
      });
      return;
    }
    case Decision::Action::kForward:
      forward(std::move(p), dir);
      return;
  }
}

void Middlebox::forward(Packet&& p, Direction dir) {
  auto& limiter = dir == Direction::kClientToServer ? limiter_c2s_ : limiter_s2c_;
  if (limiter) {
    const double bits = static_cast<double>(p.wire_size()) * 8.0;
    const auto wait = limiter->admit(bits, loop_.now());
    if (!wait) {
      ++stats_.dropped;  // shaping queue overflow
      metrics_.dropped.inc();
      loop_.payload_pool().release(std::move(p.payload));
      return;
    }
    if (*wait > sim::Duration::zero()) {
      loop_.schedule_after(*wait, [this, p = std::move(p), dir]() mutable {
        ++stats_.forwarded;
        metrics_.forwarded.inc();
        auto& out = dir == Direction::kClientToServer ? to_server_ : to_client_;
        assert(out);
        out(std::move(p));
      });
      return;
    }
  }
  ++stats_.forwarded;
  metrics_.forwarded.inc();
  auto& out = dir == Direction::kClientToServer ? to_server_ : to_client_;
  assert(out);
  out(std::move(p));
}

}  // namespace h2sim::net
