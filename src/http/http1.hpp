#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "http/message.hpp"
#include "tls/session.hpp"

namespace h2sim::http {

/// Minimal HTTP/1.1 server over TLS: requests are answered strictly in
/// arrival order on one connection (no multiplexing, head-of-line blocking
/// intact). This is the baseline the fingerprinting literature attacks and
/// the contrast case for the paper's HTTP/2 study.
class Http1ServerConnection {
 public:
  /// Handler returns the response + full body for a request.
  using Handler =
      std::function<std::pair<Response, std::vector<std::uint8_t>>(const Request&)>;

  Http1ServerConnection(tls::TlsSession& tls, Handler handler);

  std::uint64_t requests_served() const { return requests_served_; }

 private:
  void on_plaintext(std::span<const std::uint8_t> bytes);

  tls::TlsSession& tls_;
  Handler handler_;
  std::string in_buf_;
  std::uint64_t requests_served_ = 0;
};

/// Minimal HTTP/1.1 client over TLS with pipelining support: responses are
/// matched to requests FIFO.
class Http1ClientConnection {
 public:
  using ResponseCallback =
      std::function<void(const Response&, std::vector<std::uint8_t> body)>;

  explicit Http1ClientConnection(tls::TlsSession& tls);

  void send_request(const Request& req, ResponseCallback cb);
  bool idle() const { return pending_.empty(); }

 private:
  void on_plaintext(std::span<const std::uint8_t> bytes);
  void try_parse();

  tls::TlsSession& tls_;
  std::string in_buf_;
  std::deque<ResponseCallback> pending_;
  // Parse state for the in-progress response.
  std::optional<Response> current_;
  std::vector<std::uint8_t> body_;
  std::deque<std::pair<Request, ResponseCallback>> queued_until_established_;
  bool established_ = false;
};

}  // namespace h2sim::http
