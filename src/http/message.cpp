#include "http/message.hpp"

#include <sstream>

namespace h2sim::http {

hpack::HeaderList Request::to_h2_headers() const {
  hpack::HeaderList h;
  h.push_back({":method", method});
  h.push_back({":scheme", scheme});
  h.push_back({":authority", authority});
  h.push_back({":path", path});
  h.insert(h.end(), extra.begin(), extra.end());
  return h;
}

std::optional<Request> Request::from_h2_headers(const hpack::HeaderList& headers) {
  Request r;
  bool saw_method = false, saw_path = false;
  for (const auto& f : headers) {
    if (f.name == ":method") {
      r.method = f.value;
      saw_method = true;
    } else if (f.name == ":scheme") {
      r.scheme = f.value;
    } else if (f.name == ":authority") {
      r.authority = f.value;
    } else if (f.name == ":path") {
      r.path = f.value;
      saw_path = true;
    } else if (!f.name.empty() && f.name[0] != ':') {
      r.extra.push_back(f);
    }
  }
  if (!saw_method || !saw_path) return std::nullopt;
  return r;
}

std::string Request::to_http1() const {
  std::ostringstream os;
  os << method << ' ' << path << " HTTP/1.1\r\n";
  os << "host: " << authority << "\r\n";
  for (const auto& f : extra) os << f.name << ": " << f.value << "\r\n";
  os << "\r\n";
  return os.str();
}

std::optional<Request> Request::from_http1(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  Request r;
  std::istringstream rl(line);
  std::string version;
  if (!(rl >> r.method >> r.path >> version)) return std::nullopt;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    std::string value = line.substr(colon + 1);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    if (name == "host") {
      r.authority = value;
    } else {
      r.extra.push_back({std::move(name), std::move(value)});
    }
  }
  return r;
}

hpack::HeaderList Response::to_h2_headers() const {
  hpack::HeaderList h;
  h.push_back({":status", std::to_string(status)});
  h.push_back({"content-length", std::to_string(content_length)});
  h.push_back({"content-type", content_type});
  h.insert(h.end(), extra.begin(), extra.end());
  return h;
}

std::optional<Response> Response::from_h2_headers(const hpack::HeaderList& headers) {
  Response r;
  bool saw_status = false;
  for (const auto& f : headers) {
    if (f.name == ":status") {
      r.status = std::stoi(f.value);
      saw_status = true;
    } else if (f.name == "content-length") {
      r.content_length = std::stoull(f.value);
    } else if (f.name == "content-type") {
      r.content_type = f.value;
    } else if (!f.name.empty() && f.name[0] != ':') {
      r.extra.push_back(f);
    }
  }
  if (!saw_status) return std::nullopt;
  return r;
}

std::string Response::http1_head() const {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << (status == 200 ? " OK" : " ") << "\r\n";
  os << "content-length: " << content_length << "\r\n";
  os << "content-type: " << content_type << "\r\n";
  for (const auto& f : extra) os << f.name << ": " << f.value << "\r\n";
  os << "\r\n";
  return os.str();
}

}  // namespace h2sim::http
