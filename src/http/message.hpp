#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "hpack/header.hpp"

namespace h2sim::http {

/// Protocol-independent request description; converts to/from HTTP/2
/// pseudo-header form and HTTP/1.1 text form.
struct Request {
  std::string method = "GET";
  std::string scheme = "https";
  std::string authority;
  std::string path = "/";
  hpack::HeaderList extra;

  hpack::HeaderList to_h2_headers() const;
  static std::optional<Request> from_h2_headers(const hpack::HeaderList& headers);

  std::string to_http1() const;
  static std::optional<Request> from_http1(const std::string& text);
};

struct Response {
  int status = 200;
  std::uint64_t content_length = 0;
  std::string content_type = "application/octet-stream";
  hpack::HeaderList extra;

  hpack::HeaderList to_h2_headers() const;
  static std::optional<Response> from_h2_headers(const hpack::HeaderList& headers);

  std::string http1_head() const;  // status line + headers + CRLFCRLF
};

}  // namespace h2sim::http
