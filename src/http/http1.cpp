#include "http/http1.hpp"

namespace h2sim::http {
namespace {

std::optional<std::pair<std::string, std::size_t>> take_head(std::string& buf) {
  const auto end = buf.find("\r\n\r\n");
  if (end == std::string::npos) return std::nullopt;
  std::string head = buf.substr(0, end + 4);
  buf.erase(0, end + 4);
  return std::make_pair(std::move(head), end + 4);
}

}  // namespace

Http1ServerConnection::Http1ServerConnection(tls::TlsSession& tls, Handler handler)
    : tls_(tls), handler_(std::move(handler)) {
  tls::TlsSession::Callbacks cbs;
  cbs.on_plaintext = [this](std::span<const std::uint8_t> b) { on_plaintext(b); };
  tls_.set_callbacks(std::move(cbs));
}

void Http1ServerConnection::on_plaintext(std::span<const std::uint8_t> bytes) {
  in_buf_.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  // Requests are processed in order as their heads complete (GETs: no body).
  while (auto head = take_head(in_buf_)) {
    auto req = Request::from_http1(head->first);
    if (!req) continue;
    auto [resp, body] = handler_(*req);
    resp.content_length = body.size();
    const std::string head_text = resp.http1_head();
    tls_.write(std::span(reinterpret_cast<const std::uint8_t*>(head_text.data()),
                         head_text.size()));
    if (!body.empty()) tls_.write(std::span(body.data(), body.size()));
    ++requests_served_;
  }
}

Http1ClientConnection::Http1ClientConnection(tls::TlsSession& tls) : tls_(tls) {
  tls::TlsSession::Callbacks cbs;
  cbs.on_established = [this] {
    established_ = true;
    while (!queued_until_established_.empty()) {
      auto [req, cb] = std::move(queued_until_established_.front());
      queued_until_established_.pop_front();
      send_request(req, std::move(cb));
    }
  };
  cbs.on_plaintext = [this](std::span<const std::uint8_t> b) { on_plaintext(b); };
  tls_.set_callbacks(std::move(cbs));
}

void Http1ClientConnection::send_request(const Request& req, ResponseCallback cb) {
  if (!established_) {
    queued_until_established_.emplace_back(req, std::move(cb));
    return;
  }
  const std::string text = req.to_http1();
  pending_.push_back(std::move(cb));
  tls_.write(std::span(reinterpret_cast<const std::uint8_t*>(text.data()),
                       text.size()));
}

void Http1ClientConnection::on_plaintext(std::span<const std::uint8_t> bytes) {
  in_buf_.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  try_parse();
}

void Http1ClientConnection::try_parse() {
  for (;;) {
    if (!current_) {
      const auto end = in_buf_.find("\r\n\r\n");
      if (end == std::string::npos) return;
      const std::string head = in_buf_.substr(0, end + 4);
      in_buf_.erase(0, end + 4);

      Response r;
      std::size_t pos = head.find("\r\n");
      const std::string status_line = head.substr(0, pos);
      if (status_line.size() >= 12) r.status = std::stoi(status_line.substr(9, 3));
      const auto cl = head.find("content-length:");
      if (cl != std::string::npos) {
        r.content_length = std::stoull(head.substr(cl + 15));
      }
      const auto ct = head.find("content-type:");
      if (ct != std::string::npos) {
        auto ct_end = head.find("\r\n", ct);
        std::string v = head.substr(ct + 13, ct_end - ct - 13);
        if (!v.empty() && v.front() == ' ') v.erase(0, 1);
        r.content_type = std::move(v);
      }
      current_ = r;
      body_.clear();
    }
    const std::size_t want = current_->content_length - body_.size();
    const std::size_t take = std::min(want, in_buf_.size());
    body_.insert(body_.end(), in_buf_.begin(),
                 in_buf_.begin() + static_cast<std::ptrdiff_t>(take));
    in_buf_.erase(0, take);
    if (body_.size() < current_->content_length) return;

    if (!pending_.empty()) {
      auto cb = std::move(pending_.front());
      pending_.pop_front();
      cb(*current_, std::move(body_));
    }
    current_.reset();
    body_.clear();
  }
}

}  // namespace h2sim::http
