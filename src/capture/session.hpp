#pragma once

#include <memory>
#include <string>

#include "capture/pcapng.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"

namespace h2sim::capture {

/// Which points on the paper's client--gateway--server path a capture
/// records. Each enabled vantage becomes one pcapng interface:
///   - "client":  packets leaving the client (c2m send) and arriving at it
///                (m2c delivery) — tcpdump on the victim's machine.
///   - "gateway": every packet the middlebox sees on arrival, both
///                directions, before any adversarial policy — tshark on the
///                compromised gateway, the paper's adversary view.
///   - "server":  packets leaving the server (s2m send) and arriving at it
///                (m2s delivery).
struct CaptureConfig {
  std::string path;
  bool client_vantage = false;
  bool gateway_vantage = true;
  bool server_vantage = false;
};

/// Taps a net::Path and streams every observed packet into a PCAPNG file
/// with synthetic Ethernet/IPv4/TCP framing and nanosecond simulated
/// timestamps. Construction installs the taps; close() (or destruction)
/// writes the file. Purely observational: attaching a session changes no
/// packet timing, ordering, or content, so a captured trial's TrialResult is
/// identical to an uncaptured one except for the capture counters.
class CaptureSession {
 public:
  CaptureSession(sim::EventLoop& loop, net::Path& path, CaptureConfig cfg);

  CaptureSession(const CaptureSession&) = delete;
  CaptureSession& operator=(const CaptureSession&) = delete;

  /// Flushes the pcapng file. False on IO failure. Idempotent.
  bool close();

  std::uint64_t packets() const { return writer_.packets_written(); }
  std::uint64_t bytes_buffered() const { return writer_.bytes_buffered(); }
  const CaptureConfig& config() const { return cfg_; }

 private:
  void record(std::uint32_t iface, const net::Packet& p, sim::TimePoint t);

  CaptureConfig cfg_;
  PcapngWriter writer_;
  std::vector<std::uint8_t> frame_buf_;  // reused per packet
  std::uint64_t counted_bytes_ = 0;      // pcapng bytes already metered

  struct Metrics {
    obs::Counter packets;        // capture.packets
    obs::Counter bytes_written;  // capture.bytes_written
  };
  Metrics metrics_;
};

}  // namespace h2sim::capture
