#include "capture/reader.hpp"

#include "capture/frame.hpp"
#include "obs/context.hpp"

namespace h2sim::capture {

bool PcapReader::open(const std::string& path, std::string* error) {
  packets_.clear();
  skipped_frames_ = 0;
  if (!reader_.open(path, error)) return false;
  for (const PcapngPacket& raw : reader_.packets()) {
    if (reader_.interfaces()[raw.iface].linktype != kLinktypeEthernet) {
      ++skipped_frames_;
      continue;
    }
    CapturedPacket cp;
    cp.iface = raw.iface;
    cp.time = sim::TimePoint::from_nanos(raw.ts_nanos);
    if (!decode_frame(raw.frame, &cp.packet, nullptr)) {
      ++skipped_frames_;
      continue;
    }
    packets_.push_back(std::move(cp));
  }
  obs::metrics().counter("capture.packets_read").add(packets_.size());
  return true;
}

std::optional<std::uint32_t> PcapReader::find_interface(
    std::string_view name) const {
  const auto& ifs = reader_.interfaces();
  for (std::size_t i = 0; i < ifs.size(); ++i) {
    if (ifs[i].name == name) return static_cast<std::uint32_t>(i);
  }
  return std::nullopt;
}

std::uint32_t PcapReader::default_interface() const {
  return find_interface("gateway").value_or(0);
}

std::vector<const CapturedPacket*> PcapReader::packets_on(
    std::uint32_t iface) const {
  std::vector<const CapturedPacket*> out;
  for (const CapturedPacket& cp : packets_) {
    if (cp.iface == iface) out.push_back(&cp);
  }
  return out;
}

TlsRecordReassembler::TlsRecordReassembler(ReassemblerConfig cfg)
    : cfg_(cfg), monitor_(cfg.monitor) {}

void TlsRecordReassembler::feed(const CapturedPacket& cp) {
  // The monitor reads the packet id only to flag the most recent
  // request/retransmission for a live controller; offline, a fresh
  // sequential id keeps those flags well-defined.
  net::Packet p = cp.packet;
  p.id = next_id_++;
  monitor_.observe(p, direction_of(p), cp.time);
}

void TlsRecordReassembler::feed_all(std::span<const CapturedPacket> packets) {
  for (const CapturedPacket& cp : packets) feed(cp);
}

void TlsRecordReassembler::feed_all(
    std::span<const CapturedPacket* const> packets) {
  for (const CapturedPacket* cp : packets) feed(*cp);
}

}  // namespace h2sim::capture
