#include "capture/session.hpp"

#include "capture/frame.hpp"
#include "obs/context.hpp"

namespace h2sim::capture {

CaptureSession::CaptureSession(sim::EventLoop& loop, net::Path& path,
                               CaptureConfig cfg)
    : cfg_(std::move(cfg)), writer_(cfg_.path) {
  (void)loop;  // taps receive their timestamps from the tapped components
  auto& reg = obs::metrics();
  metrics_.packets = reg.counter("capture.packets");
  metrics_.bytes_written = reg.counter("capture.bytes_written");

  // Interface ids depend only on which vantages are enabled, so a given
  // config always produces the same interface layout (golden determinism).
  if (cfg_.client_vantage) {
    const std::uint32_t id =
        writer_.add_interface("client", "victim host (c2m egress + m2c ingress)");
    path.client_to_mb().set_send_tap(
        [this, id](const net::Packet& p, sim::TimePoint t) { record(id, p, t); });
    path.mb_to_client().set_deliver_tap(
        [this, id](const net::Packet& p, sim::TimePoint t) { record(id, p, t); });
  }
  if (cfg_.gateway_vantage) {
    const std::uint32_t id = writer_.add_interface(
        "gateway", "compromised middlebox (both directions, pre-policy)");
    path.middlebox().add_tap([this, id](const net::Packet& p, net::Direction,
                                        sim::TimePoint t) { record(id, p, t); });
  }
  if (cfg_.server_vantage) {
    const std::uint32_t id =
        writer_.add_interface("server", "origin host (s2m egress + m2s ingress)");
    path.server_to_mb().set_send_tap(
        [this, id](const net::Packet& p, sim::TimePoint t) { record(id, p, t); });
    path.mb_to_server().set_deliver_tap(
        [this, id](const net::Packet& p, sim::TimePoint t) { record(id, p, t); });
  }
}

void CaptureSession::record(std::uint32_t iface, const net::Packet& p,
                            sim::TimePoint t) {
  obs::ProfileScope prof(obs::Component::kCapture);
  frame_buf_.clear();
  encode_frame(p, frame_buf_);
  writer_.write_packet(iface, t.count_nanos(), frame_buf_);
  metrics_.packets.inc();
  // Count against the total buffered size (not just this packet's block), so
  // the section/interface header bytes are attributed to the first packet and
  // the counter equals the final file size exactly.
  metrics_.bytes_written.add(writer_.bytes_buffered() - counted_bytes_);
  counted_bytes_ = writer_.bytes_buffered();
}

bool CaptureSession::close() { return writer_.close(); }

}  // namespace h2sim::capture
