#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace h2sim::capture {

/// Ethernet(14) + IPv4(20) + TCP(20) synthetic framing around a simulated
/// packet's TCP payload. Node ids map to 10.0.0.<id> and locally-administered
/// MACs 02:00:00:00:00:<id>, so standard tooling (tshark, Wireshark) renders
/// the capture as an ordinary TCP/TLS flow.
inline constexpr std::size_t kEthernetHeaderBytes = 14;
inline constexpr std::size_t kIpv4HeaderBytes = 20;
inline constexpr std::size_t kTcpHeaderBytes = 20;
inline constexpr std::size_t kFrameOverheadBytes =
    kEthernetHeaderBytes + kIpv4HeaderBytes + kTcpHeaderBytes;

/// Total frame size for a packet (no FCS; pcap captures omit it).
inline std::size_t frame_size(const net::Packet& p) {
  return kFrameOverheadBytes + p.payload.size();
}

/// Appends the framed packet to `out`. IPv4 and TCP checksums are computed
/// properly so validating dissectors raise no warnings.
void encode_frame(const net::Packet& p, std::vector<std::uint8_t>& out);

/// Parses an Ethernet/IPv4/TCP frame back into a simulated packet: node ids
/// from the IP addresses' last octet, TCP header fields, payload bytes.
/// `p->id`, `p->sent_at` and `p->is_retransmission` are not on the wire and
/// are left default. False (reason in `*error`) for anything that is not a
/// plain IPv4/TCP frame — callers skip such frames when ingesting external
/// captures.
bool decode_frame(std::span<const std::uint8_t> frame, net::Packet* p,
                  std::string* error);

/// RFC 1071 ones-complement sum over `data`, starting from `sum` (used for
/// the TCP pseudo-header). Exposed for tests.
std::uint16_t inet_checksum(std::span<const std::uint8_t> data,
                            std::uint32_t sum = 0);

}  // namespace h2sim::capture
