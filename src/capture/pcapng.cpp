#include "capture/pcapng.hpp"

#include <cstdio>
#include <cstring>

namespace h2sim::capture {

namespace {

// Block type codes (pcapng spec, draft-ietf-opsawg-pcapng).
constexpr std::uint32_t kBlockSection = 0x0A0D0D0A;
constexpr std::uint32_t kBlockInterface = 0x00000001;
constexpr std::uint32_t kBlockEnhancedPacket = 0x00000006;
constexpr std::uint32_t kByteOrderMagic = 0x1A2B3C4D;

constexpr std::uint16_t kOptEnd = 0;
constexpr std::uint16_t kOptIfName = 2;
constexpr std::uint16_t kOptIfDescription = 3;
constexpr std::uint16_t kOptIfTsresol = 9;

void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v >> 16));
  b.push_back(static_cast<std::uint8_t>(v >> 24));
}

void pad_to4(std::vector<std::uint8_t>& b) {
  while (b.size() % 4 != 0) b.push_back(0);
}

/// Appends one option (value padded to 4 bytes) to a block body.
void put_option(std::vector<std::uint8_t>& b, std::uint16_t code,
                std::span<const std::uint8_t> value) {
  put_u16(b, code);
  put_u16(b, static_cast<std::uint16_t>(value.size()));
  b.insert(b.end(), value.begin(), value.end());
  pad_to4(b);
}

/// Wraps a block body in type + length framing (length repeated at the end,
/// as the spec requires for backward seeking).
void put_block(std::vector<std::uint8_t>& out, std::uint32_t type,
               std::span<const std::uint8_t> body) {
  const std::uint32_t total = static_cast<std::uint32_t>(12 + body.size());
  put_u32(out, type);
  put_u32(out, total);
  out.insert(out.end(), body.begin(), body.end());
  put_u32(out, total);
}

}  // namespace

PcapngWriter::PcapngWriter(std::string path) : path_(std::move(path)) {
  // Section Header Block: byte-order magic, version 1.0, unknown section
  // length. No options — anything like shb_os or shb_userappl would embed
  // machine state and break golden-file determinism.
  std::vector<std::uint8_t> body;
  put_u32(body, kByteOrderMagic);
  put_u16(body, 1);  // major
  put_u16(body, 0);  // minor
  put_u32(body, 0xFFFFFFFF);  // section length: unspecified
  put_u32(body, 0xFFFFFFFF);
  put_block(buf_, kBlockSection, body);
}

std::uint32_t PcapngWriter::add_interface(const std::string& name,
                                          const std::string& description) {
  std::vector<std::uint8_t> body;
  put_u16(body, kLinktypeEthernet);
  put_u16(body, 0);  // reserved
  put_u32(body, 0);  // snaplen: unlimited
  put_option(body, kOptIfName,
             std::span(reinterpret_cast<const std::uint8_t*>(name.data()),
                       name.size()));
  if (!description.empty()) {
    put_option(
        body, kOptIfDescription,
        std::span(reinterpret_cast<const std::uint8_t*>(description.data()),
                  description.size()));
  }
  const std::uint8_t tsresol = 9;  // nanoseconds
  put_option(body, kOptIfTsresol, std::span(&tsresol, 1));
  put_option(body, kOptEnd, {});
  put_block(buf_, kBlockInterface, body);
  return interfaces_++;
}

void PcapngWriter::write_packet(std::uint32_t iface, std::int64_t ts_nanos,
                                std::span<const std::uint8_t> frame) {
  std::vector<std::uint8_t> body;
  body.reserve(20 + frame.size() + 3);
  put_u32(body, iface);
  const std::uint64_t ts = static_cast<std::uint64_t>(ts_nanos);
  put_u32(body, static_cast<std::uint32_t>(ts >> 32));
  put_u32(body, static_cast<std::uint32_t>(ts));
  put_u32(body, static_cast<std::uint32_t>(frame.size()));  // captured
  put_u32(body, static_cast<std::uint32_t>(frame.size()));  // original
  body.insert(body.end(), frame.begin(), frame.end());
  pad_to4(body);
  put_block(buf_, kBlockEnhancedPacket, body);
  ++packets_written_;
}

bool PcapngWriter::close() {
  if (closed_) return true;
  closed_ = true;
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (!f) return false;
  const bool ok =
      buf_.empty() || std::fwrite(buf_.data(), 1, buf_.size(), f) == buf_.size();
  return std::fclose(f) == 0 && ok;
}

PcapngWriter::~PcapngWriter() {
  if (!closed_) close();
}

namespace {

/// Cursor over the raw file bytes with a per-section byte order.
struct Cursor {
  const std::uint8_t* p = nullptr;
  std::size_t len = 0;
  std::size_t off = 0;
  bool big_endian = false;

  bool has(std::size_t n) const { return off + n <= len; }

  std::uint16_t u16() {
    std::uint16_t v;
    if (big_endian) {
      v = static_cast<std::uint16_t>(p[off] << 8 | p[off + 1]);
    } else {
      v = static_cast<std::uint16_t>(p[off] | p[off + 1] << 8);
    }
    off += 2;
    return v;
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    if (big_endian) {
      v = static_cast<std::uint32_t>(p[off]) << 24 |
          static_cast<std::uint32_t>(p[off + 1]) << 16 |
          static_cast<std::uint32_t>(p[off + 2]) << 8 |
          static_cast<std::uint32_t>(p[off + 3]);
    } else {
      v = static_cast<std::uint32_t>(p[off]) |
          static_cast<std::uint32_t>(p[off + 1]) << 8 |
          static_cast<std::uint32_t>(p[off + 2]) << 16 |
          static_cast<std::uint32_t>(p[off + 3]) << 24;
    }
    off += 4;
    return v;
  }
};

std::int64_t pow10_i64(int e) {
  std::int64_t v = 1;
  for (int i = 0; i < e; ++i) v *= 10;
  return v;
}

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

}  // namespace

bool PcapngReader::open(const std::string& path, std::string* error) {
  interfaces_.clear();
  packets_.clear();

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return fail(error, "cannot open " + path);
  std::vector<std::uint8_t> data;
  std::uint8_t chunk[65536];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data.insert(data.end(), chunk, chunk + n);
  }
  std::fclose(f);
  if (data.size() < 28) return fail(error, path + ": too short for pcapng");

  Cursor c{data.data(), data.size(), 0, false};
  bool saw_section = false;
  while (c.has(12)) {
    const std::size_t block_start = c.off;
    std::uint32_t type = c.u32();
    // The SHB's byte-order magic governs everything that follows, including
    // this block's own length field; peek it before trusting the length.
    if (type == kBlockSection) {
      if (!c.has(8)) return fail(error, path + ": truncated section header");
      const std::size_t save = c.off;
      c.off += 4;  // total length (endianness still unknown)
      std::uint32_t magic_le = c.u32();
      c.big_endian = magic_le != kByteOrderMagic;
      if (c.big_endian) {
        c.off = save + 4;
        if (c.u32() != kByteOrderMagic) {
          return fail(error, path + ": bad byte-order magic");
        }
      }
      c.off = save;
      saw_section = true;
    } else if (!saw_section) {
      return fail(error, path + ": does not start with a section header "
                                "(legacy pcap is not supported)");
    }
    std::uint32_t total = c.u32();
    if (total < 12 || total % 4 != 0 || block_start + total > data.size()) {
      return fail(error, path + ": bad block length");
    }
    const std::size_t body_end = block_start + total - 4;

    if (type == kBlockInterface) {
      if (c.off + 8 > body_end) return fail(error, path + ": truncated IDB");
      PcapngInterface idb;
      idb.linktype = c.u16();
      c.u16();  // reserved
      c.u32();  // snaplen
      while (c.off + 4 <= body_end) {
        const std::uint16_t code = c.u16();
        const std::uint16_t olen = c.u16();
        if (c.off + olen > body_end) return fail(error, path + ": bad option");
        if (code == kOptEnd) break;
        const char* val = reinterpret_cast<const char*>(c.p + c.off);
        if (code == kOptIfName) idb.name.assign(val, olen);
        if (code == kOptIfDescription) idb.description.assign(val, olen);
        if (code == kOptIfTsresol && olen >= 1) {
          const std::uint8_t r = c.p[c.off];
          // High bit set = power of two; we only understand powers of ten.
          if (r & 0x80) {
            return fail(error, path + ": power-of-two if_tsresol unsupported");
          }
          idb.tsresol_exp = r;
        }
        c.off += olen;
        while (c.off % 4 != 0 && c.off < body_end) ++c.off;
      }
      interfaces_.push_back(std::move(idb));
    } else if (type == kBlockEnhancedPacket) {
      if (c.off + 20 > body_end) return fail(error, path + ": truncated EPB");
      PcapngPacket pkt;
      pkt.iface = c.u32();
      const std::uint64_t ts_high = c.u32();
      const std::uint64_t ts_low = c.u32();
      const std::uint32_t cap_len = c.u32();
      pkt.orig_len = c.u32();
      if (c.off + cap_len > body_end) {
        return fail(error, path + ": EPB capture length overruns block");
      }
      if (pkt.iface >= interfaces_.size()) {
        return fail(error, path + ": EPB references unknown interface");
      }
      const std::uint64_t ticks = ts_high << 32 | ts_low;
      const int exp = interfaces_[pkt.iface].tsresol_exp;
      // Normalize to nanoseconds: scale up for coarser clocks, truncate for
      // (hypothetical) finer-than-ns ones.
      pkt.ts_nanos = exp <= 9
                         ? static_cast<std::int64_t>(ticks) * pow10_i64(9 - exp)
                         : static_cast<std::int64_t>(
                               ticks / static_cast<std::uint64_t>(
                                           pow10_i64(exp - 9)));
      pkt.frame.assign(c.p + c.off, c.p + c.off + cap_len);
      packets_.push_back(std::move(pkt));
    }
    // Section headers, statistics, name resolution, unknown blocks: skip.
    c.off = block_start + total;
  }
  if (!saw_section) return fail(error, path + ": no section header found");
  return true;
}

}  // namespace h2sim::capture
