#include "capture/frame.hpp"

namespace h2sim::capture {

namespace {

// Real TCP wire flag bits; the simulator's net::tcpflag values are a private
// enumeration, so encode/decode translate.
constexpr std::uint8_t kWireFin = 0x01;
constexpr std::uint8_t kWireSyn = 0x02;
constexpr std::uint8_t kWireRst = 0x04;
constexpr std::uint8_t kWirePsh = 0x08;
constexpr std::uint8_t kWireAck = 0x10;

constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

void put_u16be(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}

void put_u32be(std::vector<std::uint8_t>& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 24));
  b.push_back(static_cast<std::uint8_t>(v >> 16));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get_u16be(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] << 8 | p[1]);
}

std::uint32_t get_u32be(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | static_cast<std::uint32_t>(p[3]);
}

void put_mac(std::vector<std::uint8_t>& b, net::NodeId node) {
  b.push_back(0x02);  // locally administered, unicast
  b.push_back(0x00);
  b.push_back(0x00);
  b.push_back(0x00);
  b.push_back(0x00);
  b.push_back(static_cast<std::uint8_t>(node));
}

void patch_u16be(std::vector<std::uint8_t>& b, std::size_t off, std::uint16_t v) {
  b[off] = static_cast<std::uint8_t>(v >> 8);
  b[off + 1] = static_cast<std::uint8_t>(v);
}

std::uint8_t wire_flags(const net::TcpHeader& h) {
  std::uint8_t f = 0;
  if (h.syn()) f |= kWireSyn;
  if (h.ack_flag()) f |= kWireAck;
  if (h.fin()) f |= kWireFin;
  if (h.rst()) f |= kWireRst;
  return f;
}

bool fail(std::string* error, const char* msg) {
  if (error) *error = msg;
  return false;
}

}  // namespace

std::uint16_t inet_checksum(std::span<const std::uint8_t> data,
                            std::uint32_t sum) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i] << 8 | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

void encode_frame(const net::Packet& p, std::vector<std::uint8_t>& out) {
  const std::size_t eth_off = out.size();

  // Ethernet II.
  put_mac(out, p.dst);
  put_mac(out, p.src);
  put_u16be(out, kEtherTypeIpv4);

  // IPv4.
  const std::size_t ip_off = out.size();
  const std::uint16_t total_len = static_cast<std::uint16_t>(
      kIpv4HeaderBytes + kTcpHeaderBytes + p.payload.size());
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(0x00);  // DSCP/ECN
  put_u16be(out, total_len);
  put_u16be(out, static_cast<std::uint16_t>(p.id));  // identification
  put_u16be(out, 0x4000);                            // DF, no fragmentation
  out.push_back(64);                                 // TTL
  out.push_back(6);                                  // protocol: TCP
  put_u16be(out, 0);                                 // checksum placeholder
  put_u32be(out, 0x0A000000u | p.src);               // 10.0.0.<src>
  put_u32be(out, 0x0A000000u | p.dst);               // 10.0.0.<dst>
  const std::uint16_t ip_csum =
      inet_checksum(std::span(out.data() + ip_off, kIpv4HeaderBytes));
  patch_u16be(out, ip_off + 10, ip_csum);

  // TCP.
  const std::size_t tcp_off = out.size();
  put_u16be(out, p.tcp.src_port);
  put_u16be(out, p.tcp.dst_port);
  put_u32be(out, p.tcp.seq);
  put_u32be(out, p.tcp.ack);
  out.push_back(0x50);  // data offset 5, no options
  std::uint8_t f = wire_flags(p.tcp);
  if (!p.payload.empty() && !p.tcp.syn()) f |= kWirePsh;
  out.push_back(f);
  // The simulated window is not constrained to 16 bits; clamp (we write no
  // window-scale option, and no consumer of the capture reads the window).
  put_u16be(out, static_cast<std::uint16_t>(
                     p.tcp.wnd > 0xFFFF ? 0xFFFF : p.tcp.wnd));
  put_u16be(out, 0);  // checksum placeholder
  put_u16be(out, 0);  // urgent pointer

  out.insert(out.end(), p.payload.begin(), p.payload.end());

  // TCP checksum over pseudo-header + segment.
  const std::uint32_t src_ip = 0x0A000000u | p.src;
  const std::uint32_t dst_ip = 0x0A000000u | p.dst;
  std::uint32_t pseudo = 0;
  pseudo += src_ip >> 16;
  pseudo += src_ip & 0xFFFF;
  pseudo += dst_ip >> 16;
  pseudo += dst_ip & 0xFFFF;
  pseudo += 6;  // zero byte + protocol
  const std::size_t seg_len = out.size() - tcp_off;
  pseudo += static_cast<std::uint32_t>(seg_len);
  const std::uint16_t tcp_csum =
      inet_checksum(std::span(out.data() + tcp_off, seg_len), pseudo);
  patch_u16be(out, tcp_off + 16, tcp_csum);

  (void)eth_off;
}

bool decode_frame(std::span<const std::uint8_t> frame, net::Packet* p,
                  std::string* error) {
  if (frame.size() < kFrameOverheadBytes) return fail(error, "frame too short");
  if (get_u16be(frame.data() + 12) != kEtherTypeIpv4) {
    return fail(error, "not IPv4");
  }

  const std::uint8_t* ip = frame.data() + kEthernetHeaderBytes;
  const std::size_t ip_avail = frame.size() - kEthernetHeaderBytes;
  if ((ip[0] >> 4) != 4) return fail(error, "not IPv4");
  const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0F) * 4;
  if (ihl < kIpv4HeaderBytes || ip_avail < ihl) return fail(error, "bad IHL");
  if (ip[9] != 6) return fail(error, "not TCP");
  const std::size_t total_len = get_u16be(ip + 2);
  // Ethernet minimum-frame padding may trail the datagram; the IP total
  // length delimits the real payload.
  if (total_len < ihl || total_len > ip_avail) {
    return fail(error, "bad IP total length");
  }

  const std::uint8_t* tcp = ip + ihl;
  const std::size_t tcp_avail = total_len - ihl;
  if (tcp_avail < kTcpHeaderBytes) return fail(error, "truncated TCP header");
  const std::size_t doff = static_cast<std::size_t>(tcp[12] >> 4) * 4;
  if (doff < kTcpHeaderBytes || doff > tcp_avail) {
    return fail(error, "bad TCP data offset");
  }

  p->src = ip[15];  // 10.0.0.<node>
  p->dst = ip[19];
  p->tcp.src_port = get_u16be(tcp);
  p->tcp.dst_port = get_u16be(tcp + 2);
  p->tcp.seq = get_u32be(tcp + 4);
  p->tcp.ack = get_u32be(tcp + 8);
  const std::uint8_t wf = tcp[13];
  p->tcp.flags = 0;
  if (wf & kWireSyn) p->tcp.flags |= net::tcpflag::kSyn;
  if (wf & kWireAck) p->tcp.flags |= net::tcpflag::kAck;
  if (wf & kWireFin) p->tcp.flags |= net::tcpflag::kFin;
  if (wf & kWireRst) p->tcp.flags |= net::tcpflag::kRst;
  p->tcp.wnd = get_u16be(tcp + 14);
  p->payload.assign(tcp + doff, tcp + tcp_avail);
  return true;
}

}  // namespace h2sim::capture
