#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace h2sim::capture {

/// PCAPNG linktype values we understand (LINKTYPE_* registry).
inline constexpr std::uint16_t kLinktypeEthernet = 1;

/// One capture interface, as written by PcapngWriter or recovered from an
/// Interface Description Block. `tsresol_exp` is the power-of-ten timestamp
/// resolution exponent (9 = nanoseconds, 6 = microseconds — the pcapng
/// default when the option is absent).
struct PcapngInterface {
  std::string name;
  std::string description;
  std::uint16_t linktype = kLinktypeEthernet;
  std::uint8_t tsresol_exp = 6;
};

/// One captured frame from an Enhanced Packet Block. `ts_nanos` is always
/// normalized to nanoseconds regardless of the file's native resolution.
struct PcapngPacket {
  std::uint32_t iface = 0;
  std::int64_t ts_nanos = 0;
  std::uint32_t orig_len = 0;
  std::vector<std::uint8_t> frame;  // captured link-layer bytes
};

/// Serializes a PCAPNG section: one Section Header Block, one Interface
/// Description Block per vantage point (nanosecond if_tsresol), then
/// Enhanced Packet Blocks in write order. Content is deterministic: the
/// writer never embeds wall-clock time, host names, or tool versions, so a
/// byte-identical simulation produces a byte-identical file (the golden-trace
/// corpus depends on this).
///
/// Blocks accumulate in memory and hit the filesystem in one write at
/// close(); a simulated trial's capture is at most a few megabytes.
class PcapngWriter {
 public:
  explicit PcapngWriter(std::string path);

  PcapngWriter(const PcapngWriter&) = delete;
  PcapngWriter& operator=(const PcapngWriter&) = delete;

  /// Registers a vantage-point interface; returns its interface id.
  /// Must be called before the first write_packet for that id.
  std::uint32_t add_interface(const std::string& name,
                              const std::string& description);

  void write_packet(std::uint32_t iface, std::int64_t ts_nanos,
                    std::span<const std::uint8_t> frame);

  /// Flushes the buffered section to `path`. False (errno intact) on IO
  /// failure. Idempotent; the destructor calls it if the caller did not.
  bool close();

  std::uint64_t packets_written() const { return packets_written_; }
  /// Total pcapng bytes buffered so far (section + interface + packet
  /// blocks) — the value capture_bytes_written reports.
  std::uint64_t bytes_buffered() const { return buf_.size(); }
  const std::string& path() const { return path_; }

  ~PcapngWriter();

 private:
  std::string path_;
  std::vector<std::uint8_t> buf_;
  std::uint32_t interfaces_ = 0;
  std::uint64_t packets_written_ = 0;
  bool closed_ = false;
};

/// Parses a PCAPNG file into interfaces + packets. Handles both byte orders,
/// power-of-ten if_tsresol values, and skips unknown block types — enough to
/// ingest our own captures and typical single-section tshark/tcpdump output.
class PcapngReader {
 public:
  /// Reads and parses the whole file. False with a human-readable message in
  /// `*error` on malformed input or IO failure.
  bool open(const std::string& path, std::string* error);

  const std::vector<PcapngInterface>& interfaces() const { return interfaces_; }
  const std::vector<PcapngPacket>& packets() const { return packets_; }

 private:
  std::vector<PcapngInterface> interfaces_;
  std::vector<PcapngPacket> packets_;
};

}  // namespace h2sim::capture
