#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/trace.hpp"
#include "attack/monitor.hpp"
#include "capture/pcapng.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace h2sim::capture {

/// One ingested frame, decoded back into the simulator's packet model.
struct CapturedPacket {
  std::uint32_t iface = 0;
  sim::TimePoint time;
  net::Packet packet;
};

/// Reads a PCAPNG capture (ours or an external one) and decodes its frames
/// into simulated packets. Frames that are not plain IPv4/TCP (ARP, IPv6,
/// UDP...) are counted and skipped, so real-world captures ingest cleanly.
class PcapReader {
 public:
  /// Parses and decodes the whole file. False with a message in `*error` on
  /// malformed pcapng; per-frame decode failures only bump skipped_frames().
  bool open(const std::string& path, std::string* error);

  const std::vector<PcapngInterface>& interfaces() const {
    return reader_.interfaces();
  }
  /// Interface id by if_name; nullopt when absent.
  std::optional<std::uint32_t> find_interface(std::string_view name) const;

  /// The vantage h2sim-analyze should read when none is named: "gateway"
  /// when present (the adversary view), else interface 0.
  std::uint32_t default_interface() const;

  /// All decoded packets, in file order.
  const std::vector<CapturedPacket>& packets() const { return packets_; }
  /// Decoded packets belonging to one interface, in file order.
  std::vector<const CapturedPacket*> packets_on(std::uint32_t iface) const;

  std::uint64_t skipped_frames() const { return skipped_frames_; }

 private:
  PcapngReader reader_;
  std::vector<CapturedPacket> packets_;
  std::uint64_t skipped_frames_ = 0;
};

/// Rebuilds the adversary's RecordObs stream from captured packets: per-flow
/// TCP reassembly (reordering and deduplicating by sequence number) feeding
/// the cleartext TLS record-header parser. Internally this IS the live
/// attack::TrafficMonitor — the same code path a live trial runs at the
/// gateway tap — so an exported-then-ingested capture reproduces the live
/// trial's analysis::PacketTrace exactly, records, timestamps and all.
struct ReassemblerConfig {
  /// TCP port identifying the server side; packets toward it are
  /// client->server. 443 for our captures and almost any HTTPS trace.
  net::Port server_port = 443;
  attack::MonitorConfig monitor;
};

class TlsRecordReassembler {
 public:
  explicit TlsRecordReassembler(ReassemblerConfig cfg = {});

  void feed(const CapturedPacket& cp);
  void feed_all(std::span<const CapturedPacket> packets);
  void feed_all(std::span<const CapturedPacket* const> packets);

  const analysis::PacketTrace& trace() const { return monitor_.trace(); }
  int get_count() const { return monitor_.get_count(); }
  attack::TrafficMonitor& monitor() { return monitor_; }

  net::Direction direction_of(const net::Packet& p) const {
    return p.tcp.dst_port == cfg_.server_port
               ? net::Direction::kClientToServer
               : net::Direction::kServerToClient;
  }

 private:
  ReassemblerConfig cfg_;
  attack::TrafficMonitor monitor_;
  std::uint64_t next_id_ = 1;
};

}  // namespace h2sim::capture
