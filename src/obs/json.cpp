#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

#include "obs/metrics.hpp"

namespace h2sim::obs::json {

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n]) ++n;
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool parse_value(Value& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.kind = Value::Kind::kString;
        return parse_string(out.string);
      }
      case 't':
        out.kind = Value::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = Value::Kind::kNull;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.kind = Value::Kind::kObject;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool parse_array(Value& out) {
    out.kind = Value::Kind::kArray;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char esc = s_[pos_ + 1];
        switch (esc) {
          case '"': out += '"'; pos_ += 2; break;
          case '\\': out += '\\'; pos_ += 2; break;
          case '/': out += '/'; pos_ += 2; break;
          case 'b': out += '\b'; pos_ += 2; break;
          case 'f': out += '\f'; pos_ += 2; break;
          case 'n': out += '\n'; pos_ += 2; break;
          case 'r': out += '\r'; pos_ += 2; break;
          case 't': out += '\t'; pos_ += 2; break;
          case 'u': {
            if (pos_ + 6 > s_.size()) return false;
            for (std::size_t i = pos_ + 2; i < pos_ + 6; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(s_[i]))) return false;
            }
            out.append(s_, pos_, 6);  // keep the escape verbatim
            pos_ += 6;
            break;
          }
          default: return false;
        }
      } else {
        out += c;
        ++pos_;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (eat('-')) {
    }
    if (eat('0')) {
      // no leading zeros
    } else {
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return false;
      }
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (eat('.')) {
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return false;
      }
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return false;
      }
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    out.kind = Value::Kind::kNumber;
    out.number = std::strtod(s_.c_str() + start, nullptr);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(const std::string& text) { return Parser(text).run(); }

}  // namespace h2sim::obs::json

namespace h2sim::obs {

namespace {

// null (the writer's non-finite guard) reads back as 0.0; see header.
double number_or_zero(const json::Value& v) {
  return v.is_number() ? v.number : 0.0;
}

}  // namespace

std::optional<MetricsSnapshot> metrics_snapshot_from_json(const std::string& text) {
  const auto doc = json::parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const json::Value* counters = doc->find("counters");
  const json::Value* gauges = doc->find("gauges");
  const json::Value* histograms = doc->find("histograms");
  if (!counters || !counters->is_object() || !gauges || !gauges->is_object() ||
      !histograms || !histograms->is_object()) {
    return std::nullopt;
  }

  MetricsSnapshot snap;
  for (const auto& [name, v] : counters->object) {
    if (!v.is_number()) return std::nullopt;
    snap.counters[name] = static_cast<std::uint64_t>(v.number);
  }
  for (const auto& [name, v] : gauges->object) {
    if (!v.is_number() && v.kind != json::Value::Kind::kNull) return std::nullopt;
    snap.gauges[name] = number_or_zero(v);
  }
  for (const auto& [name, v] : histograms->object) {
    if (!v.is_object()) return std::nullopt;
    const json::Value* edges = v.find("edges");
    const json::Value* counts = v.find("counts");
    const json::Value* count = v.find("count");
    const json::Value* sum = v.find("sum");
    if (!edges || !edges->is_array() || !counts || !counts->is_array() ||
        !count || !count->is_number() || !sum) {
      return std::nullopt;
    }
    HistogramData h;
    h.edges.reserve(edges->array.size());
    for (const auto& e : edges->array) {
      if (!e.is_number()) return std::nullopt;
      h.edges.push_back(e.number);
    }
    h.counts.reserve(counts->array.size());
    for (const auto& c : counts->array) {
      if (!c.is_number()) return std::nullopt;
      h.counts.push_back(static_cast<std::uint64_t>(c.number));
    }
    if (h.counts.size() != h.edges.size() + 1) return std::nullopt;
    h.count = static_cast<std::uint64_t>(count->number);
    h.sum = number_or_zero(*sum);
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

}  // namespace h2sim::obs
