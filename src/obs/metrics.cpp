#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "obs/context.hpp"

namespace h2sim::obs {

bool HistogramData::merge(const HistogramData& o) {
  if (o.count == 0 && o.edges.empty()) return true;
  if (edges.empty() && counts.empty()) {
    *this = o;
    return true;
  }
  if (edges != o.edges || counts.size() != o.counts.size()) return false;
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += o.counts[i];
  count += o.count;
  sum += o.sum;
  return true;
}

HistogramData& HistogramData::operator+=(const HistogramData& o) {
  const bool ok = merge(o);
  assert(ok && "HistogramData::operator+= requires identical bucket edges");
  (void)ok;
  return *this;
}

std::vector<double> linear_buckets(double start, double width, std::size_t n) {
  std::vector<double> edges;
  edges.reserve(n);
  for (std::size_t i = 0; i < n; ++i) edges.push_back(start + width * static_cast<double>(i));
  return edges;
}

std::vector<double> exponential_buckets(double start, double factor, std::size_t n) {
  std::vector<double> edges;
  edges.reserve(n);
  double e = start;
  for (std::size_t i = 0; i < n; ++i) {
    edges.push_back(e);
    e *= factor;
  }
  return edges;
}

MetricsRegistry& MetricsRegistry::instance() {
  detail::assert_singleton_thread("obs::MetricsRegistry::instance()");
  return default_context().metrics;
}

Counter MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<std::uint64_t>(0);
  return Counter(slot.get());
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<double>(0.0);
  return Gauge(slot.get());
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> edges) {
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<HistogramData>();
    slot->edges = std::move(edges);
    slot->counts.assign(slot->edges.size() + 1, 0);
  }
  return Histogram(slot.get());
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : *it->second;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : *it->second;
}

const HistogramData* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::reset() {
  for (auto& [name, v] : counters_) *v = 0;
  for (auto& [name, v] : gauges_) *v = 0.0;
  for (auto& [name, h] : histograms_) {
    std::fill(h->counts.begin(), h->counts.end(), 0);
    h->count = 0;
    h->sum = 0.0;
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  for (const auto& [name, v] : counters_) s.counters[name] = *v;
  for (const auto& [name, v] : gauges_) s.gauges[name] = *v;
  for (const auto& [name, h] : histograms_) s.histograms[name] = *h;
  return s;
}

namespace {

void append_double(std::string& out, double v) {
  // JSON has no inf/nan literals; "%.17g" would happily print them and
  // corrupt the document for strict parsers (including obs::json::parse).
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string metrics_json(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, name);
    out += ": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, name);
    out += ": ";
    append_double(out, v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, name);
    out += ": {\"edges\": [";
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      if (i) out += ", ";
      append_double(out, h.edges[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "], \"count\": " + std::to_string(h.count) + ", \"sum\": ";
    append_double(out, h.sum);
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

bool write_metrics_json(const MetricsSnapshot& snap, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string body = metrics_json(snap);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace h2sim::obs
