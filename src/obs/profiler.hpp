#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace h2sim::obs {

/// Wall-clock component profiler. Answers "where does real time go inside a
/// trial" — tcp segmentation vs tls record protection vs h2 framing vs the
/// attack pipeline — which the simulated-time tracer cannot, because the
/// tracer's timestamps are *simulated* nanoseconds.
///
/// Off by default, and engineered to the same hot-path discipline as the
/// tracer: a disabled probe is one thread-local pointer read plus one branch
/// (see ProfileScope), so per-packet probes in net/tcp stay free in
/// production runs. The microbench BM_ProfilerDisabledScope pins this.
///
/// Enabled, each ProfileScope pushes a frame; on pop the frame's *self* time
/// (total minus time spent in nested scopes) is attributed to the current
/// component stack. Two exports:
///   - collapsed():       folded-stack text ("net;tcp;tls 12345") directly
///                        consumable by flamegraph.pl / speedscope / inferno.
///   - counter_events():  per-component 'C' TraceEvents mergeable into the
///                        tracer's Perfetto timeline as counter tracks.
///
/// Profiler output is wall time and therefore nondeterministic; it never
/// feeds TrialResult, metrics, or digests — behavior goldens are unaffected
/// by enabling it.
///
/// Like the registry and tracer, a Profiler is single-threaded state owned by
/// one trial's Context; reach it through obs::profiler().
class Profiler {
 public:
  static constexpr std::size_t kComponentCount =
      static_cast<std::size_t>(Component::kCount);

  struct PathStat {
    std::uint64_t self_ns = 0;
    std::uint64_t calls = 0;
  };

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Drops all accumulated samples and any live frames. Keeps the enabled
  /// flag: the harness resets per trial without re-arming.
  void reset();

  /// Manual span control; prefer ProfileScope. enter/exit must nest.
  void enter(Component c);
  void exit();

  /// Total self-nanoseconds attributed to `c` across all stacks.
  std::uint64_t component_self_ns(Component c) const {
    return component_self_ns_[static_cast<std::size_t>(c)];
  }
  /// Folded stacks keyed by "comp;comp;..." path.
  const std::map<std::string, PathStat>& paths() const { return paths_; }

  /// Folded-stack ("collapsed") text: one "path self_ns" line per stack,
  /// sorted by path. The unit is nanoseconds; flamegraph tooling treats the
  /// count as opaque samples.
  std::string collapsed() const;

  /// One 'C' (counter) TraceEvent per component with nonzero self time,
  /// stamped at simulated time `t` so they land on the tracer's timeline.
  /// Value is self time in microseconds ("wall_self_us" counter).
  std::vector<TraceEvent> counter_events(sim::TimePoint t) const;

 private:
  struct Frame {
    Component comp;
    std::uint64_t start_ns;
    std::uint64_t child_ns;
    std::size_t parent_path_len;
  };

  static std::uint64_t now_ns();

  bool enabled_ = false;
  std::vector<Frame> frames_;
  std::string path_;  // incremental "a;b;c" of the live stack
  std::array<std::uint64_t, kComponentCount> component_self_ns_{};
  std::map<std::string, PathStat> paths_;
};

/// The current context's profiler (one thread-local read).
Profiler& profiler();

/// RAII component probe. The constructor reads the current profiler once and
/// keeps a pointer only when profiling is enabled, so a disabled scope costs
/// the pointer read, one branch, and nothing in the destructor but a
/// null test.
class ProfileScope {
 public:
  explicit ProfileScope(Component c) {
    Profiler& p = profiler();
    if (p.enabled()) {
      p_ = &p;
      p.enter(c);
    }
  }
  ~ProfileScope() {
    if (p_) p_->exit();
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* p_ = nullptr;
};

bool write_collapsed(const Profiler& prof, const std::string& path);

}  // namespace h2sim::obs
