#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace h2sim::obs {

/// Minimal streaming SHA-256 (FIPS 180-4). Used by the campaign manifest to
/// fingerprint NDJSON shards so a resumed run can prove the rows it replays
/// are the rows the interrupted run wrote. Not a general-purpose crypto
/// dependency — the simulator has no secrecy requirements; this is a
/// content-addressing checksum.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(const void* data, std::size_t len);
  void update(const std::string& s) { update(s.data(), s.size()); }

  /// Finalizes and returns the 64-char lowercase hex digest. The object is
  /// left finalized; call reset() to reuse it.
  std::string hex_digest();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t bit_count_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

/// One-shot helpers.
std::string sha256_hex(const std::string& data);
/// Hashes the whole file at `path`; empty string if the file cannot be read.
std::string sha256_file_hex(const std::string& path);

}  // namespace h2sim::obs
