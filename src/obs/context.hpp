#pragma once

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace h2sim::obs {

/// The mutable observability state one simulation writes: a metrics registry,
/// a tracer, and a wall-time profiler. Every instrumented component resolves
/// these through the *current* context (see below) instead of a process-wide
/// singleton, so concurrent trials — each with its own Context — never share
/// mutable state.
struct Context {
  MetricsRegistry metrics;
  Tracer tracer;
  Profiler profiler;

  Context() = default;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;
};

/// The process-default context. This is what the legacy
/// `MetricsRegistry::instance()` / `Tracer::instance()` accessors alias, and
/// what current() falls back to when no ScopedContext is installed — so
/// single-threaded code keeps its PR-1 behaviour unchanged.
Context& default_context();

/// The context in force on this thread: the innermost ScopedContext, or
/// default_context() when none is installed.
Context& current();

/// Shorthands for the current context's members. These are the accessors all
/// instrumented components use; they cost one thread-local pointer read.
MetricsRegistry& metrics();
Tracer& tracer();

/// Installs `ctx` as the calling thread's current context for the scope's
/// lifetime, restoring the previous context (usually none) on destruction.
/// The parallel trial runner wraps each trial in one of these so per-packet
/// instrumentation lands in trial-private storage.
class ScopedContext {
 public:
  explicit ScopedContext(Context& ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Context* prev_;
};

namespace detail {
/// Legacy-singleton guard: records the first thread to take the process-wide
/// path and aborts with a diagnostic if a second thread follows. The
/// singletons are single-thread-only by contract; racing them silently
/// corrupts metrics, so out-of-tree callers fail loudly instead.
void assert_singleton_thread(const char* what);
}  // namespace detail

}  // namespace h2sim::obs
