#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace h2sim::obs::json {

/// Minimal JSON DOM used to validate and inspect the tracer's / registry's
/// own exports (round-trip tests, example post-processing). Not a general
/// purpose library: strict RFC 8259 syntax, numbers as double, no
/// surrogate-pair decoding (escapes are preserved verbatim in strings).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
};

/// Parses a complete JSON document. nullopt on any syntax error or trailing
/// garbage.
std::optional<Value> parse(const std::string& text);

}  // namespace h2sim::obs::json

namespace h2sim::obs {

struct MetricsSnapshot;

/// Inverse of metrics_json(): rebuilds a snapshot from the document the
/// writer produced. nullopt on syntax errors or a structurally foreign
/// document (missing sections, wrong types). Finite doubles round-trip
/// bit-exactly (%.17g); non-finite values were written as `null` by the
/// writer's guard and read back as 0.0 — by the time a value reaches an
/// export it should already be finite, and 0.0 keeps snapshots comparable
/// (NaN would poison operator==).
std::optional<MetricsSnapshot> metrics_snapshot_from_json(const std::string& text);

}  // namespace h2sim::obs
