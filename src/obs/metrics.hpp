#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace h2sim::obs {

/// Fixed-bucket histogram state. `edges` are the upper bounds of the first
/// `edges.size()` buckets; one overflow bucket follows, so
/// `counts.size() == edges.size() + 1`. A sample `v` lands in the first
/// bucket whose edge satisfies `v <= edge`.
struct HistogramData {
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Combines another histogram into this one. Histograms are mergeable only
  /// when their bucket edges are identical (the common case: every producer
  /// registered the same schema); an empty-edged accumulator adopts the other
  /// side's edges wholesale. Returns false — leaving this histogram
  /// untouched — when the edges differ, so callers can surface schema drift
  /// instead of silently mixing incompatible buckets. Bucket counts are
  /// integers, so merging is exact and order-independent.
  bool merge(const HistogramData& o);
  /// merge() that treats edge mismatch as a programming error (asserts in
  /// debug builds, no-op in release).
  HistogramData& operator+=(const HistogramData& o);

  bool operator==(const HistogramData&) const = default;
};

/// Convenience bucket-edge generators.
std::vector<double> linear_buckets(double start, double width, std::size_t n);
std::vector<double> exponential_buckets(double start, double factor, std::size_t n);

/// Cheap handles into the registry. A handle is a raw pointer to storage the
/// registry owns; the registry keeps registrations (and therefore handle
/// addresses) stable across reset(), so components may cache handles for the
/// process lifetime. Default-constructed handles are inert no-ops.
class Counter {
 public:
  Counter() = default;
  void inc() const {
    if (v_) ++*v_;
  }
  void add(std::uint64_t n) const {
    if (v_) *v_ += n;
  }
  std::uint64_t value() const { return v_ ? *v_ : 0; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint64_t* v) : v_(v) {}
  std::uint64_t* v_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void set(double v) const {
    if (v_) *v_ = v;
  }
  void add(double v) const {
    if (v_) *v_ += v;
  }
  double value() const { return v_ ? *v_ : 0.0; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(double* v) : v_(v) {}
  double* v_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const {
    if (!d_) return;
    const auto it = std::lower_bound(d_->edges.begin(), d_->edges.end(), v);
    ++d_->counts[static_cast<std::size_t>(it - d_->edges.begin())];
    ++d_->count;
    d_->sum += v;
  }
  const HistogramData* data() const { return d_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(HistogramData* d) : d_(d) {}
  HistogramData* d_ = nullptr;
};

/// Point-in-time copy of every registered metric, ready for export or
/// comparison. Maps are name-sorted, so iteration (and the JSON emitted from
/// it) is deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Metrics registry. Names follow `component.metric`
/// (e.g. "tcp.retransmits_fast"); registering the same name twice returns a
/// handle to the same storage, which is how per-connection instances
/// aggregate into one registry-wide counter.
///
/// A registry is single-threaded state: one simulation (one trial) writes
/// it. Components reach the registry of the trial they belong to through
/// `obs::metrics()` (see obs/context.hpp); concurrent trials each install
/// their own `obs::Context`, so registries are never shared across threads.
///
/// reset() zeroes every value but keeps registrations, so a harness can make
/// back-to-back trials start from identical state without invalidating the
/// handles components cached at construction.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Legacy accessor for the process-default registry
  /// (`obs::default_context().metrics`). Single-thread-only: the first
  /// calling thread claims it and any other thread aborts with a
  /// diagnostic. Multi-threaded code must use per-trial contexts instead.
  static MetricsRegistry& instance();

  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  /// Re-registering an existing histogram ignores `edges` and returns the
  /// original storage.
  Histogram histogram(const std::string& name, std::vector<double> edges);

  /// Lookup without registering; zero / nullptr when absent.
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  const HistogramData* find_histogram(const std::string& name) const;

  void reset();
  MetricsSnapshot snapshot() const;

 private:
  std::map<std::string, std::unique_ptr<std::uint64_t>> counters_;
  std::map<std::string, std::unique_ptr<double>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramData>> histograms_;
};

/// Renders a snapshot as a stable, human-diffable JSON document.
std::string metrics_json(const MetricsSnapshot& snap);
/// Writes metrics_json(snap) to `path`; false (with errno intact) on failure.
bool write_metrics_json(const MetricsSnapshot& snap, const std::string& path);

}  // namespace h2sim::obs
