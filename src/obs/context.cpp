#include "obs/context.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace h2sim::obs {

namespace {
thread_local Context* tls_current = nullptr;
}  // namespace

Context& default_context() {
  static Context ctx;
  return ctx;
}

Context& current() {
  Context* c = tls_current;
  return c ? *c : default_context();
}

MetricsRegistry& metrics() { return current().metrics; }

Tracer& tracer() { return current().tracer; }

ScopedContext::ScopedContext(Context& ctx) : prev_(tls_current) {
  tls_current = &ctx;
}

ScopedContext::~ScopedContext() { tls_current = prev_; }

namespace detail {

void assert_singleton_thread(const char* what) {
  // A default-constructed thread::id names no thread, so it doubles as the
  // "unclaimed" sentinel; the first caller CASes its own id in.
  static std::atomic<std::thread::id> owner{};
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id expected{};
  if (owner.compare_exchange_strong(expected, self,
                                    std::memory_order_acq_rel)) {
    return;
  }
  if (expected != self) {
    std::fprintf(stderr,
                 "h2sim: %s called from a second thread. The legacy "
                 "process-wide singleton is single-thread-only; concurrent "
                 "trials must use obs::Context + obs::ScopedContext (or "
                 "experiment::run_trials, which does this for you).\n",
                 what);
    std::abort();
  }
}

}  // namespace detail

}  // namespace h2sim::obs
