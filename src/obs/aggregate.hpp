#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace h2sim::obs {

/// Online (Welford) accumulator for one scalar series: count, mean, variance,
/// min, max in O(1) memory, no sample retention. `add()` is the canonical
/// streaming update; `merge()` combines two accumulators with the standard
/// parallel-variance formula (Chan et al.), which is exact in infinite
/// precision but — like any float reduction — sensitive to operand order.
/// Code that promises *bit-identical* aggregates (the campaign pipeline)
/// therefore always reduces by `add()` in ascending trial-index order and
/// reserves `merge()` for order-insensitive consumers (live telemetry,
/// cross-shard summaries).
struct StatAccumulator {
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;  // sum of squared deviations from the running mean
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void add(double x) {
    ++count;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
    if (x < min) min = x;
    if (x > max) max = x;
  }

  void merge(const StatAccumulator& o);

  /// Sample variance (n - 1 denominator); 0 for fewer than two samples.
  double variance() const {
    return count > 1 ? m2 / static_cast<double>(count - 1) : 0.0;
  }
  double stddev() const;
  /// Half-width of the normal-approximation 95% confidence interval for the
  /// mean: 1.96 * stddev / sqrt(count). 0 for fewer than two samples.
  double ci95_halfwidth() const;

  bool operator==(const StatAccumulator&) const = default;
};

/// Aggregates for one config cell of a sweep grid: a StatAccumulator per
/// named scalar field plus optional fixed-edge histograms. Memory is bounded
/// by the field/bucket count, never by the trial count.
struct CellAggregate {
  std::uint64_t trials = 0;
  std::map<std::string, StatAccumulator> stats;
  std::map<std::string, HistogramData> histograms;

  void add(const std::string& field, double value) { stats[field].add(value); }
  void observe(const std::string& histogram, double value);
  void merge(const CellAggregate& o);

  bool operator==(const CellAggregate&) const = default;
};

/// Per-cell aggregate table keyed by config-cell label ("attack=full,pad=0").
/// The NDJSON rendering is deterministic: cells sort by label, fields by
/// name, and doubles print with %.17g so every finite value round-trips
/// bit-exactly through parse().
class AggregateTable {
 public:
  CellAggregate& cell(const std::string& label) { return cells_[label]; }
  const CellAggregate* find(const std::string& label) const;
  const std::map<std::string, CellAggregate>& cells() const { return cells_; }
  std::size_t size() const { return cells_.size(); }
  std::uint64_t total_trials() const;

  void merge(const AggregateTable& o);

  /// One JSON object per cell, one line each, sorted by label. Each stat
  /// carries the raw Welford state (count/mean/m2/min/max) plus the derived
  /// stddev and ci95 for human consumption.
  std::string ndjson() const;
  bool write_ndjson(const std::string& path) const;

  bool operator==(const AggregateTable&) const = default;

 private:
  std::map<std::string, CellAggregate> cells_;
};

/// %.17g — the shortest printf format that round-trips every finite double
/// bit-exactly through strtod. Shared by the aggregate/record NDJSON writers
/// so "byte-identical file" and "bit-identical values" are the same claim.
void append_exact_double(std::string& out, double v);

}  // namespace h2sim::obs
