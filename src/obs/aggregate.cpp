#include "obs/aggregate.hpp"

#include <cmath>
#include <cstdio>

namespace h2sim::obs {

void StatAccumulator::merge(const StatAccumulator& o) {
  if (o.count == 0) return;
  if (count == 0) {
    *this = o;
    return;
  }
  const double n_a = static_cast<double>(count);
  const double n_b = static_cast<double>(o.count);
  const double n = n_a + n_b;
  const double delta = o.mean - mean;
  mean += delta * (n_b / n);
  m2 += o.m2 + delta * delta * (n_a * n_b / n);
  count += o.count;
  if (o.min < min) min = o.min;
  if (o.max > max) max = o.max;
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

double StatAccumulator::ci95_halfwidth() const {
  if (count < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count));
}

void CellAggregate::observe(const std::string& histogram, double value) {
  HistogramData& h = histograms[histogram];
  const auto it = std::lower_bound(h.edges.begin(), h.edges.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - h.edges.begin());
  if (h.counts.size() != h.edges.size() + 1) {
    h.counts.assign(h.edges.size() + 1, 0);
  }
  ++h.counts[bucket];
  ++h.count;
  h.sum += value;
}

void CellAggregate::merge(const CellAggregate& o) {
  trials += o.trials;
  for (const auto& [field, acc] : o.stats) stats[field].merge(acc);
  for (const auto& [name, h] : o.histograms) {
    if (!histograms[name].merge(h)) {
      // Mismatched edges cannot be combined; drop the foreign histogram
      // rather than silently corrupting counts. (Callers control edges, so
      // this only fires on schema drift between producers.)
    }
  }
}

const CellAggregate* AggregateTable::find(const std::string& label) const {
  const auto it = cells_.find(label);
  return it == cells_.end() ? nullptr : &it->second;
}

std::uint64_t AggregateTable::total_trials() const {
  std::uint64_t n = 0;
  for (const auto& [label, cell] : cells_) n += cell.trials;
  return n;
}

void AggregateTable::merge(const AggregateTable& o) {
  for (const auto& [label, cell] : o.cells_) cells_[label].merge(cell);
}

void append_exact_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

namespace {

void append_quoted_label(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_stat(std::string& out, const StatAccumulator& a) {
  out += "{\"count\": " + std::to_string(a.count) + ", \"mean\": ";
  append_exact_double(out, a.mean);
  out += ", \"m2\": ";
  append_exact_double(out, a.m2);
  out += ", \"min\": ";
  append_exact_double(out, a.count ? a.min : 0.0);
  out += ", \"max\": ";
  append_exact_double(out, a.count ? a.max : 0.0);
  out += ", \"stddev\": ";
  append_exact_double(out, a.stddev());
  out += ", \"ci95\": ";
  append_exact_double(out, a.ci95_halfwidth());
  out += "}";
}

}  // namespace

std::string AggregateTable::ndjson() const {
  std::string out;
  for (const auto& [label, cell] : cells_) {
    out += "{\"cell\": ";
    append_quoted_label(out, label);
    out += ", \"trials\": " + std::to_string(cell.trials);
    out += ", \"stats\": {";
    bool first = true;
    for (const auto& [field, acc] : cell.stats) {
      if (!first) out += ", ";
      first = false;
      append_quoted_label(out, field);
      out += ": ";
      append_stat(out, acc);
    }
    out += "}";
    if (!cell.histograms.empty()) {
      out += ", \"histograms\": {";
      first = true;
      for (const auto& [name, h] : cell.histograms) {
        if (!first) out += ", ";
        first = false;
        append_quoted_label(out, name);
        out += ": {\"edges\": [";
        for (std::size_t i = 0; i < h.edges.size(); ++i) {
          if (i) out += ", ";
          append_exact_double(out, h.edges[i]);
        }
        out += "], \"counts\": [";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          if (i) out += ", ";
          out += std::to_string(h.counts[i]);
        }
        out += "], \"count\": " + std::to_string(h.count) + ", \"sum\": ";
        append_exact_double(out, h.sum);
        out += "}";
      }
      out += "}";
    }
    out += "}\n";
  }
  return out;
}

bool AggregateTable::write_ndjson(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string body = ndjson();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace h2sim::obs
