#include "obs/profiler.hpp"

#include <chrono>
#include <cstdio>

#include "obs/context.hpp"

namespace h2sim::obs {

std::uint64_t Profiler::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Profiler::reset() {
  frames_.clear();
  path_.clear();
  component_self_ns_.fill(0);
  paths_.clear();
}

void Profiler::enter(Component c) {
  const std::size_t parent_len = path_.size();
  if (!path_.empty()) path_ += ';';
  path_ += to_string(c);
  frames_.push_back(Frame{c, now_ns(), 0, parent_len});
}

void Profiler::exit() {
  if (frames_.empty()) return;  // unbalanced exit; tolerate rather than crash
  const Frame f = frames_.back();
  frames_.pop_back();
  const std::uint64_t end = now_ns();
  const std::uint64_t total = end > f.start_ns ? end - f.start_ns : 0;
  const std::uint64_t self = total > f.child_ns ? total - f.child_ns : 0;

  PathStat& stat = paths_[path_];
  stat.self_ns += self;
  ++stat.calls;
  component_self_ns_[static_cast<std::size_t>(f.comp)] += self;

  if (!frames_.empty()) frames_.back().child_ns += total;
  path_.resize(f.parent_path_len);
}

std::string Profiler::collapsed() const {
  std::string out;
  for (const auto& [path, stat] : paths_) {
    out += path;
    out += ' ';
    out += std::to_string(stat.self_ns);
    out += '\n';
  }
  return out;
}

std::vector<TraceEvent> Profiler::counter_events(sim::TimePoint t) const {
  std::vector<TraceEvent> events;
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    if (component_self_ns_[i] == 0) continue;
    const Component c = static_cast<Component>(i);
    TraceEvent e;
    e.comp = c;
    e.phase = 'C';
    e.name = std::string("wall_self_us.") + to_string(c);
    e.ts_ns = t.count_nanos();
    e.pid = track::kClient;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"wall_self_us\": %.3f",
                  static_cast<double>(component_self_ns_[i]) / 1000.0);
    e.args = buf;
    events.push_back(std::move(e));
  }
  return events;
}

Profiler& profiler() { return current().profiler; }

bool write_collapsed(const Profiler& prof, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string body = prof.collapsed();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace h2sim::obs
