#include "obs/trace.hpp"

#include <cstdio>

#include "obs/context.hpp"

namespace h2sim::obs {

const char* to_string(Component c) {
  switch (c) {
    case Component::kSim: return "sim";
    case Component::kNet: return "net";
    case Component::kTcp: return "tcp";
    case Component::kTls: return "tls";
    case Component::kH2: return "h2";
    case Component::kWeb: return "web";
    case Component::kAttack: return "attack";
    case Component::kExperiment: return "experiment";
    case Component::kCapture: return "capture";
    case Component::kCount: break;
  }
  return "?";
}

std::optional<Component> component_from_name(std::string_view name) {
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(Component::kCount); ++i) {
    const auto c = static_cast<Component>(i);
    if (name == to_string(c)) return c;
  }
  return std::nullopt;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  append_escaped(out, s);
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Microseconds with nanosecond fraction, the unit Chrome trace expects.
void append_micros(std::string& out, std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

}  // namespace

void TraceArgs::key(std::string_view k) {
  if (!s_.empty()) s_ += ", ";
  append_quoted(s_, k);
  s_ += ": ";
}

TraceArgs& TraceArgs::add(std::string_view k, std::int64_t v) {
  key(k);
  s_ += std::to_string(v);
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view k, std::uint64_t v) {
  key(k);
  s_ += std::to_string(v);
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view k, double v) {
  key(k);
  append_double(s_, v);
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view k, std::string_view v) {
  key(k);
  append_quoted(s_, v);
  return *this;
}

Tracer& Tracer::instance() {
  detail::assert_singleton_thread("obs::Tracer::instance()");
  return default_context().tracer;
}

void Tracer::instant(Component c, std::string name, sim::TimePoint t,
                     std::uint32_t pid, std::uint64_t tid, std::string args) {
  if (!enabled(c)) return;
  events_.push_back({c, 'i', std::move(name), t.count_nanos(), 0, pid, tid,
                     std::move(args)});
}

void Tracer::complete(Component c, std::string name, sim::TimePoint start,
                      sim::TimePoint end, std::uint32_t pid, std::uint64_t tid,
                      std::string args) {
  if (!enabled(c)) return;
  events_.push_back({c, 'X', std::move(name), start.count_nanos(),
                     (end - start).count_nanos(), pid, tid, std::move(args)});
}

void Tracer::begin(Component c, std::string name, sim::TimePoint t,
                   std::uint32_t pid, std::uint64_t tid, std::string args) {
  if (!enabled(c)) return;
  events_.push_back({c, 'B', std::move(name), t.count_nanos(), 0, pid, tid,
                     std::move(args)});
}

void Tracer::end(Component c, std::string name, sim::TimePoint t,
                 std::uint32_t pid, std::uint64_t tid) {
  if (!enabled(c)) return;
  events_.push_back({c, 'E', std::move(name), t.count_nanos(), 0, pid, tid, {}});
}

void Tracer::counter(Component c, std::string name, sim::TimePoint t,
                     std::uint32_t pid, std::uint64_t tid, double value) {
  if (!enabled(c)) return;
  std::string args;
  append_quoted(args, "value");
  args += ": ";
  append_double(args, value);
  events_.push_back({c, 'C', std::move(name), t.count_nanos(), 0, pid, tid,
                     std::move(args)});
}

namespace {

void append_event(std::string& out, const TraceEvent& e) {
  out += "{\"name\": ";
  append_quoted(out, e.name);
  out += ", \"cat\": ";
  append_quoted(out, to_string(e.comp));
  out += ", \"ph\": \"";
  out += e.phase;
  out += "\", \"ts\": ";
  append_micros(out, e.ts_ns);
  if (e.phase == 'X') {
    out += ", \"dur\": ";
    append_micros(out, e.dur_ns);
  }
  out += ", \"pid\": " + std::to_string(e.pid);
  out += ", \"tid\": " + std::to_string(e.tid);
  if (e.phase == 'i') out += ", \"s\": \"t\"";  // thread-scoped instant
  if (!e.args.empty()) out += ", \"args\": {" + e.args + "}";
  out += "}";
}

void append_process_metadata(std::string& out, std::uint32_t pid,
                             const char* name, bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += "  {\"name\": \"process_name\", \"ph\": \"M\", \"ts\": 0.000, \"pid\": " +
         std::to_string(pid) + ", \"tid\": 0, \"args\": {\"name\": \"" + name +
         "\"}}";
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  append_process_metadata(out, track::kClient, "client", first);
  append_process_metadata(out, track::kServer, "server", first);
  append_process_metadata(out, track::kNetwork, "network", first);
  append_process_metadata(out, track::kAdversary, "adversary", first);
  for (const TraceEvent& e : events) {
    out += ",\n  ";
    append_event(out, e);
  }
  out += "\n]}\n";
  return out;
}

std::string ndjson(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& e : events) {
    append_event(out, e);
    out += '\n';
  }
  return out;
}

namespace {

bool write_file(const std::string& body, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

bool write_chrome_trace(const std::vector<TraceEvent>& events,
                        const std::string& path) {
  return write_file(chrome_trace_json(events), path);
}

bool write_ndjson(const std::vector<TraceEvent>& events, const std::string& path) {
  return write_file(ndjson(events), path);
}

}  // namespace h2sim::obs
