#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace h2sim::obs {

/// Instrumented subsystems. Each gets one bit in the tracer's enable mask so
/// examples can switch layers on independently (e.g. only tcp + attack).
enum class Component : std::uint32_t {
  kSim = 0,
  kNet,
  kTcp,
  kTls,
  kH2,
  kWeb,
  kAttack,
  kExperiment,
  kCapture,
  kCount,
};

const char* to_string(Component c);
std::optional<Component> component_from_name(std::string_view name);

constexpr std::uint32_t component_bit(Component c) {
  return 1u << static_cast<std::uint32_t>(c);
}
constexpr std::uint32_t kAllComponents =
    (1u << static_cast<std::uint32_t>(Component::kCount)) - 1;

/// Trace "process" ids: the timeline groups tracks under the simulated
/// entity they belong to, matching the paper's vantage points.
namespace track {
constexpr std::uint32_t kClient = 1;
constexpr std::uint32_t kServer = 2;
constexpr std::uint32_t kNetwork = 3;
constexpr std::uint32_t kAdversary = 4;
}  // namespace track

/// One structured event on the simulated timeline. `phase` uses the Chrome
/// trace-event vocabulary: 'i' instant, 'X' complete span (with `dur_ns`),
/// 'B'/'E' nested span begin/end, 'C' counter sample.
struct TraceEvent {
  Component comp = Component::kSim;
  char phase = 'i';
  std::string name;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;      // 'X' only
  std::uint32_t pid = 0;        // track:: grouping
  std::uint64_t tid = 0;        // stream id / connection port / 0
  std::string args;             // preformatted JSON object *body*, may be empty
};

/// Incremental builder for the `args` payload: produces the body of a JSON
/// object ("\"k\": v, ...") with proper escaping. Only ever constructed on
/// call sites that already checked `Tracer::enabled`, so disabled tracing
/// pays nothing for argument formatting.
class TraceArgs {
 public:
  TraceArgs& add(std::string_view key, std::int64_t v);
  TraceArgs& add(std::string_view key, std::uint64_t v);
  TraceArgs& add(std::string_view key, std::uint32_t v) {
    return add(key, static_cast<std::uint64_t>(v));
  }
  TraceArgs& add(std::string_view key, int v) {
    return add(key, static_cast<std::int64_t>(v));
  }
  TraceArgs& add(std::string_view key, double v);
  TraceArgs& add(std::string_view key, std::string_view v);
  std::string take() { return std::move(s_); }

 private:
  void key(std::string_view k);
  std::string s_;
};

/// Event/span tracer driven by simulated time. Disabled (empty mask) by
/// default: the fast path of every record call is a single mask test, so
/// per-packet instrumentation in tcp/net costs one predictable branch when
/// off. Events accumulate in memory (a trial is bounded) and are exported as
/// NDJSON or Chrome trace-event JSON.
///
/// Like MetricsRegistry, a Tracer is single-threaded state owned by one
/// trial's `obs::Context`; components reach it through `obs::tracer()`.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Legacy accessor for the process-default tracer
  /// (`obs::default_context().tracer`). Single-thread-only; see
  /// MetricsRegistry::instance().
  static Tracer& instance();

  bool enabled(Component c) const { return (mask_ & component_bit(c)) != 0; }
  std::uint32_t mask() const { return mask_; }
  void set_mask(std::uint32_t mask) { mask_ = mask; }
  void enable(Component c) { mask_ |= component_bit(c); }
  void disable(Component c) { mask_ &= ~component_bit(c); }
  void enable_all() { mask_ = kAllComponents; }
  void disable_all() { mask_ = 0; }

  /// All record calls are no-ops for disabled components, so callers only
  /// need an explicit enabled() check when argument formatting is costly.
  void instant(Component c, std::string name, sim::TimePoint t,
               std::uint32_t pid, std::uint64_t tid, std::string args = {});
  void complete(Component c, std::string name, sim::TimePoint start,
                sim::TimePoint end, std::uint32_t pid, std::uint64_t tid,
                std::string args = {});
  void begin(Component c, std::string name, sim::TimePoint t,
             std::uint32_t pid, std::uint64_t tid, std::string args = {});
  void end(Component c, std::string name, sim::TimePoint t,
           std::uint32_t pid, std::uint64_t tid);
  void counter(Component c, std::string name, sim::TimePoint t,
               std::uint32_t pid, std::uint64_t tid, double value);

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::uint32_t mask_ = 0;
  std::vector<TraceEvent> events_;
};

/// Chrome trace-event JSON (the "JSON Array Format" object wrapper), loadable
/// in Perfetto / chrome://tracing. Timestamps are microseconds of simulated
/// time. Process-name metadata rows label the client/server/network/adversary
/// tracks.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);
/// One JSON object per line; mechanical to consume from pandas/jq.
std::string ndjson(const std::vector<TraceEvent>& events);

bool write_chrome_trace(const std::vector<TraceEvent>& events,
                        const std::string& path);
bool write_ndjson(const std::vector<TraceEvent>& events, const std::string& path);

}  // namespace h2sim::obs
