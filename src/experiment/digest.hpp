#pragma once

#include <cstdint>
#include <string>

#include "experiment/harness.hpp"

namespace h2sim::experiment {

/// Order-sensitive FNV-1a digest of every *protocol-visible* TrialResult
/// field: outcomes, predictions, counters that describe what happened on the
/// wire. Deliberately excluded are the perf-accounting fields
/// (sim_events_executed, sim_hot_path_allocs) whose values depend on how the
/// simulator schedules work internally, not on the simulated wire — an
/// optimisation that preserves wire behaviour must keep this digest stable
/// even when it reshapes the event schedule.
///
/// Doubles are hashed by bit pattern, so the digest detects any numeric
/// drift, not just drift past a tolerance.
std::uint64_t result_digest(const TrialResult& r);

/// "label seed 0123456789abcdef" — the line format of the committed golden
/// file (tests/golden/trial_digests.txt).
std::string digest_line(const std::string& label, std::uint64_t seed,
                        const TrialResult& r);

/// One cell of the behavioral-golden matrix: a named scenario and the seeds
/// it is digested under.
struct DigestScenario {
  std::string label;
  TrialConfig config;  // seed field is overwritten per run
  std::vector<std::uint64_t> seeds;
};

/// The fixed scenario matrix behind tests/golden/trial_digests.txt: 32 seeds
/// of the undisturbed page load plus attacked / single-target / defended
/// variants. Shared by the h2sim-trialdigest tool (which regenerates the
/// golden) and the determinism test (which checks against it).
std::vector<DigestScenario> behavior_digest_matrix();

}  // namespace h2sim::experiment
