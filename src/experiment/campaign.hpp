#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "experiment/harness.hpp"
#include "experiment/sink.hpp"
#include "obs/aggregate.hpp"

namespace h2sim::experiment {

/// One config cell of a campaign grid: a label ("attack=full,pad=256") and
/// the seed-independent TrialConfig it instantiates per seed.
struct CampaignCell {
  std::string label;
  TrialConfig base;
};

/// Campaign manifest: the durable index of a (possibly interrupted) run.
/// Lives at <out_dir>/manifest.json and is replaced atomically (write tmp,
/// rename), so a SIGKILL at any instant leaves either the old or the new
/// manifest — never a torn one. Shard files not listed here are ignored on
/// resume (their wave reruns); listed shards must match their recorded
/// SHA256 or resume refuses to proceed.
struct CampaignManifest {
  std::string config_digest;
  std::uint64_t seed_base = 0;
  std::uint64_t trials_per_cell = 0;
  std::uint64_t wave_seeds = 0;
  std::vector<std::string> cells;
  struct Shard {
    std::string file;  // relative to out_dir, "shard-00012.ndjson"
    std::uint64_t rows = 0;
    std::string sha256;
  };
  std::vector<Shard> shards;  // one per completed wave, in wave order
  /// Informational only — recomputed from the records on resume.
  std::vector<std::string> stopped_cells;
  bool complete = false;

  std::string json() const;
  static std::optional<CampaignManifest> parse(const std::string& text);
};

/// Periodic live-telemetry snapshot (see CampaignOptions::on_report).
struct CampaignReport {
  std::uint64_t trials_done = 0;    // applied to the aggregate, all sessions
  std::uint64_t trials_target = 0;  // shrinks when cells stop early
  double elapsed_seconds = 0.0;     // this session
  double trials_per_sec = 0.0;      // recent completion rate, this session
  double eta_seconds = 0.0;
  std::uint64_t wave = 0;
  /// Per-cell 95% CI half-width of the stop field (label, halfwidth, trials,
  /// stopped) at the last wave boundary.
  struct CellStatus {
    std::string label;
    std::uint64_t trials = 0;
    double ci95 = 0.0;
    bool stopped = false;
  };
  std::vector<CellStatus> cell_status;
};

struct CampaignOptions {
  std::vector<CampaignCell> cells;
  std::uint64_t seed_base = 1;
  std::uint64_t trials_per_cell = 32;

  /// Seeds per cell per wave — the checkpoint/spill granularity: each wave's
  /// records form one NDJSON shard, and kill+resume replays whole shards.
  std::uint64_t wave_seeds = 32;

  int jobs = 0;                 // RunOptions::jobs semantics
  std::string out_dir;          // required; created if missing
  bool resume = false;          // continue from <out_dir>/manifest.json
  bool profile = false;         // enable obs::Profiler per trial; merged
                                // collapsed stacks land in profile.folded

  /// Live telemetry: minimum seconds between reports (0 = wave boundaries
  /// only when on_report is set).
  double report_interval_seconds = 0.0;
  std::function<void(const CampaignReport&)> on_report;

  /// CI-based early stop: when > 0, a cell stops scheduling new waves once
  /// its `ci_stop_field` 95% CI half-width is <= this after at least
  /// `ci_stop_min_trials` trials. Decisions are taken only at wave
  /// boundaries from the canonical aggregate table, so they are a pure
  /// function of the records — an interrupted+resumed campaign stops the
  /// same cells at the same waves as an uninterrupted one.
  double ci_stop_halfwidth = 0.0;
  std::string ci_stop_field = "page_load_seconds";
  std::uint64_t ci_stop_min_trials = 64;

  /// Test knob: end the session (manifest left resumable) after at most
  /// this many freshly run trials. 0 = unlimited.
  std::uint64_t max_trials_this_run = 0;
};

struct CampaignOutcome {
  bool ok = false;
  std::string error;             // set when !ok
  bool complete = false;         // all cells done or stopped
  std::uint64_t trials_run = 0;  // fresh this session
  std::uint64_t trials_total = 0;  // applied to aggregates, all sessions
  obs::AggregateTable aggregates;
  std::string aggregates_path;  // <out_dir>/aggregates.ndjson
  std::string manifest_path;    // <out_dir>/manifest.json
  /// Peak resident set (VmHWM) in kB at the end of the run; 0 where
  /// /proc/self/status is unavailable.
  long peak_rss_kb = 0;
};

/// Runs (or resumes) a campaign: a trials_per_cell x cells grid executed in
/// waves of `wave_seeds` seeds per active cell.
///
/// Determinism / resume equivalence: trial `t` of cell `c` always runs with
/// seed `seed_base + c * 1'000'003 + t` and global index
/// `t * cells.size() + c`. A wave's records are reduced into the canonical
/// per-cell aggregate in ascending global-index order and spilled — in that
/// same order — as one NDJSON shard (doubles as %.17g, so the file is a
/// lossless encoding of the reduction's inputs). Early-stop decisions read
/// only the canonical table at wave boundaries. Resume replays the
/// manifest's shards wave by wave (verifying SHA256s), re-deriving the same
/// table and the same stop decisions the interrupted run made, then keeps
/// running — so the final aggregates.ndjson is byte-identical to an
/// uninterrupted run's, which the campaign CI job asserts with `cmp`.
///
/// Memory is bounded by (cells x wave_seeds) in-flight records plus the
/// per-cell accumulators — never by trials_per_cell.
CampaignOutcome run_campaign(const CampaignOptions& opts);

/// VmHWM in kB from /proc/self/status; 0 when unavailable.
long peak_rss_kb();

}  // namespace h2sim::experiment
