#include "experiment/campaign.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

#include "experiment/runner.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "obs/sha256.hpp"

namespace h2sim::experiment {

namespace {

constexpr std::uint64_t kSeedCellStride = 1'000'003;

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

bool read_file(const std::string& path, std::string& out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[1 << 16];
  std::size_t n;
  out.clear();
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

/// Durability discipline for everything the manifest references: write the
/// full content to a sibling .tmp and rename over the target, so a SIGKILL
/// at any instant leaves either the previous file or the new one.
bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  if (std::fclose(f) != 0 || !wrote) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool mkdir_p(const std::string& dir) {
  if (dir.empty()) return false;
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') continue;
    partial = dir.substr(0, i == dir.size() ? i : i + 1);
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) return false;
  }
  return true;
}

std::string shard_name(std::uint64_t wave) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%05llu.ndjson",
                static_cast<unsigned long long>(wave));
  return buf;
}

/// Everything a resume must agree on to replay the interrupted run's
/// decisions: the grid shape, seed layout, and the early-stop policy (stop
/// decisions depend on it). Cell labels stand in for the full TrialConfig —
/// the driver derives configs from labels, so identical labels with
/// different configs is a caller bug the digest cannot catch.
std::string config_digest(const CampaignOptions& o) {
  std::string s = "campaign-v1|";
  s += std::to_string(o.seed_base) + "|";
  s += std::to_string(o.trials_per_cell) + "|";
  s += std::to_string(o.wave_seeds) + "|";
  obs::append_exact_double(s, o.ci_stop_halfwidth);
  s += "|" + o.ci_stop_field + "|" + std::to_string(o.ci_stop_min_trials);
  for (const CampaignCell& c : o.cells) s += "|" + c.label;
  return obs::sha256_hex(s);
}

/// Per-wave streaming sink: one preallocated slot per config position (the
/// runner invokes consume() concurrently but never twice for one index), so
/// no lock is needed for the records; the profiler merge has its own.
class WaveSink : public ResultSink {
 public:
  WaveSink(std::vector<TrialRecord>& slots,
           const std::vector<std::uint64_t>& global_index,
           const std::vector<const std::string*>& labels, bool profile,
           std::map<std::string, std::uint64_t>* folded)
      : slots_(slots),
        global_index_(global_index),
        labels_(labels),
        profile_(profile),
        folded_(folded) {}

  void consume(std::size_t index, const TrialConfig& cfg,
               const TrialResult& result, const obs::Context& ctx) override {
    slots_[index] =
        make_trial_record(global_index_[index], cfg, *labels_[index], result);
    if (profile_ && folded_) {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [path, stat] : ctx.profiler.paths()) {
        (*folded_)[path] += stat.self_ns;
      }
    }
  }

 private:
  std::vector<TrialRecord>& slots_;
  const std::vector<std::uint64_t>& global_index_;
  const std::vector<const std::string*>& labels_;
  bool profile_;
  std::map<std::string, std::uint64_t>* folded_;
  std::mutex mu_;
};

}  // namespace

long peak_rss_kb() {
  std::string status;
  if (!read_file("/proc/self/status", status)) return 0;
  const std::size_t pos = status.find("VmHWM:");
  if (pos == std::string::npos) return 0;
  return std::atol(status.c_str() + pos + 6);
}

std::string CampaignManifest::json() const {
  std::string s = "{\n";
  s += "  \"config_digest\": " + quoted(config_digest) + ",\n";
  s += "  \"seed_base\": " + std::to_string(seed_base) + ",\n";
  s += "  \"trials_per_cell\": " + std::to_string(trials_per_cell) + ",\n";
  s += "  \"wave_seeds\": " + std::to_string(wave_seeds) + ",\n";
  s += "  \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) s += ", ";
    s += quoted(cells[i]);
  }
  s += "],\n  \"shards\": [";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    s += i ? ",\n    " : "\n    ";
    s += "{\"file\": " + quoted(shards[i].file);
    s += ", \"rows\": " + std::to_string(shards[i].rows);
    s += ", \"sha256\": " + quoted(shards[i].sha256) + "}";
  }
  s += shards.empty() ? "],\n" : "\n  ],\n";
  s += "  \"stopped_cells\": [";
  for (std::size_t i = 0; i < stopped_cells.size(); ++i) {
    if (i) s += ", ";
    s += quoted(stopped_cells[i]);
  }
  s += "],\n";
  s += std::string("  \"complete\": ") + (complete ? "true" : "false") + "\n}\n";
  return s;
}

std::optional<CampaignManifest> CampaignManifest::parse(const std::string& text) {
  const auto doc = obs::json::parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const auto* digest = doc->find("config_digest");
  const auto* seed_base = doc->find("seed_base");
  const auto* tpc = doc->find("trials_per_cell");
  const auto* wave_seeds = doc->find("wave_seeds");
  const auto* cells = doc->find("cells");
  const auto* shards = doc->find("shards");
  const auto* complete = doc->find("complete");
  if (!digest || !digest->is_string() || !seed_base || !seed_base->is_number() ||
      !tpc || !tpc->is_number() || !wave_seeds || !wave_seeds->is_number() ||
      !cells || !cells->is_array() || !shards || !shards->is_array() ||
      !complete || complete->kind != obs::json::Value::Kind::kBool) {
    return std::nullopt;
  }
  CampaignManifest m;
  m.config_digest = digest->string;
  m.seed_base = static_cast<std::uint64_t>(seed_base->number);
  m.trials_per_cell = static_cast<std::uint64_t>(tpc->number);
  m.wave_seeds = static_cast<std::uint64_t>(wave_seeds->number);
  for (const auto& c : cells->array) {
    if (!c.is_string()) return std::nullopt;
    m.cells.push_back(c.string);
  }
  for (const auto& sh : shards->array) {
    const auto* file = sh.find("file");
    const auto* rows = sh.find("rows");
    const auto* sha = sh.find("sha256");
    if (!file || !file->is_string() || !rows || !rows->is_number() || !sha ||
        !sha->is_string()) {
      return std::nullopt;
    }
    m.shards.push_back(Shard{file->string,
                             static_cast<std::uint64_t>(rows->number),
                             sha->string});
  }
  if (const auto* stopped = doc->find("stopped_cells");
      stopped && stopped->is_array()) {
    for (const auto& c : stopped->array) {
      if (c.is_string()) m.stopped_cells.push_back(c.string);
    }
  }
  m.complete = complete->boolean;
  return m;
}

CampaignOutcome run_campaign(const CampaignOptions& opts) {
  CampaignOutcome out;
  const std::size_t num_cells = opts.cells.size();
  if (num_cells == 0 || opts.out_dir.empty() || opts.wave_seeds == 0 ||
      opts.trials_per_cell == 0) {
    out.error = "campaign: need cells, out_dir, wave_seeds > 0, trials > 0";
    return out;
  }
  if (!mkdir_p(opts.out_dir)) {
    out.error = "campaign: cannot create out_dir " + opts.out_dir;
    return out;
  }
  out.manifest_path = opts.out_dir + "/manifest.json";
  out.aggregates_path = opts.out_dir + "/aggregates.ndjson";

  const std::string digest = config_digest(opts);
  CampaignManifest manifest;
  manifest.config_digest = digest;
  manifest.seed_base = opts.seed_base;
  manifest.trials_per_cell = opts.trials_per_cell;
  manifest.wave_seeds = opts.wave_seeds;
  for (const CampaignCell& c : opts.cells) manifest.cells.push_back(c.label);

  obs::AggregateTable table;
  std::vector<bool> stopped(num_cells, false);

  // Stop policy, shared by replay and fresh waves so both derive identical
  // decisions from identical tables.
  auto evaluate_stops = [&] {
    if (opts.ci_stop_halfwidth <= 0) return;
    for (std::size_t c = 0; c < num_cells; ++c) {
      if (stopped[c]) continue;
      const obs::CellAggregate* cell = table.find(opts.cells[c].label);
      if (!cell || cell->trials < opts.ci_stop_min_trials) continue;
      const auto it = cell->stats.find(opts.ci_stop_field);
      if (it == cell->stats.end()) continue;
      if (it->second.ci95_halfwidth() <= opts.ci_stop_halfwidth) {
        stopped[c] = true;
      }
    }
  };

  // ---- Resume: replay the manifest's shards wave by wave. ----
  std::uint64_t wave = 0;
  if (opts.resume) {
    std::string text;
    if (!read_file(out.manifest_path, text)) {
      out.error = "campaign: --resume but no readable " + out.manifest_path;
      return out;
    }
    const auto loaded = CampaignManifest::parse(text);
    if (!loaded) {
      out.error = "campaign: malformed manifest " + out.manifest_path;
      return out;
    }
    if (loaded->config_digest != digest) {
      out.error =
          "campaign: manifest config digest mismatch (different grid/seed/"
          "stop options); refusing to mix runs";
      return out;
    }
    manifest.shards = loaded->shards;
    for (const CampaignManifest::Shard& shard : manifest.shards) {
      std::string content;
      const std::string path = opts.out_dir + "/" + shard.file;
      if (!read_file(path, content)) {
        out.error = "campaign: missing shard " + path;
        return out;
      }
      if (obs::sha256_hex(content) != shard.sha256) {
        out.error = "campaign: shard checksum mismatch: " + path;
        return out;
      }
      // Apply rows in file order — the writer spilled them in canonical
      // ascending-index order, so replay reduction == original reduction.
      std::uint64_t rows = 0;
      std::size_t start = 0;
      while (start < content.size()) {
        std::size_t end = content.find('\n', start);
        if (end == std::string::npos) end = content.size();
        if (end > start) {
          const auto rec = parse_trial_record(content.substr(start, end - start));
          if (!rec) {
            out.error = "campaign: malformed record in " + path;
            return out;
          }
          apply_trial_record(table, *rec);
          ++rows;
        }
        start = end + 1;
      }
      if (rows != shard.rows) {
        out.error = "campaign: shard row count mismatch: " + path;
        return out;
      }
      evaluate_stops();  // wave boundary, same as the original run
      ++wave;
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  auto elapsed = [&wall_start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start)
        .count();
  };

  auto remaining_target = [&] {
    std::uint64_t target = table.total_trials();
    const std::uint64_t first = wave * opts.wave_seeds;
    for (std::size_t c = 0; c < num_cells; ++c) {
      if (stopped[c]) continue;
      if (first < opts.trials_per_cell) target += opts.trials_per_cell - first;
    }
    return target;
  };

  auto cell_status = [&] {
    std::vector<CampaignReport::CellStatus> status;
    status.reserve(num_cells);
    for (std::size_t c = 0; c < num_cells; ++c) {
      CampaignReport::CellStatus s;
      s.label = opts.cells[c].label;
      s.stopped = stopped[c];
      if (const obs::CellAggregate* cell = table.find(s.label)) {
        s.trials = cell->trials;
        const auto it = cell->stats.find(opts.ci_stop_field);
        if (it != cell->stats.end()) s.ci95 = it->second.ci95_halfwidth();
      }
      status.push_back(std::move(s));
    }
    return status;
  };

  auto make_report = [&](std::uint64_t extra_done, double rate) {
    CampaignReport r;
    r.trials_done = table.total_trials() + extra_done;
    r.trials_target = remaining_target();
    r.elapsed_seconds = elapsed();
    r.trials_per_sec = rate;
    r.eta_seconds =
        rate > 0 && r.trials_target > r.trials_done
            ? static_cast<double>(r.trials_target - r.trials_done) / rate
            : 0.0;
    r.wave = wave;
    r.cell_status = cell_status();
    return r;
  };

  std::map<std::string, std::uint64_t> folded;  // merged collapsed stacks

  // ---- Wave loop. ----
  bool session_truncated = false;
  for (;;) {
    const std::uint64_t t_first = wave * opts.wave_seeds;
    const std::uint64_t t_last =
        std::min(opts.trials_per_cell, t_first + opts.wave_seeds);
    std::vector<std::size_t> active;
    if (t_first < opts.trials_per_cell) {
      for (std::size_t c = 0; c < num_cells; ++c) {
        if (!stopped[c]) active.push_back(c);
      }
    }
    if (active.empty()) break;  // complete

    const std::size_t wave_trials = active.size() * (t_last - t_first);
    if (opts.max_trials_this_run > 0 &&
        out.trials_run + wave_trials > opts.max_trials_this_run) {
      session_truncated = true;
      break;
    }

    // Build the wave grid in ascending global-index order (t-major, then
    // cell), which is also the order records are reduced and spilled in.
    std::vector<TrialConfig> cfgs;
    std::vector<std::uint64_t> global_index;
    std::vector<const std::string*> labels;
    cfgs.reserve(wave_trials);
    global_index.reserve(wave_trials);
    labels.reserve(wave_trials);
    for (std::uint64_t t = t_first; t < t_last; ++t) {
      for (const std::size_t c : active) {
        TrialConfig cfg = opts.cells[c].base;
        cfg.seed = opts.seed_base + c * kSeedCellStride + t;
        cfgs.push_back(std::move(cfg));
        global_index.push_back(t * num_cells + c);
        labels.push_back(&opts.cells[c].label);
      }
    }

    std::vector<TrialRecord> records(cfgs.size());
    WaveSink sink(records, global_index, labels, opts.profile,
                  opts.profile ? &folded : nullptr);
    RunOptions ropts;
    ropts.jobs = opts.jobs;
    ropts.collect_results = false;
    ropts.sink = &sink;
    ropts.profile = opts.profile;
    if (opts.on_report && opts.report_interval_seconds > 0) {
      ropts.progress_min_interval_seconds = opts.report_interval_seconds;
      ropts.on_progress = [&](const Progress& p) {
        opts.on_report(make_report(p.done, p.trials_per_sec));
      };
    }
    run_trials(cfgs, ropts);
    out.trials_run += records.size();

    // Canonical reduction + spill: ascending global index. The grid was
    // built in that order already; sorting makes the invariant explicit and
    // cheap (records are ~sorted).
    std::sort(records.begin(), records.end(),
              [](const TrialRecord& a, const TrialRecord& b) {
                return a.index < b.index;
              });
    std::string shard;
    for (const TrialRecord& rec : records) {
      apply_trial_record(table, rec);
      shard += trial_record_ndjson(rec);
      shard += '\n';
    }
    const std::string file = shard_name(wave);
    if (!write_file_atomic(opts.out_dir + "/" + file, shard)) {
      out.error = "campaign: cannot write shard " + file;
      return out;
    }
    manifest.shards.push_back(
        CampaignManifest::Shard{file, records.size(), obs::sha256_hex(shard)});
    ++wave;
    evaluate_stops();
    manifest.stopped_cells.clear();
    for (std::size_t c = 0; c < num_cells; ++c) {
      if (stopped[c]) manifest.stopped_cells.push_back(opts.cells[c].label);
    }
    // Manifest after shard: a kill between the two leaves an unlisted shard
    // file, which a resume simply overwrites by rerunning the wave.
    if (!write_file_atomic(out.manifest_path, manifest.json()) ||
        !write_file_atomic(out.aggregates_path, table.ndjson())) {
      out.error = "campaign: cannot write manifest/aggregates";
      return out;
    }
    if (opts.on_report) {
      const double t = elapsed();
      opts.on_report(make_report(
          0, t > 0 ? static_cast<double>(out.trials_run) / t : 0.0));
    }
  }

  out.complete = !session_truncated;
  manifest.complete = out.complete;
  if (!write_file_atomic(out.manifest_path, manifest.json()) ||
      !write_file_atomic(out.aggregates_path, table.ndjson())) {
    out.error = "campaign: cannot write manifest/aggregates";
    return out;
  }
  if (opts.profile && !folded.empty()) {
    std::string text;
    for (const auto& [path, ns] : folded) {
      text += path + " " + std::to_string(ns) + "\n";
    }
    write_file_atomic(opts.out_dir + "/profile.folded", text);
  }
  out.trials_total = table.total_trials();
  out.aggregates = std::move(table);
  out.peak_rss_kb = peak_rss_kb();
  out.ok = true;
  return out;
}

}  // namespace h2sim::experiment
