#include "experiment/sink.hpp"

#include "obs/json.hpp"

namespace h2sim::experiment {

const std::array<const char*, TrialRecord::kFieldCount>&
TrialRecord::field_names() {
  static const std::array<const char*, kFieldCount> names = {
      "page_complete",      "connection_broken", "success_objects",
      "success_html",       "page_load_seconds", "tcp_retransmits",
      "browser_reissues",   "reset_sweeps",      "adversary_drops",
      "records_observed",   "gets_counted",      "sim_events_executed",
      "packets_forwarded",
  };
  return names;
}

TrialRecord make_trial_record(std::uint64_t index, const TrialConfig& cfg,
                              const std::string& cell, const TrialResult& r) {
  TrialRecord rec;
  rec.index = index;
  rec.seed = cfg.seed;
  rec.cell = cell;
  int successes = 0;
  for (const bool s : r.success) successes += s ? 1 : 0;
  rec.values = {
      r.page_complete ? 1.0 : 0.0,
      r.connection_broken ? 1.0 : 0.0,
      static_cast<double>(successes),
      r.success[0] ? 1.0 : 0.0,
      r.page_load_seconds,
      static_cast<double>(r.tcp_retransmits),
      static_cast<double>(r.browser_reissues),
      static_cast<double>(r.reset_sweeps),
      static_cast<double>(r.adversary_drops),
      static_cast<double>(r.records_observed),
      static_cast<double>(r.gets_counted),
      static_cast<double>(r.sim_events_executed),
      static_cast<double>(r.packets_forwarded),
  };
  return rec;
}

std::string trial_record_ndjson(const TrialRecord& rec) {
  std::string out = "{\"index\": " + std::to_string(rec.index);
  out += ", \"seed\": " + std::to_string(rec.seed);
  out += ", \"cell\": \"";
  for (const char c : rec.cell) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\", \"v\": {";
  const auto& names = TrialRecord::field_names();
  for (std::size_t i = 0; i < TrialRecord::kFieldCount; ++i) {
    if (i) out += ", ";
    out += '"';
    out += names[i];
    out += "\": ";
    obs::append_exact_double(out, rec.values[i]);
  }
  out += "}}";
  return out;
}

std::optional<TrialRecord> parse_trial_record(const std::string& line) {
  const auto doc = obs::json::parse(line);
  if (!doc || !doc->is_object()) return std::nullopt;
  const obs::json::Value* index = doc->find("index");
  const obs::json::Value* seed = doc->find("seed");
  const obs::json::Value* cell = doc->find("cell");
  const obs::json::Value* v = doc->find("v");
  if (!index || !index->is_number() || !seed || !seed->is_number() || !cell ||
      !cell->is_string() || !v || !v->is_object()) {
    return std::nullopt;
  }
  TrialRecord rec;
  rec.index = static_cast<std::uint64_t>(index->number);
  rec.seed = static_cast<std::uint64_t>(seed->number);
  rec.cell = cell->string;
  const auto& names = TrialRecord::field_names();
  if (v->object.size() != TrialRecord::kFieldCount) return std::nullopt;
  for (std::size_t i = 0; i < TrialRecord::kFieldCount; ++i) {
    const obs::json::Value* field = v->find(names[i]);
    if (!field || !field->is_number()) return std::nullopt;
    rec.values[i] = field->number;
  }
  return rec;
}

void apply_trial_record(obs::AggregateTable& table, const TrialRecord& rec) {
  obs::CellAggregate& cell = table.cell(rec.cell);
  ++cell.trials;
  const auto& names = TrialRecord::field_names();
  for (std::size_t i = 0; i < TrialRecord::kFieldCount; ++i) {
    cell.stats[names[i]].add(rec.values[i]);
  }
}

AggregatingSink::AggregatingSink(Labeler labeler, std::uint64_t base_index)
    : labeler_(std::move(labeler)),
      base_index_(base_index),
      next_to_apply_(base_index) {}

void AggregatingSink::consume(std::size_t index, const TrialConfig& cfg,
                              const TrialResult& result,
                              const obs::Context& /*ctx*/) {
  const std::string cell = labeler_ ? labeler_(index, cfg) : std::string();
  TrialRecord rec =
      make_trial_record(base_index_ + index, cfg, cell, result);
  std::lock_guard<std::mutex> lock(mu_);
  pending_.emplace(rec.index, std::move(rec));
  // Drain the reorder buffer: apply (and spill) strictly in ascending global
  // index order so the reduction is canonical whatever the completion order.
  for (auto it = pending_.find(next_to_apply_); it != pending_.end();
       it = pending_.find(next_to_apply_)) {
    apply_trial_record(table_, it->second);
    ++applied_;
    if (on_record) on_record(it->second);
    pending_.erase(it);
    ++next_to_apply_;
  }
}

obs::AggregateTable AggregatingSink::table() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_;
}

std::uint64_t AggregatingSink::applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_;
}

}  // namespace h2sim::experiment
