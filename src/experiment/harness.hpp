#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/dom.hpp"
#include "analysis/predictor.hpp"
#include "analysis/trace.hpp"
#include "attack/pipeline.hpp"
#include "h2/connection.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "web/browser.hpp"
#include "web/server_app.hpp"
#include "web/website.hpp"

namespace h2sim::experiment {

/// Everything one Monte-Carlo trial needs. All defaults model the paper's
/// Section V setup: a 1 Gbps lab gateway in front of an Internet path to the
/// isidewith server, Firefox-like client, multiplexing HTTP/2 server.
struct TrialConfig {
  std::uint64_t seed = 1;

  net::Path::Config path = default_path();
  h2::ConnectionConfig server_h2 = default_server_h2();
  h2::ConnectionConfig client_h2 = default_client_h2();
  web::ServerAppConfig server_app;
  web::BrowserConfig browser;
  web::IsidewithConfig site;
  attack::AttackConfig attack = default_attack_off();
  sim::Duration sim_limit = sim::Duration::seconds(120);

  /// Server/site-side defenses (see defense/defenses.hpp). The adversary's
  /// size database is built from the *transformed* site — the attacker knows
  /// the public site, defenses win only by making sizes ambiguous.
  struct DefenseOptions {
    std::size_t pad_quantum = 0;  // 0 = off
    int dummy_count = 0;          // 0 = off
  };
  DefenseOptions defense;

  /// Wire capture (src/capture): when `path` is non-empty the trial exports
  /// every packet at the enabled vantage points as a PCAPNG file. Capture is
  /// observation-only — the TrialResult is identical with it on or off,
  /// except for the capture_* counters.
  struct CaptureOptions {
    std::string path;  // empty = capture off
    bool client_vantage = false;
    bool gateway_vantage = true;
    bool server_vantage = false;
  };
  CaptureOptions capture;

  /// Diagnostic hook: invoked with the ground-truth wire log after the run.
  std::function<void(const analysis::WireLog&)> wire_log_inspector;
  /// Diagnostic hook: invoked with the adversary's observed record trace.
  std::function<void(const analysis::PacketTrace&)> trace_inspector;
  /// Diagnostic hook: invoked with the trial's final metrics snapshot (the
  /// registry is reset at trial entry, so the snapshot covers exactly this
  /// trial).
  std::function<void(const obs::MetricsSnapshot&)> metrics_inspector;

  /// Custom website builder: when set, replaces the default isidewith site.
  /// The emblem/html evaluation fields of TrialResult are only meaningful
  /// when the custom site defines `emblem_paths`/`html_path` analogously;
  /// otherwise consume results through the inspectors above.
  std::function<web::Website()> site_builder;

  /// Sweep-level shared site (see experiment::ScenarioTemplate): a fully
  /// built, defense-transformed, content-materialized site reused read-only
  /// by every trial of a sweep. Honored only when the site really is
  /// seed-independent — no site_builder and no dummy injection — otherwise
  /// the trial builds its own site exactly as before. The site a trial sees
  /// is byte-identical either way, so results do not depend on whether a
  /// sweep shared it.
  std::shared_ptr<const web::Website> prebuilt_site;

  static net::Path::Config default_path();
  static h2::ConnectionConfig default_server_h2();
  static h2::ConnectionConfig default_client_h2();
  static attack::AttackConfig default_attack_off();
};

/// The paper's staged Section-V attack configuration.
attack::AttackConfig full_attack_config();

/// Single-target mode: clean GET counting (no phase-1 spacing), trigger at
/// the GET carrying the target object, then disrupt + serialize.
attack::AttackConfig single_target_attack_config(int target_get_index);

/// Jitter-only adversary (Table I).
attack::AttackConfig jitter_only_config(sim::Duration spacing);

/// Jitter + whole-run bandwidth limit (Figure 5).
attack::AttackConfig jitter_throttle_config(sim::Duration spacing, double bps);

struct ObjectOutcome {
  std::string label;
  double primary_dom = 1.0;        // DoM of the original transmission copy
  double min_dom = 1.0;            // best copy (reissues included)
  bool primary_serialized = false;
  bool any_copy_serialized = false;
  int copies = 0;
  bool size_identified = false;    // boundary detector + size DB found it
  bool delivered = false;          // browser completed the object

  bool operator==(const ObjectOutcome&) const = default;
};

struct TrialResult {
  bool page_complete = false;
  bool connection_broken = false;
  std::string failure_reason;

  /// Outcomes for the 9 objects of interest: index 0 = the result HTML,
  /// 1..8 = the emblem at burst position 1..8.
  std::vector<ObjectOutcome> interest;

  std::array<int, 8> truth;                 // party id at each position
  std::vector<std::string> predicted;       // predicted party label by position
  /// success[i]: paper's criterion for object i (DoM driven to 0 and the
  /// object identified from the encrypted trace; for emblems, identified at
  /// the correct ranking position).
  std::array<bool, 9> success{};

  std::uint64_t tcp_retransmits = 0;   // client + server, fast + RTO
  std::uint64_t tcp_fast_retransmits = 0;
  std::uint64_t tcp_rto_retransmits = 0;
  int browser_reissues = 0;
  int reset_sweeps = 0;
  std::uint64_t adversary_drops = 0;
  std::uint64_t requests_spaced = 0;
  std::uint64_t link_drops = 0;
  std::size_t records_observed = 0;
  int gets_counted = 0;
  double page_load_seconds = 0.0;

  /// Wire-capture accounting (0 when capture is off): packets exported and
  /// pcapng bytes produced. Pure functions of the config like every other
  /// field, so captures participate in the determinism comparison.
  std::uint64_t capture_packets = 0;
  std::uint64_t capture_bytes_written = 0;

  /// Perf accounting for the benchmark-regression gate: total events the
  /// trial's loop executed, packets the middlebox forwarded, and heap
  /// allocations attributable to the simulator hot path (event-slab growth,
  /// oversized callbacks, heap-array growth, payload-pool misses). All three
  /// are pure functions of the config, so they participate in the
  /// determinism comparison like every other field.
  std::uint64_t sim_events_executed = 0;
  std::uint64_t packets_forwarded = 0;
  std::uint64_t sim_hot_path_allocs = 0;

  /// Timing-wheel work counters (see sim::EventLoop::SchedStats): occupancy
  /// bitmap words examined, events cascaded to a lower level, and O(1)
  /// cancels. Deterministic like the other perf fields.
  std::uint64_t sim_sched_slots_scanned = 0;
  std::uint64_t sim_sched_cascades = 0;
  std::uint64_t sim_sched_cancels = 0;

  /// Wire-level retransmission count as a tshark user would measure it:
  /// TCP retransmissions plus duplicate application requests.
  std::uint64_t wire_retransmissions() const {
    return tcp_retransmits + static_cast<std::uint64_t>(browser_reissues);
  }

  /// Field-wise equality; the parallel runner's determinism guarantee is
  /// stated (and tested) in terms of this comparison.
  bool operator==(const TrialResult&) const = default;
};

TrialResult run_trial(const TrialConfig& cfg);

/// Wall-clock nanoseconds the calling thread's most recent run_trial spent
/// constructing the world (everything before the first simulated event).
/// Thread-local and nondeterministic by nature, which is why it lives beside
/// the TrialResult instead of on it; run_trials() aggregates it into the
/// sweep-level experiment.setup_* gauges.
std::uint64_t last_trial_setup_nanos();

/// GET index (1-based, as the monitor counts) of the result HTML and of the
/// j-th emblem (j in 0..7) under clean counting (no reissues before them).
int html_get_index(const web::IsidewithConfig& site);
int emblem_get_index(const web::IsidewithConfig& site, int j);

}  // namespace h2sim::experiment
