#include "experiment/table_printer.hpp"

#include <algorithm>
#include <cstdio>

namespace h2sim::experiment {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TablePrinter::pct(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, v);
  return buf;
}

void TablePrinter::print(const std::string& title) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  if (!title.empty()) std::printf("\n=== %s ===\n", title.c_str());
  auto print_sep = [&] {
    std::printf("+");
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : "";
      std::printf(" %-*s |", static_cast<int>(widths[c]), s.c_str());
    }
    std::printf("\n");
  };
  print_sep();
  print_row(columns_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

}  // namespace h2sim::experiment
