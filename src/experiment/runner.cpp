#include "experiment/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>

#include "experiment/scenario.hpp"
#include "experiment/sink.hpp"

namespace h2sim::experiment {

namespace {

/// Sweep-level site sharing: configs whose site is seed-independent and
/// built from the same recipe get one prebuilt, content-materialized site
/// between them (typically the whole sweep shares a single site). Configs
/// that already carry a prebuilt_site, use a custom builder, or inject
/// per-seed dummies are passed through untouched. Trials behave
/// byte-identically either way; this only moves site construction out of
/// the per-trial loop.
std::vector<TrialConfig> share_prebuilt_sites(std::span<const TrialConfig> cfgs) {
  std::vector<TrialConfig> out(cfgs.begin(), cfgs.end());
  struct Recipe {
    const TrialConfig* exemplar;
    std::shared_ptr<const web::Website> site;
  };
  std::vector<Recipe> recipes;
  for (TrialConfig& cfg : out) {
    if (cfg.prebuilt_site || cfg.site_builder || cfg.defense.dummy_count != 0) {
      continue;
    }
    Recipe* found = nullptr;
    for (Recipe& r : recipes) {
      if (same_site_recipe(*r.exemplar, cfg)) {
        found = &r;
        break;
      }
    }
    if (!found) {
      recipes.push_back({&cfg, prebuild_site(cfg)});
      found = &recipes.back();
    }
    cfg.prebuilt_site = found->site;
  }
  return out;
}

}  // namespace

std::string expand_capture_path(const std::string& pattern, std::size_t index,
                                std::uint64_t seed, std::size_t total) {
  std::string out = pattern;
  bool substituted = false;
  auto replace_all = [&](const std::string& key, const std::string& value) {
    for (std::size_t pos = out.find(key); pos != std::string::npos;
         pos = out.find(key, pos + value.size())) {
      out.replace(pos, key.size(), value);
      substituted = true;
    }
  };
  replace_all("{index}", std::to_string(index));
  replace_all("{seed}", std::to_string(seed));
  if (!substituted && total > 1) {
    const std::size_t slash = out.find_last_of('/');
    const std::size_t dot = out.find_last_of('.');
    const std::string suffix = "_" + std::to_string(index);
    if (dot != std::string::npos && (slash == std::string::npos || dot > slash)) {
      out.insert(dot, suffix);
    } else {
      out += suffix;
    }
  }
  return out;
}

ProgressWindow::ProgressWindow(std::size_t capacity)
    : capacity_(capacity < 2 ? 2 : capacity) {
  ring_.resize(capacity_);
}

void ProgressWindow::sample(double elapsed_seconds, std::size_t done) {
  ring_[head_] = Sample{elapsed_seconds, done};
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

double ProgressWindow::rate() const {
  if (size_ == 0) return 0.0;
  const Sample& newest = ring_[(head_ + capacity_ - 1) % capacity_];
  if (size_ == 1) {
    // Lifetime mean until the window has a baseline.
    return newest.t > 0 ? static_cast<double>(newest.done) / newest.t : 0.0;
  }
  const Sample& oldest = ring_[(head_ + capacity_ - size_) % capacity_];
  const double dt = newest.t - oldest.t;
  if (dt <= 0) {
    return newest.t > 0 ? static_cast<double>(newest.done) / newest.t : 0.0;
  }
  const double dd =
      static_cast<double>(newest.done) - static_cast<double>(oldest.done);
  return dd > 0 ? dd / dt : 0.0;
}

double ProgressWindow::eta_seconds(std::size_t done, std::size_t total) const {
  if (done >= total) return 0.0;
  const double r = rate();
  return r > 0 ? static_cast<double>(total - done) / r : 0.0;
}

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("H2SIM_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

std::vector<TrialResult> run_trials(std::span<const TrialConfig> cfgs,
                                    const RunOptions& opts) {
  const std::size_t total = cfgs.size();
  std::vector<TrialResult> results(opts.collect_results ? total : 0);
  if (total == 0) return results;

  int jobs = resolve_jobs(opts.jobs);
  if (static_cast<std::size_t>(jobs) > total) jobs = static_cast<int>(total);

  const std::vector<TrialConfig> shared = share_prebuilt_sites(cfgs);

  const auto wall_start = std::chrono::steady_clock::now();
  auto elapsed = [&wall_start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start)
        .count();
  };

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::uint64_t> setup_nanos_total{0};
  std::mutex progress_mu;
  ProgressWindow window;  // guarded by progress_mu
  bool final_sent = false;  // guarded by progress_mu
  // Wall seconds (scaled to ns) of the last delivered report; workers test
  // this atomically *before* taking progress_mu, so a rate-limited sweep
  // does not serialize per trial.
  std::atomic<std::int64_t> last_report_ns{-1};

  // Work stealing via a shared atomic index: a worker that lands a short
  // trial immediately claims the next unclaimed one, so long trials never
  // leave siblings idle. Result slots are indexed by config position, which
  // makes output order independent of claim order.
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      // A fresh context per trial: all instrumentation this trial performs —
      // down to per-packet counters in net/tcp — lands in storage no other
      // trial can reach, and every trial starts from an empty registry.
      obs::Context ctx;
      ctx.tracer.set_mask(opts.trace_mask);
      ctx.profiler.set_enabled(opts.profile);
      TrialResult result;
      {
        obs::ScopedContext scope(ctx);
        if (opts.capture_path.empty()) {
          result = run_trial(shared[i]);
        } else {
          TrialConfig cfg = shared[i];
          cfg.capture.path =
              expand_capture_path(opts.capture_path, i, cfg.seed, total);
          result = run_trial(cfg);
        }
      }
      setup_nanos_total.fetch_add(last_trial_setup_nanos(),
                                  std::memory_order_relaxed);
      if (opts.sink) opts.sink->consume(i, shared[i], result, ctx);
      if (opts.context_inspector) opts.context_inspector(i, ctx);
      if (opts.collect_results) results[i] = std::move(result);
      const std::size_t now_done =
          done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (!opts.on_progress) continue;
      const bool is_final = now_done == total;
      const double t = elapsed();
      if (opts.progress_min_interval_seconds > 0 && !is_final) {
        // Cheap pre-mutex gate: claim the report slot by advancing the
        // atomic timestamp; losers (or too-soon reports) skip entirely.
        const std::int64_t now_ns = static_cast<std::int64_t>(t * 1e9);
        const std::int64_t interval_ns = static_cast<std::int64_t>(
            opts.progress_min_interval_seconds * 1e9);
        std::int64_t last = last_report_ns.load(std::memory_order_relaxed);
        if (last >= 0 && now_ns - last < interval_ns) continue;
        if (!last_report_ns.compare_exchange_strong(
                last, now_ns, std::memory_order_relaxed)) {
          continue;
        }
      }
      {
        std::lock_guard<std::mutex> lock(progress_mu);
        // Exactly one final report: the worker that completes the last trial
        // always delivers `done == total`, and (in rate-limited mode, where
        // callers opted out of per-trial reports) nothing after it.
        if (final_sent &&
            (opts.progress_min_interval_seconds > 0 || is_final)) {
          continue;
        }
        window.sample(t, now_done);
        Progress p;
        p.done = now_done;
        p.total = total;
        p.elapsed_seconds = t;
        p.trials_per_sec = window.rate();
        p.eta_seconds = window.eta_seconds(now_done, total);
        if (is_final) final_sent = true;
        opts.on_progress(p);
      }
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Back on the calling thread: record sweep aggregates in the caller's
  // context so dashboards see the sweep even though trial-local metrics
  // died with their contexts.
  const double wall = elapsed();
  auto& reg = obs::metrics();
  reg.counter("experiment.trials_run").add(total);
  reg.gauge("experiment.sweep_wall_seconds").set(wall);
  reg.gauge("experiment.sweep_trials_per_sec")
      .set(wall > 0 ? static_cast<double>(total) / wall : 0.0);
  reg.gauge("experiment.sweep_jobs").set(jobs);
  // Mean per-trial world-construction time (wall clock, summed across
  // workers). With sweep-level site sharing this is the residual setup the
  // templates could not amortize.
  reg.gauge("experiment.setup_seconds_mean")
      .set(static_cast<double>(
               setup_nanos_total.load(std::memory_order_relaxed)) /
           1e9 / static_cast<double>(total));
  return results;
}

}  // namespace h2sim::experiment
