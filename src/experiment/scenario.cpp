#include "experiment/scenario.hpp"

#include <utility>

#include "defense/defenses.hpp"

namespace h2sim::experiment {

ScenarioTemplate::ScenarioTemplate(TrialConfig base) : base_(std::move(base)) {
  if (!base_.prebuilt_site) base_.prebuilt_site = prebuild_site(base_);
}

bool same_site_recipe(const TrialConfig& a, const TrialConfig& b) {
  if (a.site_builder || b.site_builder) return false;
  if (a.defense.dummy_count != 0 || b.defense.dummy_count != 0) return false;
  return a.site.html_size == b.site.html_size &&
         a.site.emblem_sizes == b.site.emblem_sizes &&
         a.site.pre_objects == b.site.pre_objects &&
         a.site.filler_objects == b.site.filler_objects &&
         a.site.head_fillers == b.site.head_fillers &&
         a.defense.pad_quantum == b.defense.pad_quantum;
}

std::shared_ptr<const web::Website> prebuild_site(const TrialConfig& cfg) {
  if (cfg.site_builder || cfg.defense.dummy_count != 0) return nullptr;
  web::Website site = web::make_isidewith_site(cfg.site);
  if (cfg.defense.pad_quantum > 1) {
    site = defense::pad_site(site, cfg.defense.pad_quantum);
  }
  return std::make_shared<const web::Website>(std::move(site));
}

}  // namespace h2sim::experiment
