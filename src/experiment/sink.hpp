#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

#include "experiment/harness.hpp"
#include "obs/aggregate.hpp"
#include "obs/context.hpp"

namespace h2sim::experiment {

/// Streaming consumer for trial outcomes. run_trials() invokes consume() on
/// the worker thread right after trial `index` finishes, while the trial's
/// private obs::Context is still alive — implementations must therefore be
/// thread-safe. With RunOptions::collect_results = false the runner stops
/// materializing the TrialResult vector entirely, so a sink is the only
/// consumer and memory stays bounded whatever the trial count.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void consume(std::size_t index, const TrialConfig& cfg,
                       const TrialResult& result, const obs::Context& ctx) = 0;
};

/// The fixed scalar schema one trial contributes to campaign aggregates —
/// everything needed to rebuild per-cell statistics without the TrialResult.
/// The field list is ordered and closed: NDJSON spill, the manifest digest,
/// and the aggregate reduction all iterate it identically, which is what
/// makes "same records" imply "same aggregates".
struct TrialRecord {
  static constexpr std::size_t kFieldCount = 13;

  std::uint64_t index = 0;  // global trial index within the campaign grid
  std::uint64_t seed = 0;
  std::string cell;  // config-cell label, e.g. "attack=full,pad=0,dummies=0"
  std::array<double, kFieldCount> values{};

  /// Names for values[i], in schema order.
  static const std::array<const char*, kFieldCount>& field_names();

  bool operator==(const TrialRecord&) const = default;
};

/// Projects a finished trial onto the record schema.
TrialRecord make_trial_record(std::uint64_t index, const TrialConfig& cfg,
                              const std::string& cell, const TrialResult& r);

/// One-line NDJSON rendering. Doubles print %.17g, so a re-parsed line is
/// value-identical and a re-serialized record is byte-identical.
std::string trial_record_ndjson(const TrialRecord& rec);
/// Inverse of trial_record_ndjson; nullopt on malformed or schema-foreign
/// lines (unknown/missing fields).
std::optional<TrialRecord> parse_trial_record(const std::string& line);

/// Applies one record to the per-cell aggregate table. The campaign's
/// canonical reduction applies records in ascending `index` order so the
/// float accumulation order — and therefore the serialized aggregate — is
/// identical however the trials were scheduled, interrupted, or resumed.
void apply_trial_record(obs::AggregateTable& table, const TrialRecord& rec);

/// ResultSink that reduces trials into an AggregateTable in canonical
/// (ascending-index) order, regardless of worker completion order: records
/// arriving out of order wait in a small reorder buffer. Because the runner
/// hands out indices via an atomic counter, the buffer never holds more than
/// ~jobs records — memory stays bounded.
class AggregatingSink : public ResultSink {
 public:
  /// `labeler` maps a trial to its config-cell label; a null labeler puts
  /// every trial in the "" cell. `base_index` offsets the runner's local
  /// indices into a campaign-global index space (resume support).
  using Labeler = std::function<std::string(std::size_t index, const TrialConfig&)>;
  explicit AggregatingSink(Labeler labeler = nullptr,
                           std::uint64_t base_index = 0);

  void consume(std::size_t index, const TrialConfig& cfg,
               const TrialResult& result, const obs::Context& ctx) override;

  /// Optional tap invoked (under the sink's lock) with each record *after*
  /// it is applied in canonical order — the campaign driver chains shard
  /// spill off this so file order matches reduction order.
  std::function<void(const TrialRecord&)> on_record;

  /// Snapshot of the table so far (copies under the lock; the table is small
  /// — per-cell accumulators, not per-trial data).
  obs::AggregateTable table() const;
  std::uint64_t applied() const;

 private:
  Labeler labeler_;
  std::uint64_t base_index_;
  mutable std::mutex mu_;
  obs::AggregateTable table_;
  std::map<std::uint64_t, TrialRecord> pending_;
  std::uint64_t next_to_apply_;
  std::uint64_t applied_ = 0;
};

}  // namespace h2sim::experiment
