#pragma once

#include <string>
#include <vector>

namespace h2sim::experiment {

/// Minimal fixed-width console table, used by every bench to print the
/// paper-vs-measured rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  void print(const std::string& title = "") const;

  static std::string fmt(double v, int decimals = 1);
  static std::string pct(double v, int decimals = 0);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace h2sim::experiment
