#include "experiment/harness.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "analysis/boundary.hpp"
#include "capture/session.hpp"
#include "defense/defenses.hpp"
#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "sim/log.hpp"
#include "h2/server.hpp"
#include "tcp/tcp_stack.hpp"
#include "tls/session.hpp"

namespace h2sim::experiment {

using sim::Duration;

net::Path::Config TrialConfig::default_path() {
  net::Path::Config p;
  // Client <-> gateway: the lab LAN segment.
  p.client_side.delay = Duration::millis(2);
  p.client_side.bandwidth_bps = 1e9;
  p.client_side.queue_limit_bytes = 256 * 1024;
  p.client_side.loss_rate = 0.0;
  // Gateway <-> server: the Internet path to isidewith (1 Gbps uplink with
  // light background loss).
  p.server_side.delay = Duration::millis(10);
  p.server_side.bandwidth_bps = 1e9;
  p.server_side.queue_limit_bytes = 128 * 1024;
  // Light Internet-path background loss: enough for a measurable baseline
  // retransmission rate without collapsing the congestion window.
  p.server_side.loss_rate = 1e-4;
  return p;
}

h2::ConnectionConfig TrialConfig::default_server_h2() {
  h2::ConnectionConfig c;
  c.scheduler = h2::SchedulerKind::kRoundRobin;  // multiplexing enabled
  c.data_chunk_size = 1024;
  c.max_concurrent_streams = 100;
  return c;
}

h2::ConnectionConfig TrialConfig::default_client_h2() {
  h2::ConnectionConfig c;
  c.scheduler = h2::SchedulerKind::kRoundRobin;
  c.initial_window_size = 131072;  // Firefox-like
  return c;
}

attack::AttackConfig TrialConfig::default_attack_off() {
  attack::AttackConfig a;
  a.enabled = false;
  return a;
}

attack::AttackConfig full_attack_config() {
  attack::AttackConfig a;
  a.enabled = true;
  a.jitter_phase1 = Duration::millis(50);
  a.trigger_get_index = 6;
  a.use_throttle = true;
  a.throttle_bps = 800e6;
  a.use_drop = true;
  a.drop_rate = 0.8;
  a.drop_duration = Duration::seconds(6);
  a.jitter_phase2 = Duration::millis(80);
  return a;
}

attack::AttackConfig single_target_attack_config(int target_get_index) {
  // Same staged pipeline; the disrupt phase is armed on the target's own GET
  // (the monitor counts requests at arrival, before any hold, so phase-1
  // spacing does not disturb the count).
  attack::AttackConfig a = full_attack_config();
  a.trigger_get_index = target_get_index;
  return a;
}

attack::AttackConfig jitter_only_config(Duration spacing) {
  attack::AttackConfig a;
  a.enabled = true;
  a.jitter_phase1 = spacing;
  a.trigger_get_index = 0;  // never trigger: jitter for the whole run
  a.use_throttle = false;
  a.use_drop = false;
  return a;
}

attack::AttackConfig jitter_throttle_config(Duration spacing, double bps) {
  attack::AttackConfig a = jitter_only_config(spacing);
  a.use_throttle = true;
  a.throttle_bps = bps;
  a.throttle_from_start = true;
  return a;
}

namespace {
// Wall-clock world-construction time of the last run_trial on this thread.
// Deliberately NOT a per-trial metric: wall time is not a pure function of
// the config, and per-trial registries are compared bit-for-bit by the
// determinism suite. The sweep runner aggregates this into its caller's
// context instead.
thread_local std::uint64_t last_setup_nanos = 0;
}  // namespace

std::uint64_t last_trial_setup_nanos() { return last_setup_nanos; }

int html_get_index(const web::IsidewithConfig& site) { return site.pre_objects + 1; }

int emblem_get_index(const web::IsidewithConfig& site, int j) {
  return site.pre_objects + 1 + site.head_fillers + j + 1;
}

TrialResult run_trial(const TrialConfig& cfg) {
  // Each trial owns the *current* observability context (the thread's
  // installed obs::Context, or the process default when running standalone):
  // zero every registered metric and drop buffered trace events so counters
  // and timelines cover exactly this trial (and same-seed reruns are
  // bit-identical). run_trials() installs a fresh private context per trial,
  // which is what makes concurrent trials safe.
  obs::metrics().reset();
  obs::tracer().clear();
  obs::profiler().reset();

  // Wall-clock setup cost (world construction up to the first simulated
  // event). Recorded as a registry counter only — never on the TrialResult —
  // because wall time is not a pure function of the config.
  const auto setup_begin = std::chrono::steady_clock::now();

  sim::EventLoop loop;
  sim::Rng root(cfg.seed);
  sim::Rng rng_perm = root.split();
  sim::Rng rng_server_stack = root.split();
  sim::Rng rng_client_stack = root.split();
  sim::Rng rng_server_h2 = root.split();
  sim::Rng rng_client_h2 = root.split();
  sim::Rng rng_app = root.split();
  sim::Rng rng_browser = root.split();
  sim::Rng rng_attack = root.split();

  // The user's survey result: a uniformly random party ranking.
  std::vector<int> perm_v = {0, 1, 2, 3, 4, 5, 6, 7};
  rng_perm.shuffle(perm_v);
  std::array<int, 8> perm{};
  std::copy(perm_v.begin(), perm_v.end(), perm.begin());

  // Topology with per-trial loss seeds.
  net::Path::Config pcfg = cfg.path;
  pcfg.client_side.loss_seed ^= cfg.seed;
  pcfg.server_side.loss_seed ^= cfg.seed * 0x9e3779b9ULL;
  net::Path path(loop, pcfg);

  const tcp::TcpConfig tcp_cfg;
  tcp::TcpStack server_stack(loop, rng_server_stack, net::Path::kServerNode,
                             tcp_cfg, [&path](net::Packet&& p) {
                               path.send_from_server(std::move(p));
                             });
  tcp::TcpStack client_stack(loop, rng_client_stack, net::Path::kClientNode,
                             tcp_cfg, [&path](net::Packet&& p) {
                               path.send_from_client(std::move(p));
                             });
  path.set_server_sink([&server_stack](net::Packet&& p) {
    server_stack.deliver(std::move(p));
  });
  path.set_client_sink([&client_stack](net::Packet&& p) {
    client_stack.deliver(std::move(p));
  });

  // The shared sweep-level site is only usable when the site carries no
  // per-seed randomness; otherwise build it locally, exactly as a standalone
  // trial always has. Note the rng_defense split happens in the same cases
  // either way, so the trial's RNG stream is identical with or without a
  // prebuilt site.
  web::Website local_site;
  const bool share_site =
      cfg.prebuilt_site && !cfg.site_builder && cfg.defense.dummy_count == 0;
  if (!share_site) {
    local_site = cfg.site_builder ? cfg.site_builder()
                                  : web::make_isidewith_site(cfg.site);
    if (cfg.defense.pad_quantum > 1) {
      local_site = defense::pad_site(local_site, cfg.defense.pad_quantum);
    }
    if (cfg.defense.dummy_count > 0) {
      sim::Rng rng_defense = root.split();
      defense::DummyConfig dc;
      dc.count = cfg.defense.dummy_count;
      defense::inject_dummies(local_site, rng_defense, dc);
    }
  }
  const web::Website& site = share_site ? *cfg.prebuilt_site : local_site;
  analysis::WireLog wire_log;

  struct ServerSide {
    std::unique_ptr<tls::TlsSession> tls;
    std::unique_ptr<h2::ServerConnection> conn;
    std::unique_ptr<web::ServerApp> app;
  };
  std::vector<std::unique_ptr<ServerSide>> server_conns;

  server_stack.listen(443, [&](tcp::TcpConnection& c) {
    auto sc = std::make_unique<ServerSide>();
    sc->tls = std::make_unique<tls::TlsSession>(c, tls::TlsSession::Role::kServer);
    sc->conn = std::make_unique<h2::ServerConnection>(loop, *sc->tls, cfg.server_h2,
                                                      rng_server_h2.split());
    sc->app = std::make_unique<web::ServerApp>(loop, site, *sc->conn,
                                               rng_app.split(), cfg.server_app);
    web::ServerApp* app = sc->app.get();
    // One-entry label cache: DATA frames arrive in long per-stream runs, and
    // labels are assigned before the stream's first response frame and never
    // change, so the map lookup only runs on stream switches.
    sc->conn->set_frame_tap([app, &wire_log, cached_id = 0u,
                             cached_label = static_cast<const std::string*>(
                                 nullptr)](const h2::Frame& f,
                                           sim::TimePoint t) mutable {
      analysis::ServerWireEvent ev;
      ev.time = t;
      ev.stream_id = f.stream_id;
      ev.is_data = f.type == h2::FrameType::kData;
      ev.data_bytes = ev.is_data ? f.payload.size() : 0;
      ev.end_stream = ev.is_data && f.has_flag(h2::flags::kEndStream);
      if (!cached_label || cached_id != f.stream_id) {
        auto it = app->stream_objects().find(f.stream_id);
        if (it != app->stream_objects().end()) {
          cached_id = f.stream_id;
          cached_label = &it->second;
          ev.object = *cached_label;
        }
      } else {
        ev.object = *cached_label;
      }
      wire_log.add(std::move(ev));
    });
    server_conns.push_back(std::move(sc));
  });

  // The adversary at the gateway.
  attack::AttackPipeline pipeline(loop, path.middlebox(), cfg.attack, rng_attack);

  // Wire capture attaches after the pipeline (whose set_tap replaces all
  // middlebox taps); both observers see every gateway packet identically.
  std::unique_ptr<capture::CaptureSession> capture_session;
  if (!cfg.capture.path.empty()) {
    capture::CaptureConfig ccfg;
    ccfg.path = cfg.capture.path;
    ccfg.client_vantage = cfg.capture.client_vantage;
    ccfg.gateway_vantage = cfg.capture.gateway_vantage;
    ccfg.server_vantage = cfg.capture.server_vantage;
    capture_session = std::make_unique<capture::CaptureSession>(loop, path,
                                                                std::move(ccfg));
  }

  // Client: TCP connect -> TLS -> HTTP/2 -> browser.
  tcp::TcpConnection& client_tcp = client_stack.connect(net::Path::kServerNode, 443);
  tls::TlsSession client_tls(client_tcp, tls::TlsSession::Role::kClient);
  h2::ClientConnection client_conn(loop, client_tls, cfg.client_h2, rng_client_h2);
  web::Browser browser(loop, client_conn, site, perm, rng_browser, cfg.browser);
  browser.start();

  last_setup_nanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - setup_begin)
          .count());

  loop.run(sim::TimePoint::origin() + cfg.sim_limit);

  if (capture_session && !capture_session->close()) {
    sim::logf(sim::LogLevel::kWarn, loop.now(), "capture",
              "failed to write %s", cfg.capture.path.c_str());
  }

  if (cfg.wire_log_inspector) cfg.wire_log_inspector(wire_log);
  if (cfg.trace_inspector) cfg.trace_inspector(pipeline.trace());

  // ---- Evaluation ----
  TrialResult r;
  r.truth = perm;
  r.page_complete = browser.page_complete();
  r.failure_reason = browser.failure_reason();
  r.connection_broken = browser.failed() &&
                        r.failure_reason.find("connection dead") != std::string::npos;
  // Counters are sourced from the current context's registry — the same
  // numbers any exported metrics snapshot shows. The registry was reset at
  // trial entry, so each value covers exactly this trial.
  auto& reg = obs::metrics();
  r.browser_reissues = static_cast<int>(reg.counter_value("web.reissues"));
  r.reset_sweeps = static_cast<int>(reg.counter_value("web.reset_sweeps"));
  r.tcp_fast_retransmits = reg.counter_value("tcp.retransmits_fast");
  r.tcp_rto_retransmits = reg.counter_value("tcp.retransmits_rto");
  r.tcp_retransmits = r.tcp_fast_retransmits + r.tcp_rto_retransmits;
  r.adversary_drops = reg.counter_value("attack.packets_dropped");
  r.requests_spaced = reg.counter_value("attack.requests_spaced");
  r.link_drops = reg.counter_value("net.link_drops");
  r.records_observed =
      static_cast<std::size_t>(reg.counter_value("attack.records_observed"));
  r.gets_counted = static_cast<int>(reg.counter_value("attack.gets_counted"));
  r.capture_packets = reg.counter_value("capture.packets");
  r.capture_bytes_written = reg.counter_value("capture.bytes_written");

  // Allocation accounting, exported both on the TrialResult (for the bench
  // perf record) and as registry counters (so metric snapshots and the
  // metrics_inspector see them alongside everything else).
  const sim::EventLoop::AllocStats& alloc = loop.alloc_stats();
  const sim::BufferPool::Stats& pool = loop.payload_pool().stats();
  const sim::EventLoop::SchedStats& sched = loop.sched_stats();
  reg.counter("sim.events_executed").add(loop.executed_events());
  reg.counter("sim.sched.slots_scanned").add(sched.slots_scanned);
  reg.counter("sim.sched.cascades").add(sched.cascades);
  reg.counter("sim.sched.cancels").add(sched.cancels);
  reg.counter("sim.alloc.slab_chunks").add(alloc.slab_chunks);
  reg.counter("sim.alloc.callback_heap").add(alloc.callback_heap);
  reg.counter("sim.alloc.heap_growth").add(alloc.heap_growth);
  reg.counter("sim.alloc.pool_misses").add(pool.misses);
  reg.counter("sim.alloc.pool_hits").add(pool.hits);
  r.sim_events_executed = loop.executed_events();
  r.packets_forwarded = reg.counter_value("net.mb_forwarded");
  r.sim_hot_path_allocs =
      alloc.slab_chunks + alloc.callback_heap + alloc.heap_growth + pool.misses;
  r.sim_sched_slots_scanned = sched.slots_scanned;
  r.sim_sched_cascades = sched.cascades;
  r.sim_sched_cancels = sched.cancels;

  if (cfg.metrics_inspector) cfg.metrics_inspector(reg.snapshot());

  double last_done = 0.0;
  for (const auto& o : browser.objects()) {
    if (o.complete) last_done = std::max(last_done, o.complete_time.to_seconds());
  }
  r.page_load_seconds = last_done;

  // Custom sites without the isidewith structure are evaluated through the
  // inspectors only.
  if (site.emblem_paths.size() < 8 || !site.find(site.html_path)) return r;

  // Size databases: the adversary's pre-compiled maps, built from the
  // public (possibly defense-transformed) site.
  analysis::SizeIdentityDb emblem_db;
  for (int k = 0; k < 8; ++k) {
    emblem_db.add("party" + std::to_string(k),
                  site.find(site.emblem_paths[static_cast<std::size_t>(k)])->size);
  }
  analysis::SizeIdentityDb html_db;
  html_db.add("html", site.find(site.html_path)->size);

  const std::vector<analysis::DetectedObject> detections =
      analysis::detect_objects(pipeline.trace());
  const analysis::SequencePrediction pred =
      analysis::predict_sequence(detections, emblem_db);
  r.predicted = pred.ranking;

  bool html_size_seen = false;
  for (const auto& d : detections) {
    if (html_db.identify(d.size_estimate)) html_size_seen = true;
  }

  // Objects of interest: the HTML, then the emblem at each burst position.
  auto outcome_for = [&](const std::string& label) {
    ObjectOutcome oo;
    oo.label = label;
    const analysis::ObjectDom od = analysis::object_dom(wire_log, label);
    oo.primary_dom = od.primary_dom;
    oo.min_dom = od.min_dom;
    oo.primary_serialized = od.primary_serialized;
    oo.any_copy_serialized = od.any_copy_serialized;
    oo.copies = static_cast<int>(od.copies.size());
    for (const auto& o : browser.objects()) {
      if (o.label == label && o.complete) oo.delivered = true;
    }
    return oo;
  };

  ObjectOutcome html = outcome_for("html");
  html.size_identified = html_size_seen;
  r.success[0] = html.any_copy_serialized && html.size_identified;
  r.interest.push_back(std::move(html));

  for (int j = 0; j < 8; ++j) {
    const std::string label = "party" + std::to_string(perm[static_cast<std::size_t>(j)]);
    ObjectOutcome oo = outcome_for(label);
    for (const auto& d : detections) {
      const auto m = emblem_db.identify(d.size_estimate);
      if (m && m->label == label) oo.size_identified = true;
    }
    const bool position_correct =
        pred.ranking.size() > static_cast<std::size_t>(j) &&
        pred.ranking[static_cast<std::size_t>(j)] == label;
    r.success[static_cast<std::size_t>(j) + 1] =
        oo.any_copy_serialized && position_correct;
    r.interest.push_back(std::move(oo));
  }

  return r;
}

}  // namespace h2sim::experiment
