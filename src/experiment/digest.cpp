#include "experiment/digest.hpp"

#include <cstdio>
#include <cstring>

namespace h2sim::experiment {

namespace {

struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void i64(std::int64_t v) { bytes(&v, sizeof(v)); }
  void b(bool v) { u64(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

}  // namespace

std::uint64_t result_digest(const TrialResult& r) {
  Fnv f;
  f.b(r.page_complete);
  f.b(r.connection_broken);
  f.str(r.failure_reason);
  for (int t : r.truth) f.i64(t);
  f.u64(r.predicted.size());
  for (const auto& p : r.predicted) f.str(p);
  for (bool s : r.success) f.b(s);
  f.u64(r.interest.size());
  for (const auto& o : r.interest) {
    f.str(o.label);
    f.f64(o.primary_dom);
    f.f64(o.min_dom);
    f.b(o.primary_serialized);
    f.b(o.any_copy_serialized);
    f.i64(o.copies);
    f.b(o.size_identified);
    f.b(o.delivered);
  }
  f.u64(r.tcp_retransmits);
  f.u64(r.tcp_fast_retransmits);
  f.u64(r.tcp_rto_retransmits);
  f.i64(r.browser_reissues);
  f.i64(r.reset_sweeps);
  f.u64(r.adversary_drops);
  f.u64(r.requests_spaced);
  f.u64(r.link_drops);
  f.u64(r.records_observed);
  f.i64(r.gets_counted);
  f.f64(r.page_load_seconds);
  f.u64(r.capture_packets);
  f.u64(r.capture_bytes_written);
  // packets_forwarded counts packets the gateway actually forwarded -- a wire
  // fact, unlike the sim_* scheduling internals, so it participates.
  f.u64(r.packets_forwarded);
  return f.h;
}

std::string digest_line(const std::string& label, std::uint64_t seed,
                        const TrialResult& r) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %llu %016llx", label.c_str(),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(result_digest(r)));
  return buf;
}

std::vector<DigestScenario> behavior_digest_matrix() {
  std::vector<DigestScenario> m;

  std::vector<std::uint64_t> seeds32;
  for (std::uint64_t s = 1; s <= 32; ++s) seeds32.push_back(s);
  const std::vector<std::uint64_t> seeds8 = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<std::uint64_t> seeds4 = {1, 2, 3, 4};

  {
    DigestScenario s;
    s.label = "baseline";
    m.push_back(std::move(s));
    m.back().seeds = std::move(seeds32);
  }
  {
    DigestScenario s;
    s.label = "full_attack";
    s.config.attack = full_attack_config();
    s.seeds = seeds8;
    m.push_back(std::move(s));
  }
  {
    DigestScenario s;
    s.label = "single_target";
    s.config.attack =
        single_target_attack_config(emblem_get_index(s.config.site, 3));
    s.seeds = seeds4;
    m.push_back(std::move(s));
  }
  {
    DigestScenario s;
    s.label = "defended";
    s.config.attack = full_attack_config();
    s.config.defense.pad_quantum = 128;
    s.config.defense.dummy_count = 2;
    s.seeds = seeds4;
    m.push_back(std::move(s));
  }
  return m;
}

}  // namespace h2sim::experiment
