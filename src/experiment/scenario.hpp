#pragma once

#include <cstdint>
#include <memory>

#include "experiment/harness.hpp"

namespace h2sim::experiment {

/// Sweep-level scenario template: the seed-independent parts of a
/// TrialConfig — the website (objects built, defenses applied, body bytes
/// materialized), the topology shape, the TLS/h2 connection parameters, and
/// the attack plan — prepared once and shared read-only by every trial of a
/// sweep.
///
/// Site prebuilding is only sound when the site really is the same for every
/// seed: a custom site_builder may close over anything, and dummy-object
/// injection draws from a per-seed RNG, so both disable sharing (the template
/// still works; each trial just builds its own site as before). Padding is
/// deterministic and is applied at template build time.
///
/// A trial's behaviour is byte-identical whether its config came from a
/// template or was built standalone — instantiate() only fills
/// TrialConfig::prebuilt_site, which run_trial() treats as a cache of the
/// site it would otherwise construct.
class ScenarioTemplate {
 public:
  explicit ScenarioTemplate(TrialConfig base);

  /// The config for one trial: the shared base with `seed` set.
  TrialConfig instantiate(std::uint64_t seed) const {
    TrialConfig cfg = base_;
    cfg.seed = seed;
    return cfg;
  }

  const TrialConfig& base() const { return base_; }

  /// True when the template holds a prebuilt site (no per-seed site
  /// randomness in the base config).
  bool site_shared() const { return base_.prebuilt_site != nullptr; }

 private:
  TrialConfig base_;
};

/// True when `a` and `b` would build byte-identical websites from scratch:
/// both use the default isidewith builder (no custom site_builder), neither
/// injects per-seed dummies, and their site/padding parameters match. Such
/// configs can share one prebuilt site.
bool same_site_recipe(const TrialConfig& a, const TrialConfig& b);

/// Builds the site a config would construct at trial time (builder + padding,
/// content materialized), or nullptr when the site is per-seed (custom
/// builder or dummy injection) and cannot be shared.
std::shared_ptr<const web::Website> prebuild_site(const TrialConfig& cfg);

}  // namespace h2sim::experiment
