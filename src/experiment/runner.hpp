#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "experiment/harness.hpp"
#include "obs/context.hpp"

namespace h2sim::experiment {

class ResultSink;

/// Progress report for a sweep in flight. `eta_seconds` extrapolates from
/// the *recent* completion rate (a sliding window over the last reports),
/// not the lifetime mean — on heterogeneous grids (e.g. a load sweep whose
/// late cells run 10x slower) the lifetime mean wildly underestimates the
/// remaining time.
struct Progress {
  std::size_t done = 0;
  std::size_t total = 0;
  double elapsed_seconds = 0.0;
  double eta_seconds = 0.0;
  /// Completion rate over the sliding window (lifetime mean until the
  /// window has two samples); 0 when no time has passed.
  double trials_per_sec = 0.0;
};

/// Sliding-window completion-rate estimator behind Progress::eta_seconds,
/// exposed so the bias fix is unit-testable. Feed it (elapsed, done) samples;
/// rate() is the slope across the oldest and newest retained sample —
/// capacity bounds how far back "recent" reaches. With fewer than two
/// samples it falls back to the lifetime mean of the newest sample.
class ProgressWindow {
 public:
  explicit ProgressWindow(std::size_t capacity = 32);
  void sample(double elapsed_seconds, std::size_t done);
  /// Trials per second; 0 when unknowable (no samples / no elapsed time).
  double rate() const;
  /// (total - done) / rate(); 0 when done == total or rate is unknowable.
  double eta_seconds(std::size_t done, std::size_t total) const;

 private:
  struct Sample {
    double t = 0.0;
    std::size_t done = 0;
  };
  std::vector<Sample> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
};

/// Options for run_trials().
struct RunOptions {
  /// Worker count. <= 0 means: the H2SIM_JOBS environment variable if set to
  /// a positive integer, otherwise std::thread::hardware_concurrency().
  /// Clamped to the number of trials; 1 runs inline on the calling thread.
  int jobs = 0;

  /// Tracer enable mask installed in every per-trial context (see
  /// obs::component_bit). Off by default, matching standalone run_trial.
  std::uint32_t trace_mask = 0;

  /// Invoked after each trial completes, serialized under an internal mutex
  /// (so the callback itself may be non-reentrant), from whichever worker
  /// finished the trial.
  std::function<void(const Progress&)> on_progress;

  /// Opt-in progress rate limit: when > 0, intermediate reports are dropped
  /// unless at least this much wall time has passed since the last one —
  /// workers check an atomic timestamp *before* touching the progress mutex,
  /// so million-trial sweeps don't serialize on it. Two guarantees hold
  /// regardless of the interval: exactly one final `done == total` report is
  /// delivered, and no report is delivered after it. 0 (default) keeps the
  /// one-report-per-trial behaviour.
  double progress_min_interval_seconds = 0.0;

  /// Streaming consumer invoked on the worker thread after each trial, with
  /// the trial's private context still alive (see sink.hpp). May be combined
  /// with context_inspector; the sink runs first.
  ResultSink* sink = nullptr;

  /// When false, run_trials() returns an empty vector instead of
  /// materializing one TrialResult per trial — the sink (and inspectors) are
  /// then the only consumers, and runner memory is O(jobs), not O(trials).
  bool collect_results = true;

  /// Enables the wall-time component profiler (obs::Profiler) in every
  /// per-trial context. Read the per-trial attribution from the sink /
  /// context_inspector via ctx.profiler. Off by default; disabled probes
  /// cost one branch.
  bool profile = false;

  /// Invoked on the worker thread right after trial `index` finishes, while
  /// its private obs::Context (metrics + trace events) is still alive.
  /// Different indices may run concurrently: the callback must only touch
  /// per-index state unless it synchronizes.
  std::function<void(std::size_t index, const obs::Context&)> context_inspector;

  /// When non-empty, every trial runs with wire capture enabled and writes a
  /// PCAPNG file to this path, with "{index}" / "{seed}" placeholders
  /// substituted per trial (e.g. "caps/trial_{seed}.pcapng"). A pattern
  /// without either placeholder gets "_<index>" inserted before its
  /// extension when the sweep has more than one trial, so concurrent trials
  /// never write the same file. Vantage-point flags come from each config's
  /// TrialConfig::capture; its path field is overwritten.
  std::string capture_path;
};

/// Expands a capture_path pattern for one trial (exposed for tests).
std::string expand_capture_path(const std::string& pattern, std::size_t index,
                                std::uint64_t seed, std::size_t total);

/// Resolves an effective worker count from `requested` using the RunOptions
/// rules above (without the trial-count clamp).
int resolve_jobs(int requested);

/// Runs every config, using up to RunOptions::jobs worker threads, and
/// returns results in input order (empty when opts.collect_results is
/// false — stream through opts.sink instead).
///
/// Determinism: each trial executes inside a fresh private obs::Context, and
/// a trial is a pure function of its TrialConfig — so results[i] (and the
/// metrics snapshot its inspectors observe) is bit-identical whatever the
/// thread count, scheduling order, or neighboring configs. The sequential
/// path (jobs = 1) is the same code with the same per-trial contexts.
///
/// The per-config inspectors (wire_log_inspector, metrics_inspector, ...)
/// run on worker threads. Configs sharing one closure that writes shared
/// state must synchronize; closures writing per-trial slots need not.
///
/// After the sweep, aggregate counters (experiment.trials_run,
/// experiment.sweep_wall_seconds, experiment.sweep_trials_per_sec) are
/// recorded in the *caller's* current context.
std::vector<TrialResult> run_trials(std::span<const TrialConfig> cfgs,
                                    const RunOptions& opts = {});

}  // namespace h2sim::experiment
