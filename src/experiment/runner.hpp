#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "experiment/harness.hpp"
#include "obs/context.hpp"

namespace h2sim::experiment {

/// Progress report for a sweep in flight. `eta_seconds` extrapolates from
/// the mean wall time of the trials finished so far.
struct Progress {
  std::size_t done = 0;
  std::size_t total = 0;
  double elapsed_seconds = 0.0;
  double eta_seconds = 0.0;
};

/// Options for run_trials().
struct RunOptions {
  /// Worker count. <= 0 means: the H2SIM_JOBS environment variable if set to
  /// a positive integer, otherwise std::thread::hardware_concurrency().
  /// Clamped to the number of trials; 1 runs inline on the calling thread.
  int jobs = 0;

  /// Tracer enable mask installed in every per-trial context (see
  /// obs::component_bit). Off by default, matching standalone run_trial.
  std::uint32_t trace_mask = 0;

  /// Invoked after each trial completes, serialized under an internal mutex
  /// (so the callback itself may be non-reentrant), from whichever worker
  /// finished the trial.
  std::function<void(const Progress&)> on_progress;

  /// Invoked on the worker thread right after trial `index` finishes, while
  /// its private obs::Context (metrics + trace events) is still alive.
  /// Different indices may run concurrently: the callback must only touch
  /// per-index state unless it synchronizes.
  std::function<void(std::size_t index, const obs::Context&)> context_inspector;

  /// When non-empty, every trial runs with wire capture enabled and writes a
  /// PCAPNG file to this path, with "{index}" / "{seed}" placeholders
  /// substituted per trial (e.g. "caps/trial_{seed}.pcapng"). A pattern
  /// without either placeholder gets "_<index>" inserted before its
  /// extension when the sweep has more than one trial, so concurrent trials
  /// never write the same file. Vantage-point flags come from each config's
  /// TrialConfig::capture; its path field is overwritten.
  std::string capture_path;
};

/// Expands a capture_path pattern for one trial (exposed for tests).
std::string expand_capture_path(const std::string& pattern, std::size_t index,
                                std::uint64_t seed, std::size_t total);

/// Resolves an effective worker count from `requested` using the RunOptions
/// rules above (without the trial-count clamp).
int resolve_jobs(int requested);

/// Runs every config, using up to RunOptions::jobs worker threads, and
/// returns results in input order.
///
/// Determinism: each trial executes inside a fresh private obs::Context, and
/// a trial is a pure function of its TrialConfig — so results[i] (and the
/// metrics snapshot its inspectors observe) is bit-identical whatever the
/// thread count, scheduling order, or neighboring configs. The sequential
/// path (jobs = 1) is the same code with the same per-trial contexts.
///
/// The per-config inspectors (wire_log_inspector, metrics_inspector, ...)
/// run on worker threads. Configs sharing one closure that writes shared
/// state must synchronize; closures writing per-trial slots need not.
///
/// After the sweep, aggregate counters (experiment.trials_run,
/// experiment.sweep_wall_seconds, experiment.sweep_trials_per_sec) are
/// recorded in the *caller's* current context.
std::vector<TrialResult> run_trials(std::span<const TrialConfig> cfgs,
                                    const RunOptions& opts = {});

}  // namespace h2sim::experiment
