#include "hpack/encoder.hpp"

#include "hpack/huffman.hpp"
#include "hpack/integer.hpp"
#include "hpack/static_table.hpp"

namespace h2sim::hpack {

void Encoder::set_table_size(std::size_t size) {
  table_.set_max_size(size);
  pending_size_update_ = true;
  pending_size_ = size;
}

bool Encoder::is_sensitive(std::string_view name) {
  return name == "authorization" || name == "proxy-authorization" ||
         name == "cookie" || name == "set-cookie";
}

void Encoder::encode_string(std::string_view s, std::vector<std::uint8_t>& out) const {
  if (opts_.use_huffman) {
    const std::size_t hsize = huffman::encoded_size(s);
    if (hsize < s.size()) {
      encode_integer(hsize, 7, 0x80, out);
      std::string enc;
      enc.reserve(hsize);
      huffman::encode(s, enc);
      out.insert(out.end(), enc.begin(), enc.end());
      return;
    }
  }
  encode_integer(s.size(), 7, 0x00, out);
  out.insert(out.end(), s.begin(), s.end());
}

std::vector<std::uint8_t> Encoder::encode(const HeaderList& headers) {
  std::vector<std::uint8_t> out;
  if (pending_size_update_) {
    encode_integer(pending_size_, 5, 0x20, out);
    pending_size_update_ = false;
  }

  for (const HeaderField& f : headers) {
    // 1. Fully indexed representation when a complete match exists.
    const auto sm = static_table::find(f.name, f.value);
    if (sm.index != 0 && sm.value_matched) {
      encode_integer(sm.index, 7, 0x80, out);
      continue;
    }
    const auto dm = table_.find(f.name, f.value);
    if (dm.index != 0 && dm.value_matched) {
      encode_integer(static_table::kEntries + dm.index, 7, 0x80, out);
      continue;
    }

    // 2. Literal. Sensitive fields are never indexed; the rest enter the
    //    dynamic table (incremental indexing).
    const bool sensitive = opts_.protect_sensitive && is_sensitive(f.name);
    std::size_t name_index = 0;
    if (sm.index != 0) {
      name_index = sm.index;
    } else if (dm.index != 0) {
      name_index = static_table::kEntries + dm.index;
    }

    if (sensitive) {
      encode_integer(name_index, 4, 0x10, out);
    } else {
      encode_integer(name_index, 6, 0x40, out);
    }
    if (name_index == 0) encode_string(f.name, out);
    encode_string(f.value, out);
    if (!sensitive) table_.insert(f);
  }
  return out;
}

}  // namespace h2sim::hpack
