#include "hpack/integer.hpp"

namespace h2sim::hpack {

void encode_integer(std::uint64_t value, int prefix_bits,
                    std::uint8_t first_byte_flags, std::vector<std::uint8_t>& out) {
  const std::uint64_t max_prefix = (1u << prefix_bits) - 1;
  if (value < max_prefix) {
    out.push_back(static_cast<std::uint8_t>(first_byte_flags | value));
    return;
  }
  out.push_back(static_cast<std::uint8_t>(first_byte_flags | max_prefix));
  value -= max_prefix;
  while (value >= 128) {
    out.push_back(static_cast<std::uint8_t>(0x80 | (value & 0x7f)));
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::optional<std::uint64_t> decode_integer(std::span<const std::uint8_t> in,
                                            std::size_t& pos, int prefix_bits) {
  if (pos >= in.size()) return std::nullopt;
  const std::uint64_t max_prefix = (1u << prefix_bits) - 1;
  std::uint64_t value = in[pos++] & max_prefix;
  if (value < max_prefix) return value;

  int shift = 0;
  for (;;) {
    if (pos >= in.size()) return std::nullopt;
    if (shift > 56) return std::nullopt;  // would overflow: reject
    const std::uint8_t b = in[pos++];
    value += static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return value;
    shift += 7;
  }
}

}  // namespace h2sim::hpack
