#pragma once

#include <cstddef>
#include <deque>
#include <string_view>

#include "hpack/header.hpp"

namespace h2sim::hpack {

/// RFC 7541 §2.3.2 dynamic table: FIFO of recently inserted fields with a
/// byte-size budget. Index 1 is the most recently inserted entry (the full
/// HPACK index space maps it to static_table::kEntries + 1).
class DynamicTable {
 public:
  explicit DynamicTable(std::size_t max_size = 4096) : max_size_(max_size) {}

  /// Inserts at the head, evicting from the tail until within budget. An
  /// entry larger than the whole budget empties the table (per spec).
  void insert(HeaderField field);

  /// Table size update (SETTINGS_HEADER_TABLE_SIZE / dynamic table size
  /// update instruction). Evicts as needed.
  void set_max_size(std::size_t max_size);

  const HeaderField& at(std::size_t index) const;  // 1-based, 1 = newest

  /// Finds a match; returns 1-based dynamic index or 0.
  struct Match {
    std::size_t index = 0;
    bool value_matched = false;
  };
  Match find(std::string_view name, std::string_view value) const;

  std::size_t entry_count() const { return entries_.size(); }
  std::size_t size_bytes() const { return size_; }
  std::size_t max_size() const { return max_size_; }

 private:
  void evict_to(std::size_t budget);

  std::deque<HeaderField> entries_;  // front = newest
  std::size_t size_ = 0;
  std::size_t max_size_;
};

}  // namespace h2sim::hpack
