#include "hpack/dynamic_table.hpp"

#include <cassert>

namespace h2sim::hpack {

void DynamicTable::insert(HeaderField field) {
  const std::size_t fsize = field.hpack_size();
  if (fsize > max_size_) {
    evict_to(0);
    return;
  }
  evict_to(max_size_ - fsize);
  size_ += fsize;
  entries_.push_front(std::move(field));
}

void DynamicTable::set_max_size(std::size_t max_size) {
  max_size_ = max_size;
  evict_to(max_size_);
}

void DynamicTable::evict_to(std::size_t budget) {
  while (size_ > budget) {
    assert(!entries_.empty());
    size_ -= entries_.back().hpack_size();
    entries_.pop_back();
  }
}

const HeaderField& DynamicTable::at(std::size_t index) const {
  assert(index >= 1 && index <= entries_.size());
  return entries_[index - 1];
}

DynamicTable::Match DynamicTable::find(std::string_view name,
                                       std::string_view value) const {
  Match m;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const HeaderField& f = entries_[i];
    if (f.name != name) continue;
    if (f.value == value) return Match{i + 1, true};
    if (m.index == 0) m = Match{i + 1, false};
  }
  return m;
}

}  // namespace h2sim::hpack
