#pragma once

#include <string>
#include <vector>

namespace h2sim::hpack {

/// One header field. Names are kept lowercase per HTTP/2 requirements.
struct HeaderField {
  std::string name;
  std::string value;

  /// RFC 7541 §4.1 size: name + value + 32 bytes of bookkeeping overhead.
  std::size_t hpack_size() const { return name.size() + value.size() + 32; }

  bool operator==(const HeaderField&) const = default;
};

using HeaderList = std::vector<HeaderField>;

}  // namespace h2sim::hpack
