#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "hpack/dynamic_table.hpp"
#include "hpack/header.hpp"

namespace h2sim::hpack {

/// HPACK decoder: one per connection direction. Returns nullopt on any
/// malformed block, which the HTTP/2 layer maps to COMPRESSION_ERROR.
class Decoder {
 public:
  explicit Decoder(std::size_t table_size = 4096) : table_(table_size) {}

  /// Upper bound the peer may resize the table to (our advertised
  /// SETTINGS_HEADER_TABLE_SIZE).
  void set_max_table_size(std::size_t size) { max_allowed_table_ = size; }

  std::optional<HeaderList> decode(std::span<const std::uint8_t> block);

  const DynamicTable& table() const { return table_; }

 private:
  std::optional<std::string> decode_string(std::span<const std::uint8_t> in,
                                           std::size_t& pos);
  const HeaderField* lookup(std::size_t index) const;

  DynamicTable table_;
  std::size_t max_allowed_table_ = 4096;
};

}  // namespace h2sim::hpack
