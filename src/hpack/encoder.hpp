#pragma once

#include <cstdint>
#include <vector>

#include "hpack/dynamic_table.hpp"
#include "hpack/header.hpp"

namespace h2sim::hpack {

struct EncoderOptions {
  bool use_huffman = true;
  /// Fields matching these names are emitted never-indexed (RFC 7541 §7.1.3
  /// guidance for sensitive values).
  bool protect_sensitive = true;
};

/// HPACK encoder: one per connection direction. Stateful (owns the encoding
/// dynamic table), so header blocks must be encoded in transmission order.
class Encoder {
 public:
  using Options = EncoderOptions;

  explicit Encoder(Options opts = Options{}, std::size_t table_size = 4096)
      : opts_(opts), table_(table_size) {}

  /// Signals a table-size change; emitted as a dynamic table size update at
  /// the start of the next header block.
  void set_table_size(std::size_t size);

  /// Encodes one header block.
  std::vector<std::uint8_t> encode(const HeaderList& headers);

  const DynamicTable& table() const { return table_; }

 private:
  void encode_string(std::string_view s, std::vector<std::uint8_t>& out) const;
  static bool is_sensitive(std::string_view name);

  Options opts_;
  DynamicTable table_;
  bool pending_size_update_ = false;
  std::size_t pending_size_ = 0;
};

}  // namespace h2sim::hpack
