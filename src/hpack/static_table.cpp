#include "hpack/static_table.hpp"

#include <array>
#include <cassert>

namespace h2sim::hpack::static_table {
namespace {

// Namespace-scope so lookups skip the function-local-static guard check —
// at() runs once per header field per frame, millions of times per sweep.
const std::array<HeaderField, kEntries> kTable = {{
      {":authority", ""},
      {":method", "GET"},
      {":method", "POST"},
      {":path", "/"},
      {":path", "/index.html"},
      {":scheme", "http"},
      {":scheme", "https"},
      {":status", "200"},
      {":status", "204"},
      {":status", "206"},
      {":status", "304"},
      {":status", "400"},
      {":status", "404"},
      {":status", "500"},
      {"accept-charset", ""},
      {"accept-encoding", "gzip, deflate"},
      {"accept-language", ""},
      {"accept-ranges", ""},
      {"accept", ""},
      {"access-control-allow-origin", ""},
      {"age", ""},
      {"allow", ""},
      {"authorization", ""},
      {"cache-control", ""},
      {"content-disposition", ""},
      {"content-encoding", ""},
      {"content-language", ""},
      {"content-length", ""},
      {"content-location", ""},
      {"content-range", ""},
      {"content-type", ""},
      {"cookie", ""},
      {"date", ""},
      {"etag", ""},
      {"expect", ""},
      {"expires", ""},
      {"from", ""},
      {"host", ""},
      {"if-match", ""},
      {"if-modified-since", ""},
      {"if-none-match", ""},
      {"if-range", ""},
      {"if-unmodified-since", ""},
      {"last-modified", ""},
      {"link", ""},
      {"location", ""},
      {"max-forwards", ""},
      {"proxy-authenticate", ""},
      {"proxy-authorization", ""},
      {"range", ""},
      {"referer", ""},
      {"refresh", ""},
      {"retry-after", ""},
      {"server", ""},
      {"set-cookie", ""},
      {"strict-transport-security", ""},
      {"transfer-encoding", ""},
      {"user-agent", ""},
      {"vary", ""},
      {"via", ""},
      {"www-authenticate", ""},
}};

}  // namespace

const HeaderField& at(std::size_t index) {
  assert(index >= 1 && index <= kEntries);
  return kTable[index - 1];
}

Match find(std::string_view name, std::string_view value) {
  Match m;
  for (std::size_t i = 1; i <= kEntries; ++i) {
    const HeaderField& f = kTable[i - 1];
    if (f.name != name) continue;
    if (f.value == value) return Match{i, true};
    if (m.index == 0) m = Match{i, false};
  }
  return m;
}

}  // namespace h2sim::hpack::static_table
