#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace h2sim::hpack {

/// RFC 7541 §5.1 prefixed integer encoding. `prefix_bits` is N in the spec
/// (1..8); `first_byte_flags` carries the representation's pattern bits above
/// the prefix (e.g. 0x80 for an indexed header field).
void encode_integer(std::uint64_t value, int prefix_bits,
                    std::uint8_t first_byte_flags, std::vector<std::uint8_t>& out);

/// Incremental decode. On success returns the value and advances `pos` past
/// the integer; on underflow (truncated input) returns nullopt and leaves
/// `pos` unspecified. Overlong/overflowing encodings (> 2^62) also fail.
std::optional<std::uint64_t> decode_integer(std::span<const std::uint8_t> in,
                                            std::size_t& pos, int prefix_bits);

}  // namespace h2sim::hpack
