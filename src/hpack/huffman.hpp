#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace h2sim::hpack {

/// RFC 7541 Appendix B Huffman coding for header strings.
namespace huffman {

/// Encoded size in bytes of `s` (including the EOS padding of the final
/// partial byte).
std::size_t encoded_size(std::string_view s);

/// Appends the Huffman encoding of `s` to `out`.
void encode(std::string_view s, std::string& out);

/// Decodes `in`; returns nullopt on invalid padding or a decoded EOS symbol
/// (both connection errors per RFC 7541 §5.2).
std::optional<std::string> decode(std::span<const std::uint8_t> in);

}  // namespace huffman
}  // namespace h2sim::hpack
