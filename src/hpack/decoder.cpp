#include "hpack/decoder.hpp"

#include "hpack/huffman.hpp"
#include "hpack/integer.hpp"
#include "hpack/static_table.hpp"

namespace h2sim::hpack {

const HeaderField* Decoder::lookup(std::size_t index) const {
  if (index == 0) return nullptr;
  if (index <= static_table::kEntries) return &static_table::at(index);
  const std::size_t dyn = index - static_table::kEntries;
  if (dyn > table_.entry_count()) return nullptr;
  return &table_.at(dyn);
}

std::optional<std::string> Decoder::decode_string(std::span<const std::uint8_t> in,
                                                  std::size_t& pos) {
  if (pos >= in.size()) return std::nullopt;
  const bool huff = (in[pos] & 0x80) != 0;
  const auto len = decode_integer(in, pos, 7);
  if (!len || pos + *len > in.size()) return std::nullopt;
  std::span<const std::uint8_t> bytes = in.subspan(pos, *len);
  pos += *len;
  if (huff) return huffman::decode(bytes);
  return std::string(bytes.begin(), bytes.end());
}

std::optional<HeaderList> Decoder::decode(std::span<const std::uint8_t> block) {
  HeaderList out;
  std::size_t pos = 0;
  bool saw_field = false;
  while (pos < block.size()) {
    const std::uint8_t b = block[pos];
    if (b & 0x80) {
      // Indexed header field.
      const auto idx = decode_integer(block, pos, 7);
      if (!idx) return std::nullopt;
      const HeaderField* f = lookup(*idx);
      if (!f) return std::nullopt;
      out.push_back(*f);
      saw_field = true;
    } else if (b & 0x40) {
      // Literal with incremental indexing.
      const auto idx = decode_integer(block, pos, 6);
      if (!idx) return std::nullopt;
      HeaderField f;
      if (*idx != 0) {
        const HeaderField* nf = lookup(*idx);
        if (!nf) return std::nullopt;
        f.name = nf->name;
      } else {
        auto name = decode_string(block, pos);
        if (!name) return std::nullopt;
        f.name = std::move(*name);
      }
      auto value = decode_string(block, pos);
      if (!value) return std::nullopt;
      f.value = std::move(*value);
      table_.insert(f);
      out.push_back(std::move(f));
      saw_field = true;
    } else if (b & 0x20) {
      // Dynamic table size update: must precede any field in the block and
      // must not exceed the advertised limit.
      if (saw_field) return std::nullopt;
      const auto size = decode_integer(block, pos, 5);
      if (!size || *size > max_allowed_table_) return std::nullopt;
      table_.set_max_size(*size);
    } else {
      // Literal without indexing (0x00) or never indexed (0x10).
      const auto idx = decode_integer(block, pos, 4);
      if (!idx) return std::nullopt;
      HeaderField f;
      if (*idx != 0) {
        const HeaderField* nf = lookup(*idx);
        if (!nf) return std::nullopt;
        f.name = nf->name;
      } else {
        auto name = decode_string(block, pos);
        if (!name) return std::nullopt;
        f.name = std::move(*name);
      }
      auto value = decode_string(block, pos);
      if (!value) return std::nullopt;
      f.value = std::move(*value);
      out.push_back(std::move(f));
      saw_field = true;
    }
  }
  return out;
}

}  // namespace h2sim::hpack
