#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "hpack/header.hpp"

namespace h2sim::hpack {

/// RFC 7541 Appendix A static table (1-indexed, 61 entries).
namespace static_table {

inline constexpr std::size_t kEntries = 61;

/// Returns the entry at `index` (1..61); terminates on out-of-range (callers
/// validate indices first).
const HeaderField& at(std::size_t index);

/// Best static match for a field: returns (index, value_matched). A full
/// name+value match is preferred; otherwise the first name-only match.
struct Match {
  std::size_t index = 0;  // 0 = no match
  bool value_matched = false;
};
Match find(std::string_view name, std::string_view value);

}  // namespace static_table
}  // namespace h2sim::hpack
