#include "analysis/trace.hpp"

#include <algorithm>

namespace h2sim::analysis {

std::vector<std::uint32_t> WireLog::streams_for(const std::string& object) const {
  std::vector<std::uint32_t> out;
  for (const auto& ev : events_) {
    if (ev.object == object &&
        std::find(out.begin(), out.end(), ev.stream_id) == out.end()) {
      out.push_back(ev.stream_id);
    }
  }
  return out;
}

std::vector<RecordObs> PacketTrace::in_direction(net::Direction dir) const {
  std::vector<RecordObs> out;
  for (const auto& r : records_) {
    if (r.dir == dir) out.push_back(r);
  }
  return out;
}

std::size_t PacketTrace::count_appdata(net::Direction dir, std::size_t min_body) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.dir == dir && r.type == tls::ContentType::kApplicationData &&
        r.body_len >= min_body) {
      ++n;
    }
  }
  return n;
}

}  // namespace h2sim::analysis
