#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

namespace h2sim::analysis {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double percent_true(const std::vector<bool>& xs) {
  if (xs.empty()) return 0.0;
  std::size_t n = 0;
  for (bool x : xs) {
    if (x) ++n;
  }
  return 100.0 * static_cast<double>(n) / static_cast<double>(xs.size());
}

}  // namespace h2sim::analysis
