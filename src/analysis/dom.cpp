#include "analysis/dom.hpp"

#include <algorithm>

namespace h2sim::analysis {

DomResult degree_of_multiplexing(const WireLog& log, std::uint32_t stream_id) {
  DomResult r;
  std::size_t current_run = 0;
  bool in_run = false;

  for (const auto& ev : log.events()) {
    if (!ev.is_data || ev.data_bytes == 0) continue;  // control frames ignored
    if (ev.stream_id == stream_id) {
      r.total_bytes += ev.data_bytes;
      current_run += ev.data_bytes;
      in_run = true;
      if (ev.end_stream) r.complete = true;
      r.largest_run_bytes = std::max(r.largest_run_bytes, current_run);
      if (current_run == ev.data_bytes) ++r.runs;  // run just started
    } else if (in_run) {
      // A foreign data frame breaks the run.
      current_run = 0;
      in_run = false;
    }
  }

  if (r.total_bytes == 0) {
    r.dom = 0.0;
    return r;
  }
  r.dom = r.runs <= 1
              ? 0.0
              : 1.0 - static_cast<double>(r.largest_run_bytes) /
                          static_cast<double>(r.total_bytes);
  return r;
}

std::map<std::uint32_t, DomResult> degree_of_multiplexing_all(const WireLog& log) {
  std::map<std::uint32_t, DomResult> out;
  for (const auto& ev : log.events()) {
    if (ev.is_data && ev.data_bytes > 0) out[ev.stream_id] = DomResult{};
  }
  for (auto& [sid, r] : out) r = degree_of_multiplexing(log, sid);
  return out;
}

ObjectDom object_dom(const WireLog& log, const std::string& object) {
  ObjectDom o;
  o.object = object;
  o.copies = log.streams_for(object);
  bool first = true;
  for (const std::uint32_t sid : o.copies) {
    const DomResult r = degree_of_multiplexing(log, sid);
    if (r.total_bytes == 0) continue;
    if (first) {
      o.primary_dom = r.dom;
      o.primary_serialized = r.dom == 0.0 && r.complete;
      first = false;
    }
    if (r.dom < o.min_dom) o.min_dom = r.dom;
    if (r.dom == 0.0 && r.complete) o.any_copy_serialized = true;
  }
  if (first) {
    // No data transmitted for this object at all.
    o.primary_dom = 1.0;
    o.min_dom = 1.0;
  }
  return o;
}

}  // namespace h2sim::analysis
