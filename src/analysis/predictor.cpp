#include "analysis/predictor.hpp"

#include <cmath>

namespace h2sim::analysis {

void SizeIdentityDb::add(std::string label, std::size_t size) {
  entries_.push_back(Match{std::move(label), size, 0.0});
}

std::optional<SizeIdentityDb::Match> SizeIdentityDb::identify(
    std::size_t size_estimate) const {
  std::optional<Match> best;
  for (const auto& e : entries_) {
    const double rel = std::abs(static_cast<double>(size_estimate) -
                                static_cast<double>(e.size)) /
                       static_cast<double>(e.size);
    if (rel <= tolerance_ && (!best || rel < best->rel_error)) {
      best = Match{e.label, e.size, rel};
    }
  }
  return best;
}

SequencePrediction predict_sequence(const std::vector<DetectedObject>& detections,
                                    const SizeIdentityDb& emblems,
                                    std::size_t expected) {
  SequencePrediction out;

  // Collect emblem-sized matches in transmission order (duplicates kept:
  // retransmitted copies and coincidental junk both occur).
  std::vector<std::string> matches;
  for (const auto& d : detections) {
    const auto m = emblems.identify(d.size_estimate);
    if (m) {
      matches.push_back(m->label);
    } else if (d.ended_by_delimiter) {
      out.unmatched.push_back(d.size_estimate);
    }
  }

  // The adversary knows the emblems arrive as one consecutive burst
  // (assumption (5) of Section III), so the ranking is the longest run of
  // pairwise-distinct matches; ties prefer the latest run (junk from the
  // disrupt phase precedes the burst).
  std::size_t best_begin = 0, best_len = 0;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < matches.size(); ++i) {
    for (std::size_t j = begin; j < i; ++j) {
      if (matches[j] == matches[i]) {
        begin = j + 1;
        break;
      }
    }
    const std::size_t len = i - begin + 1;
    if (len >= best_len) {
      best_len = len;
      best_begin = begin;
    }
  }
  const std::size_t take = std::min(best_len, expected);
  out.ranking.assign(matches.begin() + static_cast<std::ptrdiff_t>(best_begin),
                     matches.begin() + static_cast<std::ptrdiff_t>(best_begin + take));
  return out;
}

}  // namespace h2sim::analysis
