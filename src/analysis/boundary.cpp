#include "analysis/boundary.hpp"

#include <algorithm>
#include <map>

namespace h2sim::analysis {

std::vector<DetectedObject> detect_objects(const PacketTrace& trace,
                                           const BoundaryConfig& cfg) {
  // Collect candidate body records.
  std::vector<RecordObs> body;
  for (const auto& r : trace.records()) {
    if (r.dir != net::Direction::kServerToClient) continue;
    if (r.type != tls::ContentType::kApplicationData) continue;
    if (r.body_len < cfg.min_body_record) continue;
    body.push_back(r);
  }
  std::vector<DetectedObject> out;
  if (body.empty()) return out;

  // "Full" record size = the modal large record size (the scheduler writes
  // fixed-size quanta, like MTU-sized packets in the paper's Figure 1).
  std::map<std::size_t, std::size_t> histogram;
  for (const auto& r : body) ++histogram[r.body_len];
  std::size_t full = 0, best_count = 0;
  for (const auto& [size, count] : histogram) {
    if (count > best_count || (count == best_count && size > full)) {
      best_count = count;
      full = size;
    }
  }

  DetectedObject cur;
  bool open = false;
  auto flush = [&](bool delimiter) {
    if (!open) return;
    cur.ended_by_delimiter = delimiter;
    out.push_back(cur);
    cur = DetectedObject{};
    open = false;
  };

  for (const auto& r : body) {
    if (open && r.time - cur.end > cfg.idle_gap) flush(false);
    if (!open) {
      open = true;
      cur.start = r.time;
    }
    cur.end = r.time;
    ++cur.records;
    cur.size_estimate += r.body_len > cfg.per_record_overhead
                             ? r.body_len - cfg.per_record_overhead
                             : 0;
    if (r.body_len + cfg.full_size_slack < full) {
      // Sub-full record: delimits the object (Figure 1, Case 1).
      flush(true);
    }
  }
  flush(false);
  return out;
}

}  // namespace h2sim::analysis
