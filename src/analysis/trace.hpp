#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "tls/record.hpp"

namespace h2sim::analysis {

/// Ground-truth wire event: one HTTP/2 frame written by the server (each
/// frame is exactly one TLS record, and TCP preserves write order on the
/// byte stream). Built from the server connection's frame tap plus the
/// server app's stream->object map; used by the evaluator, never by the
/// attacker.
struct ServerWireEvent {
  sim::TimePoint time;
  std::uint32_t stream_id = 0;
  std::string object;          // label ("html", "party3", ...); "" = control
  std::size_t data_bytes = 0;  // DATA payload bytes (0 for control frames)
  bool is_data = false;
  bool end_stream = false;
};

class WireLog {
 public:
  void add(ServerWireEvent ev) { events_.push_back(std::move(ev)); }
  const std::vector<ServerWireEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// All distinct stream ids that carried a given object label, in first-
  /// appearance order (original + duplicate copies).
  std::vector<std::uint32_t> streams_for(const std::string& object) const;

 private:
  std::vector<ServerWireEvent> events_;
};

/// Attacker-side observation of one TLS record, reconstructed from the
/// packet capture at the compromised gateway. Only ciphertext sizes, record
/// types and timing — exactly the paper's adversary view.
struct RecordObs {
  sim::TimePoint time;
  net::Direction dir = net::Direction::kServerToClient;
  tls::ContentType type = tls::ContentType::kApplicationData;
  std::size_t body_len = 0;  // record length field (ciphertext + tag)

  /// Field-wise equality; the capture subsystem's round-trip guarantee
  /// (export → pcapng → reingest reproduces the live trace exactly) is
  /// stated and tested in terms of this comparison.
  bool operator==(const RecordObs&) const = default;
};

class PacketTrace {
 public:
  void add(RecordObs obs) { records_.push_back(obs); }
  const std::vector<RecordObs>& records() const { return records_; }
  void clear() { records_.clear(); }

  std::vector<RecordObs> in_direction(net::Direction dir) const;
  std::size_t count_appdata(net::Direction dir, std::size_t min_body = 0) const;

 private:
  std::vector<RecordObs> records_;
};

}  // namespace h2sim::analysis
