#pragma once

#include <cstdint>
#include <vector>

#include "analysis/trace.hpp"

namespace h2sim::analysis {

/// The attacker's object-size estimator (Figure 1 generalized from packets
/// to TLS records): within the server->client application-data record
/// stream, body records share a "full" size (one scheduler quantum per
/// record); a record smaller than full delimits the end of an object's
/// serialized transmission. Time gaps longer than `idle_gap` also delimit.
struct BoundaryConfig {
  /// Records with body below this are control chatter (WINDOW_UPDATE,
  /// SETTINGS acks, ~29-35 bytes) or response HEADERS (~28-60 bytes), not
  /// body bytes. Object tail records are larger than this for any realistic
  /// chunking.
  std::size_t min_body_record = 64;
  /// Per-record protocol overhead subtracted from each record when summing
  /// object bytes: 9 (frame header) + 16 (AEAD tag).
  std::size_t per_record_overhead = 25;
  /// A silence longer than this ends the current object segment.
  sim::Duration idle_gap = sim::Duration::millis(120);
  /// Tolerance when deciding a record is "smaller than full".
  std::size_t full_size_slack = 32;
};

struct DetectedObject {
  std::size_t size_estimate = 0;  // plaintext byte estimate
  std::size_t records = 0;
  sim::TimePoint start;
  sim::TimePoint end;
  bool ended_by_delimiter = false;  // vs idle gap / end of trace
};

/// Splits the server->client record stream into object transmissions.
/// Only meaningful where transmissions are serialized — on multiplexed
/// segments it produces garbage sizes, which is precisely the paper's
/// premise (Case 2 of Figure 1).
std::vector<DetectedObject> detect_objects(const PacketTrace& trace,
                                           const BoundaryConfig& cfg = {});

}  // namespace h2sim::analysis
