#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/boundary.hpp"

namespace h2sim::analysis {

/// The adversary's "pre-compiled list of image size to political party
/// mapping" (Section V): object label -> exact plaintext size.
class SizeIdentityDb {
 public:
  void add(std::string label, std::size_t size);

  /// Nearest entry within relative tolerance; nullopt when nothing matches.
  struct Match {
    std::string label;
    std::size_t size;
    double rel_error;
  };
  std::optional<Match> identify(std::size_t size_estimate) const;

  double tolerance() const { return tolerance_; }
  void set_tolerance(double t) { tolerance_ = t; }

  const std::vector<Match>& entries() const { return entries_; }

 private:
  std::vector<Match> entries_;  // rel_error unused in storage
  double tolerance_ = 0.02;
};

/// Predicts the user's party ranking from detected object transmissions:
/// emblem-sized detections, in transmission order, are the ranking. Returns
/// one predicted label per detected emblem (possibly with gaps).
struct SequencePrediction {
  /// Predicted party label for ranking positions 0..7 ("" = no prediction).
  std::vector<std::string> ranking;
  /// Detected-but-unmatched sizes (diagnostics).
  std::vector<std::size_t> unmatched;
};

SequencePrediction predict_sequence(const std::vector<DetectedObject>& detections,
                                    const SizeIdentityDb& emblems,
                                    std::size_t expected = 8);

}  // namespace h2sim::analysis
