#pragma once

#include <cstddef>
#include <vector>

namespace h2sim::analysis {

/// Small numeric helpers for the experiment harness.
double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
double median(std::vector<double> xs);
double percentile(std::vector<double> xs, double p);  // p in [0,100]

/// Fraction of true values, as a percentage.
double percent_true(const std::vector<bool>& xs);

}  // namespace h2sim::analysis
