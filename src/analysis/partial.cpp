#include "analysis/partial.hpp"

#include <algorithm>
#include <cmath>

namespace h2sim::analysis {
namespace {

struct Entry {
  std::string label;
  std::size_t size;
};

/// Depth-first subset search minimizing the residual; entries sorted
/// descending lets the lower-bound prune kick in early.
void search(const std::vector<Entry>& entries, std::size_t start, long long remaining,
            int depth, int max_depth, double tolerance_abs,
            std::vector<std::size_t>& current, double& best_residual,
            std::vector<std::size_t>& best) {
  const double residual = std::abs(static_cast<double>(remaining));
  if (!current.empty() && residual <= tolerance_abs && residual < best_residual) {
    best_residual = residual;
    best = current;
  }
  if (depth == max_depth || start >= entries.size()) return;
  if (remaining <= 0) return;  // only positive contributions available

  for (std::size_t i = start; i < entries.size(); ++i) {
    const auto size = static_cast<long long>(entries[i].size);
    // Prune: even this (largest remaining) entry overshoots beyond repair.
    if (size > remaining + static_cast<long long>(tolerance_abs)) continue;
    current.push_back(i);
    search(entries, i + 1, remaining - size, depth + 1, max_depth, tolerance_abs,
           current, best_residual, best);
    current.pop_back();
  }
}

}  // namespace

std::optional<RegionExplanation> explain_region(std::size_t region_bytes,
                                                const SizeIdentityDb& catalogue,
                                                const PartialConfig& cfg) {
  if (region_bytes == 0) return std::nullopt;
  std::vector<Entry> entries;
  for (const auto& e : catalogue.entries()) entries.push_back({e.label, e.size});
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.size > b.size; });

  const double tolerance_abs = cfg.tolerance * static_cast<double>(region_bytes);
  std::vector<std::size_t> current, best;
  double best_residual = tolerance_abs + 1;
  search(entries, 0, static_cast<long long>(region_bytes), 0, cfg.max_subset,
         tolerance_abs, current, best_residual, best);
  if (best.empty()) return std::nullopt;

  RegionExplanation out;
  for (const std::size_t i : best) out.labels.push_back(entries[i].label);
  out.residual_rel = best_residual / static_cast<double>(region_bytes);
  return out;
}

PartialInference infer_objects_partial(const std::vector<DetectedObject>& detections,
                                       const SizeIdentityDb& catalogue,
                                       const PartialConfig& cfg) {
  PartialInference out;
  for (const auto& d : detections) {
    // Direct identification first (the serialized case).
    if (const auto m = catalogue.identify(d.size_estimate)) {
      out.labels.push_back(m->label);
      ++out.direct_matches;
      continue;
    }
    // Multiplexed region: subset-sum over the catalogue.
    const auto expl = explain_region(d.size_estimate, catalogue, cfg);
    if (expl && expl->labels.size() > 1) {
      for (const auto& l : expl->labels) out.labels.push_back(l);
      out.subset_matches += static_cast<int>(expl->labels.size());
    } else {
      ++out.unexplained_regions;
    }
  }
  return out;
}

}  // namespace h2sim::analysis
