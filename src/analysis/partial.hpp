#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/boundary.hpp"
#include "analysis/predictor.hpp"

namespace h2sim::analysis {

/// Partial-multiplexing inference — the paper's §VII extension: "infer the
/// object identity even when the object is partly multiplexed". A
/// multiplexed region's record sizes are useless individually, but its byte
/// TOTAL must still be a sum of whole objects (transmissions rarely straddle
/// region boundaries once idle gaps and delimiters are respected). We
/// therefore explain each unidentified region as a subset of the known size
/// catalogue.
struct PartialConfig {
  /// Relative tolerance on the region total.
  double tolerance = 0.02;
  /// Largest subset size attempted (the search is exponential in this).
  int max_subset = 4;
};

struct RegionExplanation {
  std::vector<std::string> labels;  // objects whose sizes sum to the region
  double residual_rel = 0.0;        // |sum - region| / region
};

/// Finds the subset of catalogue sizes best explaining `region_bytes`.
/// Returns nullopt when nothing fits within tolerance.
std::optional<RegionExplanation> explain_region(std::size_t region_bytes,
                                                const SizeIdentityDb& catalogue,
                                                const PartialConfig& cfg = {});

/// Full-trace inference: every detection is identified directly when
/// possible, otherwise attacked with subset-sum. Returns the recovered
/// object labels in transmission order (subset members of one region share
/// a position, ordered as found).
struct PartialInference {
  std::vector<std::string> labels;
  int direct_matches = 0;
  int subset_matches = 0;      // labels recovered only via subset-sum
  int unexplained_regions = 0;
};

PartialInference infer_objects_partial(const std::vector<DetectedObject>& detections,
                                       const SizeIdentityDb& catalogue,
                                       const PartialConfig& cfg = {});

}  // namespace h2sim::analysis
