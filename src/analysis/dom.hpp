#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/trace.hpp"

namespace h2sim::analysis {

/// Degree of multiplexing (Section II-A of the paper): the fraction of an
/// object's bytes interleaved with another object's bytes within the TCP
/// stream. Operationalized (see DESIGN.md §5) as
///   DoM = 1 - largest_contiguous_run_bytes / total_bytes
/// over the ordered sequence of DATA events, and exactly 0 when the object
/// occupies a single contiguous run (the adversary can then delimit it).
///
/// Computed per transmission copy (stream id), since client reissues create
/// multiple copies of the same object.
struct DomResult {
  double dom = 0.0;
  std::size_t total_bytes = 0;
  std::size_t largest_run_bytes = 0;
  std::size_t runs = 0;
  bool complete = false;  // saw END_STREAM for this copy
};

/// DoM of one stream's transmission within the full server wire log.
DomResult degree_of_multiplexing(const WireLog& log, std::uint32_t stream_id);

/// DoM for every stream carrying DATA in the log.
std::map<std::uint32_t, DomResult> degree_of_multiplexing_all(const WireLog& log);

/// Convenience: per-object summary across copies.
struct ObjectDom {
  std::string object;
  std::vector<std::uint32_t> copies;
  double min_dom = 1.0;       // best (least multiplexed) copy
  double primary_dom = 1.0;   // the first (original) copy
  bool any_copy_serialized = false;     // min_dom == 0 with completeness
  bool primary_serialized = false;
};
ObjectDom object_dom(const WireLog& log, const std::string& object);

}  // namespace h2sim::analysis
