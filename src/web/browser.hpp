#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "h2/client.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"
#include "web/website.hpp"

namespace h2sim::web {

/// Client-side page-load behaviour knobs.
struct BrowserConfig {
  /// No response byte at all for this long after a GET -> reissue the
  /// request on a fresh stream (the "retransmission requests" whose copies
  /// intensify multiplexing in the paper's Table I).
  sim::Duration first_byte_stall_timeout = sim::Duration::millis(1000);
  int max_reissues = 2;
  /// No progress on an incomplete response for this long -> RST_STREAM all
  /// pending streams and re-request (the paper's Figure 6 reset behaviour).
  sim::Duration reset_stall_timeout = sim::Duration::millis(3500);
  sim::Duration reset_backoff = sim::Duration::millis(200);
  int max_resets = 6;
  /// Multiplicative noise on scheduled request gaps, uniform [1-n, 1+n].
  double gap_noise = 0.15;
  /// §VII defense: randomize the order of gated embedded requests.
  bool randomize_embedded_order = false;
  sim::Duration page_deadline = sim::Duration::seconds(60);
};

/// The browser model: issues the page-load request sequence (with the
/// paper's inter-arrival gaps), tracks responses, reissues stalled requests
/// and resets streams under persistent loss — the client half of the attack
/// surface.
class Browser {
 public:
  struct ObjectState {
    std::string path;
    std::string label;
    std::size_t expected = 0;        // from content-length
    bool issued = false;
    bool first_byte = false;
    bool complete = false;
    int reissues = 0;
    sim::TimePoint first_request_time;
    sim::TimePoint complete_time;
    std::vector<std::uint32_t> streams;          // original + reissue copies
    std::map<std::uint32_t, std::size_t> stream_bytes;
    sim::TimerHandle stall_timer;
    sim::TimerHandle reset_timer;
    bool rerequested = false;  // re-issued after a reset sweep
    /// Noise-applied request gap, drawn once per step (cached so repeated
    /// dispatch passes do not re-roll it).
    std::optional<sim::Duration> drawn_gap;
  };

  Browser(sim::EventLoop& loop, h2::ClientConnection& conn, const Website& site,
          std::array<int, 8> permutation, sim::Rng rng, BrowserConfig cfg = {});

  /// Begins the page load (waits for the connection to become ready).
  void start();

  bool page_complete() const;
  bool failed() const { return failed_; }
  const std::string& failure_reason() const { return failure_reason_; }

  const std::vector<ObjectState>& objects() const { return objects_; }
  const std::array<int, 8>& permutation() const { return permutation_; }

  /// Ground truth: object index served by each stream id.
  const std::map<std::uint32_t, std::size_t>& stream_to_object() const {
    return stream_to_object_;
  }

  int total_reissues() const;
  int reset_sweeps() const { return reset_sweeps_; }

 private:
  void dispatch();
  void issue(std::size_t index, bool is_rerequest);
  void on_response_headers(std::uint32_t sid, const hpack::HeaderList& headers);
  void on_response_data(std::uint32_t sid, std::span<const std::uint8_t> bytes,
                        bool end_stream);
  void on_stream_reset(std::uint32_t sid, h2::ErrorCode code);
  void note_progress(std::size_t index);
  void object_completed(std::size_t index, std::uint32_t winning_sid);
  void stall_fired(std::size_t index);
  void reset_fired(std::size_t index);
  void perform_reset_sweep();
  void fail(std::string reason);
  sim::Duration noisy(sim::Duration gap, double lo, double hi);

  sim::EventLoop& loop_;
  h2::ClientConnection& conn_;
  const Website& site_;
  std::array<int, 8> permutation_;
  sim::Rng rng_;
  BrowserConfig cfg_;

  // Resolved schedule: one object per step, placeholders substituted.
  std::vector<RequestStep> steps_;
  std::vector<ObjectState> objects_;  // parallel to steps_
  std::map<std::uint32_t, std::size_t> stream_to_object_;

  bool started_ = false;
  bool failed_ = false;
  std::string failure_reason_;
  bool html_first_byte_ = false;
  bool html_complete_ = false;
  std::size_t html_index_ = 0;

  sim::TimePoint last_issue_time_;
  sim::TimePoint last_any_progress_;
  bool dispatch_pending_ = false;
  sim::TimerHandle dispatch_timer_;
  sim::TimerHandle deadline_timer_;
  int reset_sweeps_ = 0;

  struct Metrics {
    obs::Counter requests_sent;
    obs::Counter reissues;
    obs::Counter rerequests;
    obs::Counter reset_sweeps;
    obs::Counter objects_completed;
    obs::Counter page_failures;
  };
  Metrics metrics_;
};

}  // namespace h2sim::web
