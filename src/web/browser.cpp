#include "web/browser.hpp"

#include <algorithm>
#include <cassert>

#include "http/message.hpp"
#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "sim/log.hpp"

namespace h2sim::web {

using sim::Duration;
using sim::TimePoint;

Browser::Browser(sim::EventLoop& loop, h2::ClientConnection& conn,
                 const Website& site, std::array<int, 8> permutation,
                 sim::Rng rng, BrowserConfig cfg)
    : loop_(loop),
      conn_(conn),
      site_(site),
      permutation_(permutation),
      rng_(rng),
      cfg_(cfg) {
  auto& reg = obs::metrics();
  metrics_.requests_sent = reg.counter("web.requests_sent");
  metrics_.reissues = reg.counter("web.reissues");
  metrics_.rerequests = reg.counter("web.rerequests");
  metrics_.reset_sweeps = reg.counter("web.reset_sweeps");
  metrics_.objects_completed = reg.counter("web.objects_completed");
  metrics_.page_failures = reg.counter("web.page_failures");

  // Resolve EMBLEM_k placeholders via the survey-result permutation: the
  // k-th image requested is the party ranked k-th by this user.
  steps_ = site.schedule;
  for (RequestStep& s : steps_) {
    if (s.path.rfind("EMBLEM_", 0) == 0) {
      const int slot = std::stoi(s.path.substr(7));
      s.path = site.emblem_paths.at(
          static_cast<std::size_t>(permutation_.at(static_cast<std::size_t>(slot))));
    }
  }

  if (cfg_.randomize_embedded_order) {
    // §VII defense: shuffle which object is requested at each gated slot
    // (the timing skeleton stays, the object-to-slot mapping randomizes).
    std::vector<std::size_t> gated;
    for (std::size_t i = 0; i < steps_.size(); ++i) {
      if (steps_[i].gate != Gate::kNone) gated.push_back(i);
    }
    std::vector<std::string> paths;
    paths.reserve(gated.size());
    for (std::size_t i : gated) paths.push_back(steps_[i].path);
    rng_.shuffle(paths);
    for (std::size_t j = 0; j < gated.size(); ++j) steps_[gated[j]].path = paths[j];
  }

  objects_.resize(steps_.size());
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    objects_[i].path = steps_[i].path;
    const WebObject* obj = site_.find(steps_[i].path);
    objects_[i].label = obj ? obj->label : steps_[i].path;
    if (steps_[i].path == site_.html_path) html_index_ = i;
  }

  h2::ClientConnection::Handlers handlers;
  handlers.on_ready = [this] { dispatch(); };
  handlers.on_response_headers = [this](std::uint32_t sid,
                                        const hpack::HeaderList& h) {
    on_response_headers(sid, h);
  };
  handlers.on_response_data = [this](std::uint32_t sid,
                                     std::span<const std::uint8_t> b, bool end) {
    on_response_data(sid, b, end);
  };
  handlers.on_reset = [this](std::uint32_t sid, h2::ErrorCode code) {
    on_stream_reset(sid, code);
  };
  handlers.on_connection_dead = [this](std::string_view reason) {
    fail(std::string("connection dead: ") + std::string(reason));
  };
  conn_.set_handlers(std::move(handlers));
}

void Browser::start() {
  if (started_) return;
  started_ = true;
  last_issue_time_ = loop_.now();
  deadline_timer_ = loop_.schedule_after(cfg_.page_deadline, [this] {
    if (!page_complete() && !failed_) fail("page deadline exceeded");
  });
  if (conn_.ready()) dispatch();
}

bool Browser::page_complete() const {
  return std::all_of(objects_.begin(), objects_.end(),
                     [](const ObjectState& o) { return o.complete; });
}

int Browser::total_reissues() const {
  int n = 0;
  for (const auto& o : objects_) n += o.reissues;
  return n;
}

Duration Browser::noisy(Duration gap, double lo, double hi) {
  const double f = rng_.uniform_real(lo, hi);
  return Duration::nanos(
      static_cast<std::int64_t>(static_cast<double>(gap.count_nanos()) * f));
}

void Browser::dispatch() {
  if (failed_ || !started_ || !conn_.ready()) return;
  // Find the first step not yet issued (skipping completed re-sweeps).
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    ObjectState& o = objects_[i];
    if (o.issued || o.complete) continue;

    // Gate check: parked steps are resumed by gate events re-calling
    // dispatch().
    if (steps_[i].gate == Gate::kHtmlFirstByte && !html_first_byte_) return;
    if (steps_[i].gate == Gate::kHtmlComplete && !html_complete_) return;

    // Post-reset re-requests go one at a time, highest priority first (the
    // paper: "the client resends GET requests if a high priority object is
    // not yet received") — completion re-triggers dispatch.
    if (o.rerequested) {
      for (std::size_t j = 0; j < steps_.size(); ++j) {
        const ObjectState& other = objects_[j];
        if (j != i && other.rerequested && other.issued && !other.complete) {
          return;
        }
      }
    }

    if (!o.drawn_gap) {
      o.drawn_gap = o.rerequested
                        ? Duration::millis(10)
                        : noisy(steps_[i].gap_from_prev, steps_[i].noise_lo,
                                steps_[i].noise_hi);
    }
    const Duration gap = *o.drawn_gap;
    const TimePoint due = last_issue_time_ + gap;
    if (due <= loop_.now()) {
      issue(i, o.rerequested);
      continue;  // move on to the next step immediately
    }
    dispatch_timer_.cancel();
    dispatch_timer_ = loop_.schedule_after(due - loop_.now(), [this] { dispatch(); });
    return;
  }
}

void Browser::issue(std::size_t index, bool is_rerequest) {
  ObjectState& o = objects_[index];
  http::Request req;
  req.authority = "www.isidewith.com";
  req.path = o.path;
  // Realistic header bulk so a GET record is clearly larger on the wire than
  // coalesced WINDOW_UPDATE records (the monitor classifies by size, like
  // the paper's content-type==23 + heuristics).
  req.extra.push_back({"user-agent", "Mozilla/5.0 (X11; Linux x86_64; rv:74.0) "
                                     "Gecko/20100101 Firefox/74.0"});
  req.extra.push_back({"accept", "text/html,application/xhtml+xml,*/*;q=0.8"});
  req.extra.push_back({"referer", "https://www.isidewith.com/polls"});
  req.extra.push_back({"cookie", "sessionid=a1b2c3d4e5f6a7b8"});

  const std::uint32_t sid = conn_.send_request(req.to_h2_headers());
  stream_to_object_[sid] = index;
  o.streams.push_back(sid);
  o.stream_bytes[sid] = 0;
  if (!o.issued) {
    o.issued = true;
    o.first_request_time = loop_.now();
    last_issue_time_ = loop_.now();
  }
  metrics_.requests_sent.inc();
  if (is_rerequest) metrics_.rerequests.inc();

  sim::logf(sim::LogLevel::kDebug, loop_.now(), "browser", "GET %s (sid=%u%s)",
            o.path.c_str(), sid, o.reissues > 0 ? ", reissue" : "");
  auto& tr = obs::tracer();
  if (tr.enabled(obs::Component::kWeb)) {
    tr.instant(obs::Component::kWeb, "GET " + o.label, loop_.now(),
               obs::track::kClient, sid,
               obs::TraceArgs()
                   .add("path", o.path)
                   .add("reissue", o.reissues)
                   .add("rerequest", is_rerequest ? 1 : 0)
                   .take());
  }

  // Arm the stall (reissue) and reset timers.
  o.stall_timer.cancel();
  o.stall_timer = loop_.schedule_after(cfg_.first_byte_stall_timeout,
                                       [this, index] { stall_fired(index); });
  o.reset_timer.cancel();
  o.reset_timer = loop_.schedule_after(cfg_.reset_stall_timeout,
                                       [this, index] { reset_fired(index); });
}

void Browser::on_response_headers(std::uint32_t sid, const hpack::HeaderList& headers) {
  auto it = stream_to_object_.find(sid);
  if (it == stream_to_object_.end()) return;
  const std::size_t index = it->second;
  ObjectState& o = objects_[index];
  auto resp = http::Response::from_h2_headers(headers);
  if (resp) o.expected = resp->content_length;
  note_progress(index);
}

void Browser::on_response_data(std::uint32_t sid, std::span<const std::uint8_t> bytes,
                               bool end_stream) {
  auto it = stream_to_object_.find(sid);
  if (it == stream_to_object_.end()) return;
  const std::size_t index = it->second;
  ObjectState& o = objects_[index];
  if (o.complete) return;
  o.stream_bytes[sid] += bytes.size();
  note_progress(index);
  const bool done = end_stream || (o.expected > 0 && o.stream_bytes[sid] >= o.expected);
  if (done) object_completed(index, sid);
}

void Browser::note_progress(std::size_t index) {
  last_any_progress_ = loop_.now();
  ObjectState& o = objects_[index];
  if (!o.first_byte) {
    o.first_byte = true;
    o.stall_timer.cancel();
    if (index == html_index_ && !html_first_byte_) {
      html_first_byte_ = true;
      dispatch();
    }
  }
  if (!o.complete) {
    o.reset_timer.cancel();
    o.reset_timer = loop_.schedule_after(cfg_.reset_stall_timeout,
                                         [this, index] { reset_fired(index); });
  }
}

void Browser::object_completed(std::size_t index, std::uint32_t winning_sid) {
  ObjectState& o = objects_[index];
  o.complete = true;
  o.complete_time = loop_.now();
  o.stall_timer.cancel();
  o.reset_timer.cancel();
  // Cancel duplicate copies still in flight.
  for (const std::uint32_t sid : o.streams) {
    if (sid != winning_sid && conn_.find_stream(sid)) {
      conn_.cancel(sid);
    }
  }
  if (index == html_index_ && !html_complete_) html_complete_ = true;
  metrics_.objects_completed.inc();
  sim::logf(sim::LogLevel::kDebug, loop_.now(), "browser", "done %s (%zu bytes)",
            o.path.c_str(), o.stream_bytes[winning_sid]);
  auto& tr = obs::tracer();
  if (tr.enabled(obs::Component::kWeb)) {
    tr.complete(obs::Component::kWeb, o.label, o.first_request_time, loop_.now(),
                obs::track::kClient, winning_sid,
                obs::TraceArgs()
                    .add("path", o.path)
                    .add("bytes", o.stream_bytes[winning_sid])
                    .add("reissues", o.reissues)
                    .take());
  }
  dispatch();  // may unpark gated or completion-gated re-requested steps
}

void Browser::on_stream_reset(std::uint32_t sid, h2::ErrorCode) {
  auto it = stream_to_object_.find(sid);
  if (it == stream_to_object_.end()) return;
  const std::size_t index = it->second;
  ObjectState& o = objects_[index];
  // A server-side refusal: drop this copy; the reset/stall timers recover.
  std::erase(o.streams, sid);
}

void Browser::stall_fired(std::size_t index) {
  ObjectState& o = objects_[index];
  if (o.complete || o.first_byte || failed_) return;
  if (o.reissues >= cfg_.max_reissues) return;  // reset timer takes over
  // Only treat the request as lost when the whole connection has gone
  // quiet; if other responses are streaming, this request is merely queued
  // behind them and a duplicate would just add load.
  if (loop_.now() - last_any_progress_ < cfg_.first_byte_stall_timeout / 2) {
    o.stall_timer = loop_.schedule_after(cfg_.first_byte_stall_timeout,
                                         [this, index] { stall_fired(index); });
    return;
  }
  ++o.reissues;
  metrics_.reissues.inc();
  sim::logf(sim::LogLevel::kDebug, loop_.now(), "browser",
            "stalled, reissuing %s (attempt %d)", o.path.c_str(), o.reissues);
  issue(index, /*is_rerequest=*/false);
}

void Browser::reset_fired(std::size_t index) {
  ObjectState& o = objects_[index];
  if (o.complete || failed_) return;
  perform_reset_sweep();
}

void Browser::perform_reset_sweep() {
  metrics_.reset_sweeps.inc();
  if (++reset_sweeps_ > cfg_.max_resets) {
    fail("too many reset sweeps");
    return;
  }
  sim::logf(sim::LogLevel::kInfo, loop_.now(), "browser",
            "persistent stall: RST_STREAM sweep #%d", reset_sweeps_);
  auto& tr = obs::tracer();
  if (tr.enabled(obs::Component::kWeb)) {
    tr.instant(obs::Component::kWeb, "reset-sweep", loop_.now(),
               obs::track::kClient, 0,
               obs::TraceArgs().add("sweep", reset_sweeps_).take());
  }
  // Reset every stream of every incomplete issued object; the objects go
  // back to the un-issued pool and are re-requested after a backoff.
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    ObjectState& o = objects_[i];
    if (!o.issued || o.complete) continue;
    o.stall_timer.cancel();
    o.reset_timer.cancel();
    for (const std::uint32_t sid : o.streams) {
      if (conn_.find_stream(sid)) conn_.cancel(sid);
      stream_to_object_.erase(sid);
    }
    o.streams.clear();
    o.stream_bytes.clear();
    o.issued = false;
    o.first_byte = false;
    o.reissues = 0;
    o.rerequested = true;
    o.drawn_gap.reset();
  }
  // Exponential backoff across sweeps, mimicking the client TCP's growing
  // retransmission timeouts the paper describes after a reset.
  sim::Duration backoff = cfg_.reset_backoff;
  for (int i = 1; i < reset_sweeps_; ++i) backoff = backoff * 2;
  dispatch_timer_.cancel();
  dispatch_timer_ = loop_.schedule_after(backoff, [this] {
    last_issue_time_ = loop_.now();
    dispatch();
  });
}

void Browser::fail(std::string reason) {
  if (failed_) return;
  failed_ = true;
  failure_reason_ = std::move(reason);
  for (auto& o : objects_) {
    o.stall_timer.cancel();
    o.reset_timer.cancel();
  }
  dispatch_timer_.cancel();
  deadline_timer_.cancel();
  metrics_.page_failures.inc();
  sim::logf(sim::LogLevel::kInfo, loop_.now(), "browser", "page load failed: %s",
            failure_reason_.c_str());
  auto& tr = obs::tracer();
  if (tr.enabled(obs::Component::kWeb)) {
    tr.instant(obs::Component::kWeb, "page-failed", loop_.now(),
               obs::track::kClient, 0,
               obs::TraceArgs().add("reason", failure_reason_).take());
  }
}

}  // namespace h2sim::web
