#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace h2sim::web {

/// One retrievable object. `dynamic` objects (the survey-result HTML) are
/// generated in slow template flushes by the server app; static objects
/// stream at disk speed.
struct WebObject {
  std::string path;
  std::string content_type = "application/octet-stream";
  std::size_t size = 0;
  bool dynamic = false;
  /// Multiplier on the server's per-chunk production interval for this
  /// object (image decode/IO paths are slower than cached JS, for example).
  double pace_factor = 1.0;
  std::string label;  // "html", "I1".."I8" (party emblems), "pre3", "filler7"
  /// Materialized body, filled by Website::add_object. Generating the filler
  /// bytes once per object (instead of per served chunk) lets the server app
  /// hand out read-only spans, and lets a shared prebuilt site amortize the
  /// generation across a whole sweep. The byte at offset j is j*131 + size
  /// (mod 256) — identical to what chunk-time generation produced.
  std::vector<std::uint8_t> content;

  /// (Re)generates `content` to match `size`. Idempotent.
  void materialize();
};

/// When a request step may be issued relative to page-load progress.
enum class Gate {
  kNone,            // pure schedule from navigation start
  kHtmlFirstByte,   // discovered while parsing the streaming HTML
  kHtmlComplete,    // triggered by script execution after the HTML finishes
};

/// One entry in the page-load request sequence. `path` may be the
/// placeholder "EMBLEM_k": the browser substitutes the party image chosen by
/// the user's survey result (ground-truth permutation).
struct RequestStep {
  std::string path;
  sim::Duration gap_from_prev = sim::Duration::zero();
  Gate gate = Gate::kNone;
  /// Per-step multiplicative noise range on the gap. Mechanical gaps (parser
  /// discovery, script execution) vary a little; human think-time gaps vary
  /// a lot.
  double noise_lo = 0.85;
  double noise_hi = 1.15;
};

/// A website: object store plus the canonical page-load request schedule.
class Website {
 public:
  /// Stores the object, materializing its body bytes if `obj.content` does
  /// not already match `obj.size`.
  void add_object(WebObject obj);
  const WebObject* find(std::string_view path) const;
  const WebObject* find_by_label(std::string_view label) const;

  std::vector<RequestStep> schedule;
  std::string html_path;
  /// Party emblem paths indexed by party id 0..7 (fixed size per party).
  std::vector<std::string> emblem_paths;

  const std::map<std::string, WebObject, std::less<>>& objects() const {
    return objects_;
  }

 private:
  std::map<std::string, WebObject, std::less<>> objects_;
};

/// Parameters of the isidewith.com-like survey site of Section V.
struct IsidewithConfig {
  std::size_t html_size = 9500;  // the paper's object of interest (6th GET)
  /// Eight party emblems, 5 KB..16 KB, pairwise separated well beyond the
  /// predictor tolerance.
  std::array<std::size_t, 8> emblem_sizes = {5200,  6700,  8600,  9900,
                                             11400, 12800, 14300, 15800};
  int pre_objects = 5;     // requests before the result HTML (it is the 6th)
  int filler_objects = 39; // embedded page assets besides the 8 emblems
  /// Fillers requested between the HTML and the emblem burst.
  int head_fillers = 12;
};

/// Builds the target website: 5 pre-objects, the dynamic result HTML, 47
/// embedded objects (39 fillers + 8 emblems) with the request inter-arrival
/// gaps of Table II.
Website make_isidewith_site(const IsidewithConfig& cfg = {});

/// A tiny two-object site used by the mechanics benches (Figures 1-4).
Website make_two_object_site(std::size_t size1, std::size_t size2);

}  // namespace h2sim::web
