#include "web/server_app.hpp"

#include <algorithm>
#include <vector>

#include "http/message.hpp"
#include "sim/log.hpp"

namespace h2sim::web {

ServerApp::ServerApp(sim::EventLoop& loop, const Website& site,
                     h2::ServerConnection& conn, sim::Rng rng, ServerAppConfig cfg)
    : loop_(loop), site_(site), conn_(conn), rng_(rng), cfg_(cfg) {
  speed_factor_ = rng_.uniform_real(cfg_.speed_factor_lo, cfg_.speed_factor_hi);
  h2::ServerConnection::Handlers handlers;
  handlers.on_request = [this](std::uint32_t sid, const hpack::HeaderList& h) {
    handle_request(sid, h);
  };
  handlers.on_stream_reset = [this](std::uint32_t sid, h2::ErrorCode) {
    auto it = workers_.find(sid);
    if (it != workers_.end()) {
      it->second.timer.cancel();
      workers_.erase(it);
      ++workers_cancelled_;
      start_next_queued();
    }
    std::erase_if(pending_, [sid](const auto& p) { return p.first == sid; });
  };
  handlers.on_connection_dead = [this](std::string_view reason) {
    for (auto& [sid, w] : workers_) w.timer.cancel();
    workers_.clear();
    if (on_connection_dead) on_connection_dead(reason);
  };
  conn_.set_handlers(std::move(handlers));
}

sim::Duration ServerApp::jittered(sim::Duration base) {
  const double f = rng_.uniform_real(1.0 - cfg_.interval_jitter,
                                     1.0 + cfg_.interval_jitter) *
                   speed_factor_;
  return sim::Duration::nanos(
      static_cast<std::int64_t>(static_cast<double>(base.count_nanos()) * f));
}

void ServerApp::handle_request(std::uint32_t stream_id,
                               const hpack::HeaderList& headers) {
  auto req = http::Request::from_h2_headers(headers);
  if (!req) {
    conn_.send_rst_stream(stream_id, h2::ErrorCode::kProtocolError);
    return;
  }
  const WebObject* obj = site_.find(req->path);
  ++requests_handled_;
  if (!obj) {
    conn_.respond_headers(stream_id, 404, {}, /*end_stream=*/true);
    return;
  }

  stream_objects_[stream_id] = obj->label;
  conn_.respond_headers(stream_id, 200,
                        {{"content-length", std::to_string(obj->size)},
                         {"content-type", obj->content_type}});

  if (cfg_.serial_workers && !workers_.empty()) {
    pending_.emplace_back(stream_id, obj);  // head-of-line blocking, HTTP/1.1-like
    return;
  }
  start_worker(stream_id, obj);
}

void ServerApp::start_worker(std::uint32_t stream_id, const WebObject* obj) {
  Worker w;
  w.obj = obj;
  const sim::Duration first = jittered(obj->dynamic ? cfg_.dynamic_first_byte_delay
                                                    : cfg_.static_first_byte_delay);
  w.timer = loop_.schedule_after(first, [this, stream_id] { produce_chunk(stream_id); });
  workers_[stream_id] = std::move(w);
}

void ServerApp::start_next_queued() {
  if (!cfg_.serial_workers || pending_.empty() || !workers_.empty()) return;
  auto [sid, obj] = pending_.front();
  pending_.pop_front();
  start_worker(sid, obj);
}

void ServerApp::produce_chunk(std::uint32_t stream_id) {
  auto it = workers_.find(stream_id);
  if (it == workers_.end()) return;
  Worker& w = it->second;

  const std::size_t remaining = w.obj->size - w.produced;
  const std::size_t n = std::min(cfg_.chunk_bytes, remaining);
  // Deterministic filler content; the bytes are opaque on the wire anyway.
  // Normally a read-only window into the materialized object body; the
  // generate-into-scratch path covers hand-built WebObjects that never went
  // through Website::add_object.
  std::span<const std::uint8_t> chunk;
  if (w.obj->content.size() >= w.produced + n) {
    chunk = std::span<const std::uint8_t>(w.obj->content).subspan(w.produced, n);
  } else {
    scratch_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      scratch_[i] = static_cast<std::uint8_t>((w.produced + i) * 131 + w.obj->size);
    }
    chunk = scratch_;
  }
  w.produced += n;
  const bool last = w.produced >= w.obj->size;
  conn_.send_body_chunk(stream_id, chunk, last);

  if (last) {
    workers_.erase(it);
    start_next_queued();
    return;
  }
  sim::Duration base = w.obj->dynamic ? cfg_.dynamic_chunk_interval
                                      : cfg_.static_chunk_interval;
  base = sim::Duration::nanos(static_cast<std::int64_t>(
      static_cast<double>(base.count_nanos()) * w.obj->pace_factor));
  const sim::Duration next = jittered(base);
  w.timer = loop_.schedule_after(next, [this, stream_id] { produce_chunk(stream_id); });
}

}  // namespace h2sim::web
