#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "h2/server.hpp"
#include "sim/random.hpp"
#include "web/website.hpp"

namespace h2sim::web {

/// Server-application timing model: how the "threads" of the paper's
/// Figure 3 produce object segments into the stream queues.
struct ServerAppConfig {
  std::size_t chunk_bytes = 1024;
  /// Per-chunk production interval for static objects (disk/app read pace,
  /// ~2.5 MB/s per stream).
  sim::Duration static_chunk_interval = sim::Duration::micros(400);
  /// Per-chunk interval for dynamic objects (template flushes of the survey
  /// result page) — stretches the HTML's transmission window slightly.
  sim::Duration dynamic_chunk_interval = sim::Duration::millis_f(1.5);
  /// Multiplicative jitter on every interval, uniform in [1-j, 1+j].
  double interval_jitter = 0.35;
  sim::Duration static_first_byte_delay = sim::Duration::millis(4);
  sim::Duration dynamic_first_byte_delay = sim::Duration::millis(12);
  /// Per-connection service-speed factor range (server load varies between
  /// downloads); drawn once per connection, multiplies every interval.
  double speed_factor_lo = 0.55;
  double speed_factor_hi = 1.45;
  /// Single-threaded server: one response worker at a time, requests queued
  /// FIFO (the "multiplexing disabled by default" HTTP/2 deployments of
  /// Section V).
  bool serial_workers = false;
};

/// Binds a Website to an HTTP/2 ServerConnection: every request spawns a
/// worker that paces response chunks into the stream queue. RST_STREAM
/// cancels the worker (and the connection has already flushed the queue) —
/// the paper's Figure 6 server behaviour.
class ServerApp {
 public:
  ServerApp(sim::EventLoop& loop, const Website& site, h2::ServerConnection& conn,
            sim::Rng rng, ServerAppConfig cfg = {});

  /// Object label served on each stream (ground truth for the evaluator;
  /// includes streams serving duplicate copies after client reissues).
  const std::map<std::uint32_t, std::string>& stream_objects() const {
    return stream_objects_;
  }

  std::uint64_t requests_handled() const { return requests_handled_; }
  std::uint64_t workers_cancelled() const { return workers_cancelled_; }

  /// Optional notification when the connection dies.
  std::function<void(std::string_view)> on_connection_dead;

 private:
  struct Worker {
    const WebObject* obj = nullptr;
    std::size_t produced = 0;
    sim::TimerHandle timer;
  };

  void handle_request(std::uint32_t stream_id, const hpack::HeaderList& headers);
  void produce_chunk(std::uint32_t stream_id);
  sim::Duration jittered(sim::Duration base);

  sim::EventLoop& loop_;
  const Website& site_;
  h2::ServerConnection& conn_;
  sim::Rng rng_;
  ServerAppConfig cfg_;

  void start_worker(std::uint32_t stream_id, const WebObject* obj);
  void start_next_queued();

  double speed_factor_ = 1.0;
  std::vector<std::uint8_t> scratch_;  // chunk buffer for unmaterialized objects
  std::map<std::uint32_t, Worker> workers_;
  std::deque<std::pair<std::uint32_t, const WebObject*>> pending_;  // serial mode
  std::map<std::uint32_t, std::string> stream_objects_;
  std::uint64_t requests_handled_ = 0;
  std::uint64_t workers_cancelled_ = 0;
};

}  // namespace h2sim::web
