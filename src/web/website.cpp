#include "web/website.hpp"

#include <cassert>

namespace h2sim::web {

using sim::Duration;

void WebObject::materialize() {
  if (content.size() == size) return;
  content.resize(size);
  for (std::size_t j = 0; j < size; ++j) {
    content[j] = static_cast<std::uint8_t>(j * 131 + size);
  }
}

void Website::add_object(WebObject obj) {
  assert(!obj.path.empty());
  obj.materialize();
  objects_[obj.path] = std::move(obj);
}

const WebObject* Website::find(std::string_view path) const {
  auto it = objects_.find(path);
  return it == objects_.end() ? nullptr : &it->second;
}

const WebObject* Website::find_by_label(std::string_view label) const {
  for (const auto& [path, obj] : objects_) {
    if (obj.label == label) return &obj;
  }
  return nullptr;
}

Website make_isidewith_site(const IsidewithConfig& cfg) {
  Website site;

  // --- Pre-objects: survey-page assets and API calls preceding the result
  // HTML, which makes the HTML the 6th GET (Section IV). Requested in a
  // browser burst (millisecond gaps); their transmissions are the traffic
  // the result HTML multiplexes with by default.
  const std::size_t pre_sizes[] = {28000, 64000, 45000, 91000, 90000};
  const double pre_gaps_ms[] = {0, 2, 1, 5, 3};
  for (int i = 0; i < cfg.pre_objects; ++i) {
    WebObject o;
    o.path = "/assets/pre" + std::to_string(i + 1) + ".js";
    o.content_type = "application/javascript";
    o.size = pre_sizes[i % 5];
    o.label = "pre" + std::to_string(i + 1);
    site.add_object(o);
    site.schedule.push_back({o.path, Duration::millis_f(pre_gaps_ms[i % 5]),
                             Gate::kNone});
  }

  // --- The dynamic result HTML: the paper's primary object of interest.
  {
    WebObject o;
    o.path = "/results/2020-presidential-quiz";
    o.content_type = "text/html";
    o.size = cfg.html_size;
    o.dynamic = true;
    o.label = "html";
    site.add_object(o);
    site.html_path = o.path;
    // The redirect/render delay between the survey submission burst and the
    // result-page request varies widely; whether the pre-object transfers
    // are still streaming when the HTML goes out decides if the HTML
    // multiplexes (the paper's 32 % / ~98 % baseline split).
    site.schedule.push_back({o.path, Duration::millis(15), Gate::kNone, 0.1, 2.2});
  }

  // --- Party emblems (fixed size per party, unique within tolerance).
  for (int k = 0; k < 8; ++k) {
    WebObject o;
    o.path = "/img/party_" + std::to_string(k) + ".png";
    o.content_type = "image/png";
    o.size = cfg.emblem_sizes[static_cast<std::size_t>(k)];
    o.pace_factor = 2.0;  // image pipeline is slower than cached JS/CSS
    o.label = "party" + std::to_string(k);
    site.add_object(o);
    site.emblem_paths.push_back(o.path);
  }

  // --- Embedded fillers. Sizes avoid the emblem sizes (and the HTML size)
  // by a wide margin so the predictor's size database stays unambiguous,
  // matching the paper's premise that the objects of interest have unique
  // sizes within the site.
  // First 12 entries are the head fillers (requested while the HTML
  // streams): sizable assets so their transmissions overlap the HTML's tail.
  const std::size_t filler_sizes[] = {
      37600, 56200, 80200, 46300, 67500, 30800, 93800, 41800, 61800, 34100,
      73800, 50900, 1800,  2600,  3400,  4200,  17500, 19400, 21800, 24500,
      27200, 86900, 101000, 108500, 116400, 124600, 133100, 141900, 151000,
      160400, 170100, 180100, 190400, 201000, 211900, 223100, 234600, 246400,
      258500};
  std::vector<std::string> filler_paths;
  for (int i = 0; i < cfg.filler_objects; ++i) {
    WebObject o;
    const bool is_img = i % 3 == 0;
    o.path = std::string(is_img ? "/img/asset" : "/assets/mod") +
             std::to_string(i + 1) + (is_img ? ".png" : ".js");
    o.content_type = is_img ? "image/png" : "application/javascript";
    o.size = filler_sizes[static_cast<std::size_t>(i) % 39];
    o.label = "filler" + std::to_string(i + 1);
    site.add_object(o);
    filler_paths.push_back(o.path);
  }

  // --- Post-HTML schedule. The first embedded asset follows the HTML
  // request by 160 ms (Table II row 2, column HTML) — after the HTML's short
  // transmission window; the rest are parser-discovery bursts. The emblem
  // burst fires after script execution with the sub-millisecond gaps of
  // Table II; one trailing asset 26 ms after I8; the remaining fillers close
  // out the load.
  const double head_gaps_ms[] = {160, 3, 8, 2, 12, 4, 6, 2, 9, 3, 7, 5};
  int used = 0;
  for (; used < cfg.head_fillers && used < cfg.filler_objects; ++used) {
    site.schedule.push_back({filler_paths[static_cast<std::size_t>(used)],
                             Duration::millis_f(head_gaps_ms[used % 12]),
                             Gate::kHtmlFirstByte});
  }

  const double emblem_gaps_ms[] = {30, 0.4, 2, 0.3, 0.1, 0.3, 2, 0.5};
  for (int k = 0; k < 8; ++k) {
    site.schedule.push_back({"EMBLEM_" + std::to_string(k),
                             Duration::millis_f(emblem_gaps_ms[k]),
                             Gate::kHtmlComplete});
  }

  // Trailing assets: first one 26 ms after I8 (Table II row 2, column I8).
  double trail_gap = 26;
  for (; used < cfg.filler_objects; ++used) {
    site.schedule.push_back({filler_paths[static_cast<std::size_t>(used)],
                             Duration::millis_f(trail_gap),
                             Gate::kHtmlComplete});
    trail_gap = 8;  // steady trickle for the remaining assets
  }

  return site;
}

Website make_two_object_site(std::size_t size1, std::size_t size2) {
  Website site;
  WebObject o1;
  o1.path = "/o1";
  o1.size = size1;
  o1.label = "O1";
  site.add_object(o1);
  WebObject o2;
  o2.path = "/o2";
  o2.size = size2;
  o2.label = "O2";
  site.add_object(o2);
  site.schedule.push_back({"/o1", sim::Duration::zero(), Gate::kNone});
  site.schedule.push_back({"/o2", sim::Duration::millis_f(0.5), Gate::kNone});
  return site;
}

}  // namespace h2sim::web
