#pragma once

#include <cstdint>
#include <string>

#include "attack/controller.hpp"
#include "attack/monitor.hpp"
#include "net/middlebox.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"

namespace h2sim::attack {

/// Full staged attack of Section V.
///
/// Phase 1 (page load begins): request spacing `jitter_phase1` on every GET;
/// count GETs.  Phase 2 (the trigger GET — the 6th, carrying the result-HTML
/// request — is seen): throttle the link to `throttle_bps` and drop
/// `drop_rate` of server->client application packets for `drop_duration`,
/// forcing the client's RST_STREAM sweep.  Phase 3 (drop window over):
/// spacing raised to `jitter_phase2` so the re-requested HTML and the
/// 8-image burst serialize.
struct AttackConfig {
  bool enabled = true;
  sim::Duration jitter_phase1 = sim::Duration::millis(50);
  int trigger_get_index = 6;
  bool use_throttle = true;
  double throttle_bps = 800e6;
  /// Apply the bandwidth limit from the start of the run instead of at the
  /// trigger (the Figure 5 sweep configuration).
  bool throttle_from_start = false;
  bool use_drop = true;
  double drop_rate = 0.8;
  sim::Duration drop_duration = sim::Duration::seconds(6);
  sim::Duration jitter_phase2 = sim::Duration::millis(80);
  /// §VII refinement: drop client TCP retransmissions of requests we are
  /// still holding. With this off, the adversary behaves like the paper's
  /// and suffers the fast-retransmit storms of Section IV-B (retransmitted
  /// request bundles race past the holds and un-serialize the objects).
  bool suppress_request_retransmissions = true;
};

class AttackPipeline {
 public:
  enum class Phase { kIdle = 0, kJitter = 1, kDisrupt = 2, kSerialize = 3 };

  AttackPipeline(sim::EventLoop& loop, net::Middlebox& mb, AttackConfig cfg,
                 sim::Rng rng);

  TrafficMonitor& monitor() { return monitor_; }
  NetworkController& controller() { return controller_; }
  const analysis::PacketTrace& trace() const { return monitor_.trace(); }
  Phase phase() const { return phase_; }
  const AttackConfig& config() const { return cfg_; }

 private:
  void on_get(int index, sim::TimePoint now);
  void enter_disrupt();
  void enter_serialize();

  sim::EventLoop& loop_;
  net::Middlebox& mb_;
  AttackConfig cfg_;
  TrafficMonitor monitor_;
  NetworkController controller_;
  Phase phase_ = Phase::kIdle;
  bool triggered_ = false;
};

const char* to_string(AttackPipeline::Phase p);

}  // namespace h2sim::attack
