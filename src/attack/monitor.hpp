#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "analysis/trace.hpp"
#include "net/middlebox.hpp"
#include "net/packet.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"
#include "tls/record.hpp"

namespace h2sim::attack {

/// The adversary's tshark: passively reassembles each direction's TCP byte
/// stream at the gateway and parses TLS record headers out of it (record
/// headers are cleartext). Emits the packet trace the prediction module
/// consumes, and fires a callback per client GET — identified, as in the
/// paper, by `content_type == 23` application-data records large enough to
/// be requests rather than WINDOW_UPDATE chatter.
struct MonitorConfig {
  /// Minimum record body for a client->server application-data record to
  /// count as a GET request. Chatter sits well below: WINDOW_UPDATE ~29 B,
  /// SETTINGS ~55 B, the connection preface 40 B, PING 33 B; HPACK'd GETs
  /// with a cookie land at ~80+ B.
  std::size_t get_min_record_body = 60;
};

class TrafficMonitor {
 public:
  using Config = MonitorConfig;

  explicit TrafficMonitor(Config cfg = Config{}) : cfg_(cfg) {
    auto& reg = obs::metrics();
    metrics_.records_observed = reg.counter("attack.records_observed");
    metrics_.gets_counted = reg.counter("attack.gets_counted");
  }

  /// Wire into Middlebox::set_tap.
  void observe(const net::Packet& p, net::Direction dir, sim::TimePoint now);

  const analysis::PacketTrace& trace() const { return trace_; }
  int get_count() const { return get_count_; }
  void reset_get_count() { get_count_ = 0; }

  /// True when the most recently observed packet with this id started a new
  /// client->server application-data record large enough to be a request.
  /// The controller consults this right after the tap runs (same packet):
  /// the monitor classifies, the controller acts — the paper's
  /// monitor-informs-controller architecture.
  bool packet_is_request(std::uint64_t packet_id) const {
    return packet_id == last_request_packet_id_;
  }

  /// True when the most recently observed packet was a client->server TCP
  /// retransmission (its payload lies at or below the reassembled stream
  /// head). While the adversary holds the original request, TCP's
  /// retransmission of those bytes would race past the hold and deliver the
  /// bundled requests early — the controller drops them instead (the §VII
  /// "trigger the packet drops accurately" refinement).
  bool packet_is_c2s_retransmission(std::uint64_t packet_id) const {
    return packet_id == last_c2s_retrans_packet_id_;
  }

  /// Invoked with the 1-based GET index each time a request is spotted.
  std::function<void(int index, sim::TimePoint)> on_get;

 private:
  struct StreamState {
    bool synced = false;
    std::uint32_t next_seq = 0;
    std::map<std::uint32_t, std::vector<std::uint8_t>> ooo;
    tls::RecordParser parser;
  };

  void feed(StreamState& st, const net::Packet& p, net::Direction dir,
            sim::TimePoint now);
  void drain_records(StreamState& st, net::Direction dir, sim::TimePoint now);

  Config cfg_;
  // Keyed by (client port) per direction: one entry per TCP connection.
  std::map<std::uint32_t, StreamState> c2s_;
  std::map<std::uint32_t, StreamState> s2c_;
  analysis::PacketTrace trace_;
  int get_count_ = 0;
  std::uint64_t last_request_packet_id_ = 0;
  std::uint64_t last_c2s_retrans_packet_id_ = 0;

  struct Metrics {
    obs::Counter records_observed;
    obs::Counter gets_counted;
  };
  Metrics metrics_;
};

}  // namespace h2sim::attack
