#pragma once

#include <cstdint>

#include "net/middlebox.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"

namespace h2sim::attack {

/// The adversary's network controller (the paper's tc/netem bash scripts):
/// implements the packet policy at the compromised gateway.
///
///  - Request spacing ("jitter"): client->server application-data packets
///    large enough to carry a GET are held so consecutive releases are at
///    least `spacing` apart (delay 0, d, 2d, ... of Section IV-B).
///  - Targeted drops: during a drop window, server->client packets carrying
///    payload are dropped with probability `rate` (Section IV-D).
///
/// Bandwidth throttling is the Middlebox's rate limiter, driven by the
/// pipeline. Pure ACKs always pass: the adversary mimics a congested /
/// lossy path, not a dead one.
class NetworkController : public net::PacketPolicy {
 public:
  struct Stats {
    std::uint64_t requests_spaced = 0;
    std::uint64_t packets_dropped = 0;
    std::uint64_t retransmissions_suppressed = 0;
    sim::Duration max_hold = sim::Duration::zero();
  };

  NetworkController(sim::EventLoop& loop, sim::Rng rng)
      : loop_(loop), rng_(rng) {
    auto& reg = obs::metrics();
    metrics_.requests_spaced = reg.counter("attack.requests_spaced");
    metrics_.packets_dropped = reg.counter("attack.packets_dropped");
    metrics_.retransmissions_suppressed =
        reg.counter("attack.retransmissions_suppressed");
  }

  net::Decision on_packet(const net::Packet& p, net::Direction dir,
                          sim::TimePoint now) override;

  /// Enforced minimum spacing between GET arrivals; zero disables.
  void set_request_spacing(sim::Duration d) { spacing_ = d; }
  sim::Duration request_spacing() const { return spacing_; }

  void start_drop_window(double rate, sim::Duration duration) {
    drop_rate_ = rate;
    drop_until_ = loop_.now() + duration;
  }
  void stop_drop() { drop_rate_ = 0.0; }
  bool dropping() const {
    return drop_rate_ > 0.0 && loop_.now() < drop_until_;
  }

  /// Client->server payload size at/above which a packet is treated as a
  /// request (GET) subject to spacing — the fallback when no monitor is
  /// wired in.
  std::size_t request_payload_min = 100;

  /// Optional: precise request classification from the traffic monitor
  /// (which parses TLS record headers out of the reassembled stream).
  void set_monitor(const class TrafficMonitor* monitor) { monitor_ = monitor; }

  /// While spacing is active, drop client->server TCP retransmissions whose
  /// originals we are still holding (they would race past the hold and
  /// deliver the bundled requests at once).
  bool drop_held_request_retransmissions = true;

  const Stats& stats() const { return stats_; }

 private:
  bool is_request_packet(const net::Packet& p) const;

  sim::EventLoop& loop_;
  sim::Rng rng_;
  const class TrafficMonitor* monitor_ = nullptr;
  sim::Duration spacing_ = sim::Duration::zero();
  sim::TimePoint last_release_ = sim::TimePoint::origin();
  bool any_released_ = false;
  double drop_rate_ = 0.0;
  sim::TimePoint drop_until_ = sim::TimePoint::origin();
  Stats stats_;

  struct Metrics {
    obs::Counter requests_spaced;
    obs::Counter packets_dropped;
    obs::Counter retransmissions_suppressed;
  };
  Metrics metrics_;
};

}  // namespace h2sim::attack
