#include "attack/controller.hpp"

#include <cmath>

#include "attack/monitor.hpp"
#include "obs/context.hpp"
#include "obs/trace.hpp"

namespace h2sim::attack {

bool NetworkController::is_request_packet(const net::Packet& p) const {
  if (monitor_) return monitor_->packet_is_request(p.id);
  return p.payload.size() >= request_payload_min;
}

net::Decision NetworkController::on_packet(const net::Packet& p,
                                           net::Direction dir,
                                           sim::TimePoint now) {
  if (dir == net::Direction::kClientToServer) {
    if (spacing_ > sim::Duration::zero() && monitor_ &&
        drop_held_request_retransmissions &&
        monitor_->packet_is_c2s_retransmission(p.id) && now < last_release_) {
      ++stats_.retransmissions_suppressed;
      metrics_.retransmissions_suppressed.inc();
      auto& tr = obs::tracer();
      if (tr.enabled(obs::Component::kAttack)) {
        tr.instant(obs::Component::kAttack, "suppress-retrans", now,
                   obs::track::kAdversary, p.tcp.src_port,
                   obs::TraceArgs().add("packet", p.describe()).take());
      }
      return net::Decision::drop();
    }
    if (spacing_ > sim::Duration::zero() && is_request_packet(p)) {
      // "First request delayed by 0 ms, second by d, third by 2d..." — the
      // first request always passes; later ones keep >= spacing between
      // releases.
      sim::TimePoint release = any_released_ ? last_release_ + spacing_ : now;
      if (release < now) release = now;
      last_release_ = release;
      any_released_ = true;
      if (release > now) {
        ++stats_.requests_spaced;
        metrics_.requests_spaced.inc();
        const sim::Duration hold = release - now;
        if (hold > stats_.max_hold) stats_.max_hold = hold;
        auto& tr = obs::tracer();
        if (tr.enabled(obs::Component::kAttack)) {
          tr.complete(obs::Component::kAttack, "space-request", now, release,
                      obs::track::kAdversary, p.tcp.src_port,
                      obs::TraceArgs()
                          .add("hold_ms", hold.to_millis())
                          .add("packet", p.describe())
                          .take());
        }
        return net::Decision::hold(hold);
      }
    }
    return net::Decision::forward();
  }

  // Server -> client: random policing during the drop window (the paper's
  // "drop 80 % of application packets").
  if (dropping() && !p.payload.empty() && rng_.bernoulli(drop_rate_)) {
    ++stats_.packets_dropped;
    metrics_.packets_dropped.inc();
    auto& tr = obs::tracer();
    if (tr.enabled(obs::Component::kAttack)) {
      tr.instant(obs::Component::kAttack, "adv-drop", now,
                 obs::track::kAdversary, p.tcp.dst_port,
                 obs::TraceArgs().add("packet", p.describe()).take());
    }
    return net::Decision::drop();
  }
  return net::Decision::forward();
}

}  // namespace h2sim::attack
