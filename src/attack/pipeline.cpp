#include "attack/pipeline.hpp"

#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "sim/log.hpp"

namespace h2sim::attack {

namespace {
void trace_phase(AttackPipeline::Phase from, AttackPipeline::Phase to,
                 sim::TimePoint now) {
  auto& tr = obs::tracer();
  if (!tr.enabled(obs::Component::kAttack)) return;
  tr.instant(obs::Component::kAttack, std::string("phase:") + to_string(to),
             now, obs::track::kAdversary, 0,
             obs::TraceArgs().add("from", to_string(from)).take());
}
}  // namespace

const char* to_string(AttackPipeline::Phase p) {
  switch (p) {
    case AttackPipeline::Phase::kIdle: return "idle";
    case AttackPipeline::Phase::kJitter: return "jitter";
    case AttackPipeline::Phase::kDisrupt: return "disrupt";
    case AttackPipeline::Phase::kSerialize: return "serialize";
  }
  return "?";
}

AttackPipeline::AttackPipeline(sim::EventLoop& loop, net::Middlebox& mb,
                               AttackConfig cfg, sim::Rng rng)
    : loop_(loop), mb_(mb), cfg_(cfg), controller_(loop, rng) {
  mb_.set_tap([this](const net::Packet& p, net::Direction dir, sim::TimePoint t) {
    monitor_.observe(p, dir, t);
  });
  if (!cfg_.enabled) return;

  mb_.set_policy(&controller_);
  controller_.set_monitor(&monitor_);
  controller_.drop_held_request_retransmissions = cfg_.suppress_request_retransmissions;
  controller_.set_request_spacing(cfg_.jitter_phase1);
  if (cfg_.use_throttle && cfg_.throttle_from_start) {
    mb_.set_rate_limit(cfg_.throttle_bps);
  }
  trace_phase(phase_, Phase::kJitter, loop_.now());
  phase_ = Phase::kJitter;
  monitor_.on_get = [this](int index, sim::TimePoint now) { on_get(index, now); };
}

void AttackPipeline::on_get(int index, sim::TimePoint now) {
  if (!triggered_ && index == cfg_.trigger_get_index) {
    triggered_ = true;
    sim::logf(sim::LogLevel::kInfo, now, "attack",
              "GET #%d seen: entering disrupt phase", index);
    enter_disrupt();
  }
}

void AttackPipeline::enter_disrupt() {
  trace_phase(phase_, Phase::kDisrupt, loop_.now());
  phase_ = Phase::kDisrupt;
  if (cfg_.use_throttle) mb_.set_rate_limit(cfg_.throttle_bps);
  if (cfg_.use_drop) {
    controller_.start_drop_window(cfg_.drop_rate, cfg_.drop_duration);
    loop_.schedule_after(cfg_.drop_duration, [this] { enter_serialize(); });
  } else {
    enter_serialize();
  }
}

void AttackPipeline::enter_serialize() {
  trace_phase(phase_, Phase::kSerialize, loop_.now());
  phase_ = Phase::kSerialize;
  controller_.stop_drop();
  controller_.set_request_spacing(cfg_.jitter_phase2);
  sim::logf(sim::LogLevel::kInfo, loop_.now(), "attack",
            "drop window over: spacing %.0fms for the image burst",
            cfg_.jitter_phase2.to_millis());
}

}  // namespace h2sim::attack
