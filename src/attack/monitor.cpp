#include "attack/monitor.hpp"

#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "tcp/tcp_types.hpp"

namespace h2sim::attack {

void TrafficMonitor::observe(const net::Packet& p, net::Direction dir,
                             sim::TimePoint now) {
  obs::ProfileScope prof(obs::Component::kAttack);
  // Connection key: the client's ephemeral port identifies the flow in both
  // directions.
  const std::uint32_t key = dir == net::Direction::kClientToServer
                                ? p.tcp.src_port
                                : p.tcp.dst_port;
  StreamState& st = dir == net::Direction::kClientToServer ? c2s_[key] : s2c_[key];

  if (p.tcp.syn()) {
    st.synced = true;
    st.next_seq = p.tcp.seq + 1;
    st.ooo.clear();
    return;
  }
  if (!st.synced || p.payload.empty()) return;

  // Retransmission classification: payload starting at or below the stream
  // head was already seen.
  if (dir == net::Direction::kClientToServer &&
      tcp::seq_lt(p.tcp.seq, st.next_seq)) {
    last_c2s_retrans_packet_id_ = p.id;
  }

  // Live request classification for the controller: does this packet begin
  // a fresh application-data record big enough to carry a GET? Only
  // decidable when the packet lands exactly at the reassembled stream head.
  if (dir == net::Direction::kClientToServer && p.tcp.seq == st.next_seq &&
      st.parser.pending_bytes() == 0 && p.payload.size() >= 5 &&
      p.payload[0] == static_cast<std::uint8_t>(tls::ContentType::kApplicationData)) {
    const std::size_t rec_len =
        static_cast<std::size_t>(p.payload[3]) << 8 | p.payload[4];
    if (rec_len >= cfg_.get_min_record_body) last_request_packet_id_ = p.id;
  }

  feed(st, p, dir, now);
}

void TrafficMonitor::feed(StreamState& st, const net::Packet& p,
                          net::Direction dir, sim::TimePoint now) {
  using tcp::seq_gt;
  using tcp::seq_le;

  const std::uint32_t seq = p.tcp.seq;
  const std::uint32_t end = seq + static_cast<std::uint32_t>(p.payload.size());

  if (seq_le(end, st.next_seq)) return;  // pure duplicate (retransmission)

  if (seq_gt(seq, st.next_seq)) {
    st.ooo.emplace(seq, p.payload);
    return;
  }

  // In-order (possibly overlapping): feed the fresh suffix.
  const std::size_t skip = st.next_seq - seq;
  st.parser.feed(std::span(p.payload.data() + skip, p.payload.size() - skip));
  st.next_seq = end;

  // Drain any now-contiguous buffered segments.
  for (auto it = st.ooo.begin(); it != st.ooo.end();) {
    const std::uint32_t sseq = it->first;
    const auto& bytes = it->second;
    const std::uint32_t send = sseq + static_cast<std::uint32_t>(bytes.size());
    if (seq_le(send, st.next_seq)) {
      it = st.ooo.erase(it);
      continue;
    }
    if (seq_gt(sseq, st.next_seq)) break;
    const std::size_t skip2 = st.next_seq - sseq;
    st.parser.feed(std::span(bytes.data() + skip2, bytes.size() - skip2));
    st.next_seq = send;
    it = st.ooo.erase(it);
    it = st.ooo.begin();
  }

  drain_records(st, dir, now);
}

void TrafficMonitor::drain_records(StreamState& st, net::Direction dir,
                                   sim::TimePoint now) {
  tls::RecordHeader header;
  while (st.parser.next_header(header)) {
    analysis::RecordObs obs;
    obs.time = now;
    obs.dir = dir;
    obs.type = header.type;
    obs.body_len = header.length;
    trace_.add(obs);
    metrics_.records_observed.inc();

    if (dir == net::Direction::kClientToServer &&
        header.type == tls::ContentType::kApplicationData &&
        header.length >= cfg_.get_min_record_body) {
      ++get_count_;
      metrics_.gets_counted.inc();
      auto& tr = obs::tracer();
      if (tr.enabled(obs::Component::kAttack)) {
        tr.instant(obs::Component::kAttack, "get-seen", now,
                   obs::track::kAdversary, 0,
                   obs::TraceArgs()
                       .add("index", get_count_)
                       .add("record_len", header.length)
                       .take());
      }
      if (on_get) on_get(get_count_, now);
    }
  }
}

}  // namespace h2sim::attack
